//! Bilinear unimodal baselines: DistMult, ComplEx, and DualE — all scored
//! 1-N (their scores factor through an inner product with the entity table).

use came_kg::{KgDataset, OneToNModel};
use came_tensor::{Graph, ParamId, ParamStore, Prng, Shape, Var};

use crate::util::{complex_halves, EmbeddingPair};

/// DistMult (Yang et al., 2015): `s = ⟨h, r, t⟩` with diagonal relation.
pub struct DistMult {
    emb: EmbeddingPair,
    bias: ParamId,
}

impl DistMult {
    /// Build with width `d`.
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        DistMult {
            emb: EmbeddingPair::new(
                store,
                "distmult",
                dataset.num_entities(),
                dataset.num_relations_aug(),
                d,
                rng,
            ),
            bias: store.add_zeros("distmult.bias", Shape::d1(dataset.num_entities())),
        }
    }
}

impl OneToNModel for DistMult {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let h = self.emb.ent.lookup(g, store, heads);
        let r = self.emb.rel.lookup(g, store, rels);
        let hr = g.mul(h, r);
        let scores = g.matmul(hr, g.transpose(self.emb.ent.full(g, store), 0, 1));
        g.add(scores, g.param(store, self.bias))
    }
}

/// ComplEx (Trouillon et al., 2016): `s = Re(⟨h, r, t̄⟩)` in `C^{d/2}`.
pub struct ComplEx {
    emb: EmbeddingPair,
    bias: ParamId,
    k: usize,
}

impl ComplEx {
    /// Build with total width `d` (even).
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        assert!(d % 2 == 0, "ComplEx width must be even");
        ComplEx {
            emb: EmbeddingPair::new(
                store,
                "complex",
                dataset.num_entities(),
                dataset.num_relations_aug(),
                d,
                rng,
            ),
            bias: store.add_zeros("complex.bias", Shape::d1(dataset.num_entities())),
            k: d / 2,
        }
    }
}

impl OneToNModel for ComplEx {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let h = self.emb.ent.lookup(g, store, heads);
        let r = self.emb.rel.lookup(g, store, rels);
        let (h_re, h_im) = complex_halves(g, h);
        let (r_re, r_im) = complex_halves(g, r);
        // Re(⟨h, r, conj(t)⟩):
        //   (h_re∘r_re − h_im∘r_im)·t_re + (h_re∘r_im + h_im∘r_re)·t_im
        let a = g.sub(g.mul(h_re, r_re), g.mul(h_im, r_im)); // [B,k]
        let b = g.add(g.mul(h_re, r_im), g.mul(h_im, r_re)); // [B,k]
        let ent = self.emb.ent.full(g, store);
        let e_re = g.transpose(g.narrow(ent, 1, 0, self.k), 0, 1);
        let e_im = g.transpose(g.narrow(ent, 1, self.k, self.k), 0, 1);
        let scores = g.add(g.matmul(a, e_re), g.matmul(b, e_im));
        g.add(scores, g.param(store, self.bias))
    }
}

/// DualE (Cao et al., 2021): entities and relations as dual quaternions
/// `a + εb` with `a, b ∈ H^{d/8}`; the head is transformed by dual-quaternion
/// multiplication with the (rotation-normalised) relation and scored by
/// inner product with candidate tails.
///
/// Simplification note: the official DualE normalises the full dual
/// quaternion (unit rotation + orthogonal dual part); we normalise the
/// rotation quaternion only, which preserves the rotation+translation
/// compositionality the model's expressiveness argument rests on.
pub struct DualE {
    emb: EmbeddingPair,
    bias: ParamId,
    /// Number of dual-quaternion units (`d / 8`).
    units: usize,
}

impl DualE {
    /// Build with total width `d` (multiple of 8).
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        assert!(d % 8 == 0, "DualE width must be a multiple of 8");
        DualE {
            emb: EmbeddingPair::new(
                store,
                "duale",
                dataset.num_entities(),
                dataset.num_relations_aug(),
                d,
                rng,
            ),
            bias: store.add_zeros("duale.bias", Shape::d1(dataset.num_entities())),
            units: d / 8,
        }
    }

    /// Split `[B, 8u]` into the 8 quaternion component blocks `[B, u]`,
    /// ordered `(aw, ax, ay, az, bw, bx, by, bz)`.
    fn components(g: &Graph, x: Var, u: usize) -> [Var; 8] {
        std::array::from_fn(|i| g.narrow(x, 1, i * u, u))
    }

    /// Hamilton product of two quaternions given as component quadruples.
    fn hamilton(g: &Graph, a: &[Var; 4], b: &[Var; 4]) -> [Var; 4] {
        let [aw, ax, ay, az] = *a;
        let [bw, bx, by, bz] = *b;
        let w = g.sub(
            g.sub(g.mul(aw, bw), g.mul(ax, bx)),
            g.add(g.mul(ay, by), g.mul(az, bz)),
        );
        let x = g.add(
            g.add(g.mul(aw, bx), g.mul(ax, bw)),
            g.sub(g.mul(ay, bz), g.mul(az, by)),
        );
        let y = g.add(
            g.sub(g.mul(aw, by), g.mul(ax, bz)),
            g.add(g.mul(ay, bw), g.mul(az, bx)),
        );
        let z = g.add(
            g.add(g.mul(aw, bz), g.mul(ax, by)),
            g.sub(g.mul(az, bw), g.mul(ay, bx)),
        );
        [w, x, y, z]
    }
}

impl OneToNModel for DualE {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let u = self.units;
        let h = self.emb.ent.lookup(g, store, heads);
        let r = self.emb.rel.lookup(g, store, rels);
        let hc = Self::components(g, h, u);
        let rc = Self::components(g, r, u);
        // normalise the relation's rotation quaternion per unit
        let eps = g.constant(1e-9);
        let norm = g.sqrt(g.add(
            g.add(g.square(rc[0]), g.square(rc[1])),
            g.add(g.add(g.square(rc[2]), g.square(rc[3])), eps),
        ));
        let ra: [Var; 4] = std::array::from_fn(|i| g.div(rc[i], norm));
        let rb: [Var; 4] = [rc[4], rc[5], rc[6], rc[7]];
        let ha: [Var; 4] = [hc[0], hc[1], hc[2], hc[3]];
        let hb: [Var; 4] = [hc[4], hc[5], hc[6], hc[7]];
        // dual quaternion product: (ha + ε hb)(ra + ε rb)
        //   real: ha⊗ra ;  dual: ha⊗rb + hb⊗ra
        let real = Self::hamilton(g, &ha, &ra);
        let d1 = Self::hamilton(g, &ha, &rb);
        let d2 = Self::hamilton(g, &hb, &ra);
        let dual: [Var; 4] = std::array::from_fn(|i| g.add(d1[i], d2[i]));
        // inner product with every candidate tail: concat back to [B, 8u]
        let q = g.concat(
            &[
                real[0], real[1], real[2], real[3], dual[0], dual[1], dual[2], dual[3],
            ],
            1,
        );
        let scores = g.matmul(q, g.transpose(self.emb.ent.full(g, store), 0, 1));
        g.add(scores, g.param(store, self.bias))
    }
}

/// Lightweight accessors used by tests and benches.
impl DualE {
    /// Dual-quaternion unit count.
    pub fn units(&self) -> usize {
        self.units
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_kg::{evaluate, train_one_to_n, EvalConfig, OneToNScorer, Split, TrainConfig};

    fn toy() -> KgDataset {
        use came_kg::{EntityKind, Triple, Vocab};
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r0");
        vocab.add_relation("r1");
        let mut triples = Vec::new();
        for i in 0..10u32 {
            triples.push(Triple::new(i, 0, (i + 3) % 12));
            triples.push(Triple::new(i, 1, (i + 5) % 12));
        }
        KgDataset {
            vocab,
            train: triples.clone(),
            valid: vec![],
            test: triples[..3].to_vec(),
        }
    }

    fn fit_and_train_mrr<M: OneToNModel>(m: &M, store: &mut ParamStore, d: &KgDataset) -> f64 {
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 16,
            lr: 5e-3,
            label_smoothing: 0.0,
            ..Default::default()
        };
        train_one_to_n(m, store, d, &cfg, |_, _, _| {});
        let filter = d.filter_index();
        evaluate(
            &OneToNScorer::new(m, store),
            d,
            Split::Train,
            &filter,
            &EvalConfig::default(),
        )
        .mrr()
    }

    #[test]
    fn distmult_learns() {
        let d = toy();
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let m = DistMult::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_train_mrr(&m, &mut store, &d);
        assert!(mrr > 0.5, "DistMult train MRR {mrr}");
    }

    #[test]
    fn complex_learns() {
        let d = toy();
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = ComplEx::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_train_mrr(&m, &mut store, &d);
        assert!(mrr > 0.5, "ComplEx train MRR {mrr}");
    }

    #[test]
    fn duale_learns() {
        let d = toy();
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let m = DualE::new(&mut store, &d, 16, &mut rng);
        assert_eq!(m.units(), 2);
        let mrr = fit_and_train_mrr(&m, &mut store, &d);
        assert!(mrr > 0.5, "DualE train MRR {mrr}");
    }

    #[test]
    fn complex_handles_antisymmetric_relations() {
        // train only (a, r, b) pairs in one direction; ComplEx must score
        // (a,r,b) above (b,r,a) after training — DistMult structurally cannot
        use came_kg::{EntityKind, Triple, Vocab};
        let mut vocab = Vocab::new();
        for i in 0..8 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("asym");
        let triples: Vec<Triple> = (0..4).map(|i| Triple::new(i, 0, i + 4)).collect();
        let d = KgDataset {
            vocab,
            train: triples,
            valid: vec![],
            test: vec![],
        };
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let m = ComplEx::new(&mut store, &d, 16, &mut rng);
        let cfg = TrainConfig {
            epochs: 120,
            batch_size: 8,
            lr: 1e-2,
            label_smoothing: 0.0,
            ..Default::default()
        };
        train_one_to_n(&m, &mut store, &d, &cfg, |_, _, _| {});
        let g = Graph::inference();
        let fwd = m.forward(&g, &store, &[0], &[0]);
        let v = g.value(fwd);
        assert!(
            v.data()[4] > v.data()[0],
            "forward direction not preferred: {:?}",
            v.data()
        );
    }

    #[test]
    fn duale_quaternion_norm_is_unit_after_normalisation() {
        let d = toy();
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let m = DualE::new(&mut store, &d, 8, &mut rng);
        // probe: run forward and confirm finite output (normalisation keeps
        // the rotation bounded even with large raw weights)
        store.value_mut(m.emb.rel.table).map_inplace(|v| v * 100.0);
        let g = Graph::inference();
        let out = m.forward(&g, &store, &[0, 1], &[0, 1]);
        assert!(!g.value(out).has_non_finite());
    }
}
