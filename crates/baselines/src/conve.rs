//! ConvE (Dettmers et al., 2018): 2-D convolution over stacked, reshaped
//! head and relation embeddings, scored 1-N against the entity table. The
//! closest unimodal relative of CamE's scorer (§IV-C discusses the lineage).

use came_kg::{KgDataset, OneToNModel};
use came_tensor::{
    Conv2dLayer, EmbeddingTable, Graph, Linear, ParamId, ParamStore, Prng, Shape, Var,
};

/// Factor `d` into the most square `(h, w)` (duplicated from the CamE scorer
/// so the baseline crate stays independent of the core crate).
fn map_dims(d: usize) -> (usize, usize) {
    let mut h = (d as f64).sqrt() as usize;
    while h > 1 && d % h != 0 {
        h -= 1;
    }
    (h, d / h)
}

/// The ConvE model.
pub struct ConvE {
    ent: EmbeddingTable,
    rel: EmbeddingTable,
    conv: Conv2dLayer,
    fc: Linear,
    bias: ParamId,
    h: usize,
    w: usize,
    d: usize,
}

impl ConvE {
    /// Build with width `d`, `n_filters` filters of size `kernel`.
    pub fn new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        d: usize,
        n_filters: usize,
        kernel: usize,
        rng: &mut Prng,
    ) -> Self {
        let (h, w) = map_dims(d);
        // embeddings are stacked along the height axis: map is [2h, w]
        assert!(
            kernel <= 2 * h && kernel <= w,
            "kernel too large for {h}x{w}"
        );
        let (oh, ow) = (2 * h - kernel + 1, w - kernel + 1);
        let conv = Conv2dLayer::new(store, "conve.conv", 1, n_filters, kernel, kernel, rng);
        let fc = Linear::new(store, "conve.fc", n_filters * oh * ow, d, rng);
        ConvE {
            ent: EmbeddingTable::new(store, "conve.ent", dataset.num_entities(), d, rng),
            rel: EmbeddingTable::new(store, "conve.rel", dataset.num_relations_aug(), d, rng),
            conv,
            fc,
            bias: store.add_zeros("conve.bias", Shape::d1(dataset.num_entities())),
            h,
            w,
            d,
        }
    }
}

impl OneToNModel for ConvE {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let b = heads.len();
        let e = self.ent.lookup(g, store, heads);
        let r = self.rel.lookup(g, store, rels);
        let e_map = g.reshape(e, Shape::d4(b, 1, self.h, self.w));
        let r_map = g.reshape(r, Shape::d4(b, 1, self.h, self.w));
        let stacked = g.concat(&[e_map, r_map], 2); // [B,1,2h,w]
        let conved = g.relu(self.conv.apply(g, store, stacked));
        let s = g.shape(conved);
        let flat = g.reshape(conved, Shape::d2(b, s.at(1) * s.at(2) * s.at(3)));
        let hidden = g.relu(self.fc.apply(g, store, flat)); // [B, d]
        let scores = g.matmul(hidden, g.transpose(self.ent.full(g, store), 0, 1));
        g.add(scores, g.param(store, self.bias))
    }
}

/// Width accessor for tests.
impl ConvE {
    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_kg::{evaluate, train_one_to_n, EvalConfig, OneToNScorer, Split, TrainConfig};

    fn toy() -> KgDataset {
        use came_kg::{EntityKind, Triple, Vocab};
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r0");
        let triples: Vec<Triple> = (0..10).map(|i| Triple::new(i, 0, (i + 1) % 12)).collect();
        KgDataset {
            vocab,
            train: triples,
            valid: vec![],
            test: vec![],
        }
    }

    #[test]
    fn forward_shape() {
        let d = toy();
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let m = ConvE::new(&mut store, &d, 16, 4, 3, &mut rng);
        let g = Graph::inference();
        let out = m.forward(&g, &store, &[0, 1], &[0, 1]);
        assert_eq!(g.shape(out), Shape::d2(2, 12));
    }

    #[test]
    fn conve_learns_a_chain() {
        let d = toy();
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = ConvE::new(&mut store, &d, 16, 4, 3, &mut rng);
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 16,
            lr: 5e-3,
            label_smoothing: 0.0,
            ..Default::default()
        };
        train_one_to_n(&m, &mut store, &d, &cfg, |_, _, _| {});
        let filter = d.filter_index();
        let mrr = evaluate(
            &OneToNScorer::new(&m, &store),
            &d,
            Split::Train,
            &filter,
            &EvalConfig::default(),
        )
        .mrr();
        assert!(mrr > 0.5, "ConvE train MRR {mrr}");
    }
}
