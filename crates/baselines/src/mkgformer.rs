//! MKGformer "M-Encoder" core (Chen et al., 2022), reproduced the way the
//! CamE paper itself did for Table III: "We reproduced its core structure
//! 'M-Encoder', including a Prefix-guided Interaction Module and
//! Correlation-aware Fusion Module", wired into the same 1-N scoring shell
//! CamE uses.
//!
//! On vector (rather than token-sequence) inputs, prefix-guided interaction
//! reduces to a gated cross-modal injection: the textual query attends to a
//! projected visual (here: molecular) prefix, with an elementwise gate from
//! the query–prefix correlation; correlation-aware fusion then mixes the
//! interacted modalities with a learned correlation weight before scoring.

use came_encoders::ModalFeatures;
use came_kg::{KgDataset, OneToNModel};
use came_tensor::{EmbeddingTable, Graph, Linear, ParamId, ParamStore, Prng, Shape, Tensor, Var};

use crate::util::frozen_input;

/// The M-Encoder-based multimodal completion model.
pub struct MkgFormer {
    ent: EmbeddingTable,
    rel: EmbeddingTable,
    text_proj: Linear,
    mol_proj: Linear,
    /// PGI: query/key projections for the prefix gate.
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    /// CAF: correlation-aware fusion weights.
    caf: Linear,
    out_proj: Linear,
    bias: ParamId,
    feat_text: Tensor,
    feat_mol: Tensor,
    d: usize,
}

impl MkgFormer {
    /// Build with hidden width `d`.
    pub fn new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        features: &ModalFeatures,
        d: usize,
        rng: &mut Prng,
    ) -> Self {
        let d_t = features.textual.shape().at(1);
        let d_m = features.molecular.shape().at(1);
        MkgFormer {
            ent: EmbeddingTable::new(store, "mkg.ent", dataset.num_entities(), d, rng),
            rel: EmbeddingTable::new(store, "mkg.rel", dataset.num_relations_aug(), d, rng),
            text_proj: Linear::no_bias(store, "mkg.text", d_t, d, rng),
            mol_proj: Linear::no_bias(store, "mkg.mol", d_m, d, rng),
            q_proj: Linear::no_bias(store, "mkg.q", d, d, rng),
            k_proj: Linear::no_bias(store, "mkg.k", d, d, rng),
            v_proj: Linear::no_bias(store, "mkg.v", d, d, rng),
            caf: Linear::new(store, "mkg.caf", 2 * d, d, rng),
            out_proj: Linear::no_bias(store, "mkg.out", d, d, rng),
            bias: store.add_zeros("mkg.bias", Shape::d1(dataset.num_entities())),
            feat_text: features.textual.clone(),
            feat_mol: features.molecular.clone(),
            d,
        }
    }

    /// Fused multimodal representation for a set of entities `[B, d]`.
    fn m_encode(&self, g: &Graph, store: &ParamStore, ids: &[u32]) -> Var {
        let text = self
            .text_proj
            .apply(g, store, frozen_input(g, &self.feat_text, ids));
        let mol = self
            .mol_proj
            .apply(g, store, frozen_input(g, &self.feat_mol, ids));
        // Prefix-guided interaction: query from text, key/value from the
        // visual prefix; per-dimension gate from the q·k correlation.
        let q = self.q_proj.apply(g, store, text);
        let k = self.k_proj.apply(g, store, mol);
        let v = self.v_proj.apply(g, store, mol);
        let scale = 1.0 / (self.d as f32).sqrt();
        let gate = g.sigmoid(g.scale(g.mul(q, k), scale));
        let interacted = g.add(text, g.mul(gate, v));
        // Correlation-aware fusion of interacted text and molecular views
        let fused = g.tanh(self.caf.apply(g, store, g.concat(&[interacted, mol], 1)));
        self.out_proj.apply(g, store, fused)
    }
}

impl OneToNModel for MkgFormer {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let all_ids: Vec<u32> = (0..self.ent.n as u32).collect();
        // fused entity table (per step; modal features are frozen but the
        // projections learn)
        let fused_all = self.m_encode(g, store, &all_ids); // [N, d]
        let ent_all = self.ent.full(g, store);
        let table = g.add(ent_all, fused_all); // [N, d]
        let h = g.gather(table, heads);
        let r = self.rel.lookup(g, store, rels);
        let hr = g.mul(h, r);
        let scores = g.matmul(hr, g.transpose(table, 0, 1));
        g.add(scores, g.param(store, self.bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_biodata::presets;
    use came_encoders::FeatureConfig;
    use came_kg::{evaluate, train_one_to_n, EvalConfig, OneToNScorer, Split, TrainConfig};

    fn setup() -> (came_biodata::MultimodalBkg, ModalFeatures) {
        let bkg = presets::tiny(1);
        let f = ModalFeatures::build(
            &bkg,
            &FeatureConfig {
                d_molecule: 12,
                d_text: 16,
                d_struct: 12,
                gin_layers: 2,
                compgcn_epochs: 1,
                seed: 2,
            },
        );
        (bkg, f)
    }

    #[test]
    fn forward_shape_and_finite() {
        let (bkg, f) = setup();
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let m = MkgFormer::new(&mut store, &bkg.dataset, &f, 16, &mut rng);
        let g = Graph::inference();
        let out = m.forward(&g, &store, &[0, 3], &[0, 1]);
        assert_eq!(g.shape(out), Shape::d2(2, bkg.dataset.num_entities()));
        assert!(!g.value(out).has_non_finite());
    }

    #[test]
    fn mkgformer_learns_above_chance() {
        let (bkg, f) = setup();
        let d = &bkg.dataset;
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = MkgFormer::new(&mut store, d, &f, 24, &mut rng);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 64,
            lr: 3e-3,
            ..Default::default()
        };
        train_one_to_n(&m, &mut store, d, &cfg, |_, _, _| {});
        let filter = d.filter_index();
        let ev = EvalConfig {
            max_triples: Some(150),
            ..Default::default()
        };
        let mrr = evaluate(
            &OneToNScorer::new(&m, &store),
            d,
            Split::Train,
            &filter,
            &ev,
        )
        .mrr();
        assert!(mrr > 0.15, "MKGformer train MRR {mrr}");
    }

    #[test]
    fn gate_injects_molecular_signal() {
        let (bkg, f) = setup();
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let m = MkgFormer::new(&mut store, &bkg.dataset, &f, 16, &mut rng);
        let cid = f.has_molecule.iter().position(|&x| x).unwrap() as u32;
        let g = Graph::inference();
        let a = g.value(m.m_encode(&g, &store, &[cid]));
        // same entity with molecules zeroed encodes differently
        let f2 = f.without_molecules();
        let mut store2 = ParamStore::new();
        let mut rng2 = Prng::new(2);
        let m2 = MkgFormer::new(&mut store2, &bkg.dataset, &f2, 16, &mut rng2);
        let g2 = Graph::inference();
        let b = g2.value(m2.m_encode(&g2, &store2, &[cid]));
        assert_ne!(a.data(), b.data());
    }
}
