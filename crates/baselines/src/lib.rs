//! # came-baselines
//!
//! The thirteen knowledge-graph completion baselines the CamE paper
//! evaluates against (Table III):
//!
//! **Unimodal** — TransE, DistMult, ComplEx, ConvE, CompGCN (implemented in
//! `came-encoders` and re-exported here), RotatE, a-RotatE, DualE, PairRE.
//!
//! **Multimodal** — IKRL, MTAKGR, TransAE, and the MKGformer "M-Encoder"
//! core, all consuming the same frozen [`came_encoders::ModalFeatures`] as
//! CamE.
//!
//! Use [`registry::train_baseline`] to build, train, and wrap any row behind
//! a uniform [`came_kg::TailScorer`].

#![warn(missing_docs)]

pub mod bilinear;
pub mod conve;
pub mod mkgformer;
pub mod multimodal;
pub mod registry;
pub mod translational;
pub mod util;

pub use bilinear::{ComplEx, DistMult, DualE};
pub use came_encoders::CompGcn;
pub use conve::ConvE;
pub use mkgformer::MkgFormer;
pub use multimodal::{Ikrl, Mtakgr, TransAe};
pub use registry::{train_baseline, Baseline, BaselineHp, EpochHook, TrainedBaseline};
pub use translational::{PairRE, RotatE, TransE};
