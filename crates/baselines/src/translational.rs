//! Translational / rotational unimodal baselines: TransE, RotatE
//! (+ a-RotatE via the trainer's weighting), and PairRE.

use came_kg::{KgDataset, TripleModel};
use came_tensor::{Graph, ParamStore, Prng, Var};

use crate::util::{neg_l1_rows, neg_l2_rows, EmbeddingPair};

/// TransE (Bordes et al., 2013): `s(h,r,t) = -||h + r - t||₁`.
pub struct TransE {
    emb: EmbeddingPair,
}

impl TransE {
    /// Build with embedding width `d`.
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        TransE {
            emb: EmbeddingPair::new(
                store,
                "transe",
                dataset.num_entities(),
                dataset.num_relations_aug(),
                d,
                rng,
            ),
        }
    }
}

impl TripleModel for TransE {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        let hv = self.emb.ent.lookup(g, store, h);
        let rv = self.emb.rel.lookup(g, store, r);
        let tv = self.emb.ent.lookup(g, store, t);
        neg_l1_rows(g, g.sub(g.add(hv, rv), tv))
    }
}

/// RotatE (Sun et al., 2019): entities in `C^{d/2}`, relations as phase
/// rotations; `s = -Σ |h∘r - t|` (complex element moduli). Trained with
/// uniform negatives for "RotatE" and self-adversarial weighting for
/// "a-RotatE" — exactly the distinction the paper draws between the two
/// rows of Table III.
pub struct RotatE {
    /// Entity table `[N, d]` (d even: interleaved re/im halves).
    emb: EmbeddingPair,
    k: usize,
}

impl RotatE {
    /// Build with total entity width `d` (must be even; relation width is
    /// `d/2` phases).
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        assert!(d % 2 == 0, "RotatE width must be even");
        let ent =
            came_tensor::EmbeddingTable::new(store, "rotate.ent", dataset.num_entities(), d, rng);
        let rel = came_tensor::EmbeddingTable::new(
            store,
            "rotate.rel",
            dataset.num_relations_aug(),
            d / 2,
            rng,
        );
        RotatE {
            emb: EmbeddingPair { ent, rel },
            k: d / 2,
        }
    }
}

impl TripleModel for RotatE {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        let k = self.k;
        let hv = self.emb.ent.lookup(g, store, h);
        let tv = self.emb.ent.lookup(g, store, t);
        let phase = self.emb.rel.lookup(g, store, r); // [B, k]
        let (h_re, h_im) = (g.narrow(hv, 1, 0, k), g.narrow(hv, 1, k, k));
        let (t_re, t_im) = (g.narrow(tv, 1, 0, k), g.narrow(tv, 1, k, k));
        let (cos_r, sin_r) = (g.cos(phase), g.sin(phase));
        // h ∘ r in C: (h_re·cos − h_im·sin, h_re·sin + h_im·cos)
        let rot_re = g.sub(g.mul(h_re, cos_r), g.mul(h_im, sin_r));
        let rot_im = g.add(g.mul(h_re, sin_r), g.mul(h_im, cos_r));
        let d_re = g.sub(rot_re, t_re);
        let d_im = g.sub(rot_im, t_im);
        // per-element complex modulus, summed
        let eps = g.constant(1e-9);
        let modulus = g.sqrt(g.add(g.add(g.square(d_re), g.square(d_im)), eps));
        g.neg(g.sum_axis(modulus, 1, false))
    }
}

/// PairRE (Chao et al., 2021): two relation vectors,
/// `s = -||ĥ ∘ r_H − t̂ ∘ r_T||₂` on L2-normalised entities.
pub struct PairRE {
    ent: came_tensor::EmbeddingTable,
    rel_h: came_tensor::EmbeddingTable,
    rel_t: came_tensor::EmbeddingTable,
}

impl PairRE {
    /// Build with width `d`.
    pub fn new(store: &mut ParamStore, dataset: &KgDataset, d: usize, rng: &mut Prng) -> Self {
        PairRE {
            ent: came_tensor::EmbeddingTable::new(
                store,
                "pairre.ent",
                dataset.num_entities(),
                d,
                rng,
            ),
            rel_h: came_tensor::EmbeddingTable::new(
                store,
                "pairre.rel_h",
                dataset.num_relations_aug(),
                d,
                rng,
            ),
            rel_t: came_tensor::EmbeddingTable::new(
                store,
                "pairre.rel_t",
                dataset.num_relations_aug(),
                d,
                rng,
            ),
        }
    }

    fn normalise(g: &Graph, x: Var) -> Var {
        let eps = g.constant(1e-9);
        let norm = g.sqrt(g.add(g.sum_axis(g.square(x), 1, true), eps));
        g.div(x, norm)
    }
}

impl TripleModel for PairRE {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        let hv = Self::normalise(g, self.ent.lookup(g, store, h));
        let tv = Self::normalise(g, self.ent.lookup(g, store, t));
        let rh = self.rel_h.lookup(g, store, r);
        let rt = self.rel_t.lookup(g, store, r);
        neg_l2_rows(g, g.sub(g.mul(hv, rh), g.mul(tv, rt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_kg::{
        evaluate, train_negative_sampling, EvalConfig, NegSamplingConfig, NegWeighting, Split,
        TrainConfig, TripleScorerAdapter,
    };

    fn toy() -> KgDataset {
        use came_kg::{EntityKind, Triple, Vocab};
        let mut vocab = Vocab::new();
        for i in 0..10 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("next");
        let triples: Vec<Triple> = (0..9).map(|i| Triple::new(i, 0, i + 1)).collect();
        KgDataset {
            vocab,
            train: triples.clone(),
            valid: vec![],
            test: triples[..2].to_vec(),
        }
    }

    fn fit_and_mrr<M: TripleModel>(
        model: &M,
        store: &mut ParamStore,
        d: &KgDataset,
        weighting: NegWeighting,
    ) -> f64 {
        let cfg = NegSamplingConfig {
            base: TrainConfig {
                epochs: 120,
                batch_size: 18,
                lr: 5e-2,
                ..Default::default()
            },
            k: 4,
            margin: 4.0,
            weighting,
        };
        train_negative_sampling(model, store, d, &cfg, |_, _, _| {});
        let filter = d.filter_index();
        let scorer = TripleScorerAdapter::new(model, store, d.num_entities());
        evaluate(&scorer, d, Split::Train, &filter, &EvalConfig::default()).mrr()
    }

    #[test]
    fn transe_learns_a_chain() {
        let d = toy();
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let m = TransE::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_mrr(&m, &mut store, &d, NegWeighting::Uniform);
        assert!(mrr > 0.5, "TransE train MRR {mrr}");
    }

    #[test]
    fn rotate_learns_a_chain() {
        let d = toy();
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = RotatE::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_mrr(&m, &mut store, &d, NegWeighting::Uniform);
        assert!(mrr > 0.5, "RotatE train MRR {mrr}");
    }

    #[test]
    fn a_rotate_self_adversarial_learns() {
        let d = toy();
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let m = RotatE::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_mrr(&m, &mut store, &d, NegWeighting::SelfAdversarial(1.0));
        assert!(mrr > 0.5, "a-RotatE train MRR {mrr}");
    }

    #[test]
    fn pairre_learns_a_chain() {
        let d = toy();
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let m = PairRE::new(&mut store, &d, 16, &mut rng);
        let mrr = fit_and_mrr(&m, &mut store, &d, NegWeighting::SelfAdversarial(1.0));
        assert!(mrr > 0.5, "PairRE train MRR {mrr}");
    }

    #[test]
    fn rotate_rotation_preserves_modulus() {
        // |h ∘ r| = |h| elementwise: scoring (h, r, h∘r) must be ~0 distance
        // when t equals the rotated head; we verify score(h,r,·) is maximal
        // at a tail equal to the rotated head by construction: score of
        // identical embeddings under zero phase is 0.
        let d = toy();
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let m = RotatE::new(&mut store, &d, 8, &mut rng);
        // force zero phases and identical h/t rows
        store.value_mut(m.emb.rel.table).map_inplace(|_| 0.0);
        {
            let t = store.value_mut(m.emb.ent.table);
            let row: Vec<f32> = t.data()[..8].to_vec();
            t.data_mut()[8..16].copy_from_slice(&row);
        }
        let g = Graph::inference();
        let s = m.score(&g, &store, &[0], &[0], &[1]);
        assert!(g.value(s).data()[0].abs() < 1e-3);
    }
}
