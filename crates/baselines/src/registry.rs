//! Unified baseline registry: build + train + wrap any of the thirteen
//! Table III baselines behind one dispatch function, so the benchmark
//! harness can iterate rows uniformly.

use came_encoders::{CompGcn, Composition, ModalFeatures};
use came_kg::{
    train_negative_sampling, train_one_to_n, KgDataset, KgeModel, KgeScorer, NegSamplingConfig,
    NegWeighting, OneToNKge, OneToNModel, OneToNScorer, TailScorer, TrainConfig, TripleKge,
    TripleModel, TripleScorerAdapter,
};
use came_tensor::{ParamStore, Prng};

use crate::bilinear::{ComplEx, DistMult, DualE};
use crate::conve::ConvE;
use crate::mkgformer::MkgFormer;
use crate::multimodal::{Ikrl, Mtakgr, TransAe};
use crate::translational::{PairRE, RotatE, TransE};

/// The thirteen baselines of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Baseline {
    /// TransE (translation).
    TransE,
    /// DistMult (diagonal bilinear).
    DistMult,
    /// ComplEx (complex bilinear).
    ComplEx,
    /// ConvE (2-D convolution).
    ConvE,
    /// CompGCN (relational GCN).
    CompGcn,
    /// RotatE with uniform negatives.
    RotatE,
    /// RotatE with self-adversarial negatives.
    ARotatE,
    /// DualE (dual quaternions).
    DualE,
    /// PairRE (paired relation vectors).
    PairRE,
    /// IKRL (image/molecule-augmented TransE).
    Ikrl,
    /// MTAKGR (multimodal translation, summed sub-energies).
    Mtakgr,
    /// TransAE (multimodal autoencoder + TransE).
    TransAe,
    /// MKGformer M-Encoder core.
    MkgFormer,
}

impl Baseline {
    /// All baselines in the paper's Table III row order.
    pub fn all() -> [Baseline; 13] {
        [
            Baseline::TransE,
            Baseline::DistMult,
            Baseline::ComplEx,
            Baseline::ConvE,
            Baseline::CompGcn,
            Baseline::RotatE,
            Baseline::ARotatE,
            Baseline::DualE,
            Baseline::PairRE,
            Baseline::Ikrl,
            Baseline::Mtakgr,
            Baseline::TransAe,
            Baseline::MkgFormer,
        ]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Baseline::TransE => "TransE",
            Baseline::DistMult => "DistMult",
            Baseline::ComplEx => "ComplEx",
            Baseline::ConvE => "ConvE",
            Baseline::CompGcn => "CompGCN",
            Baseline::RotatE => "RotatE",
            Baseline::ARotatE => "a-RotatE",
            Baseline::DualE => "DualE",
            Baseline::PairRE => "PairRE",
            Baseline::Ikrl => "IKRL",
            Baseline::Mtakgr => "MTAKGR",
            Baseline::TransAe => "TransAE",
            Baseline::MkgFormer => "MKGformer",
        }
    }

    /// Whether the model consumes modal features.
    pub fn is_multimodal(self) -> bool {
        matches!(
            self,
            Baseline::Ikrl | Baseline::Mtakgr | Baseline::TransAe | Baseline::MkgFormer
        )
    }
}

/// Shared baseline hyper-parameters.
#[derive(Clone, Debug)]
pub struct BaselineHp {
    /// Embedding width (rounded up internally for ComplEx/DualE layouts).
    pub d: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate for 1-N trained models.
    pub lr_one_to_n: f32,
    /// Learning rate for negative-sampling trained models.
    pub lr_neg: f32,
    /// Negatives per positive (negative-sampling models).
    pub k_neg: usize,
    /// Margin γ.
    pub margin: f32,
    /// Label smoothing ε (1-N models).
    pub label_smoothing: f32,
    /// Convolution filters (ConvE).
    pub conv_filters: usize,
    /// Convolution kernel (ConvE).
    pub conv_kernel: usize,
    /// Seed.
    pub seed: u64,
    /// Kernel backend to select before training. `None` keeps the
    /// process-wide default (`CAME_BACKEND` env, else parallel).
    pub backend: Option<came_tensor::BackendKind>,
}

impl Default for BaselineHp {
    fn default() -> Self {
        BaselineHp {
            d: 64,
            epochs: 20,
            batch_size: 128,
            lr_one_to_n: 3e-3,
            lr_neg: 1e-2,
            k_neg: 16,
            margin: 6.0,
            label_smoothing: 0.1,
            conv_filters: 16,
            conv_kernel: 3,
            seed: 0xBA5E,
            backend: None,
        }
    }
}

/// A trained baseline: any of the thirteen models behind the one
/// [`KgeModel`] interface, paired with its parameter store. Usable directly
/// as a [`TailScorer`] and servable through
/// [`came_kg::serve::ScoringEngine`].
pub struct TrainedBaseline {
    model: Box<dyn KgeModel + Send + Sync>,
    store: ParamStore,
    /// Per-epoch mean losses recorded during training.
    pub losses: Vec<f32>,
}

impl TrainedBaseline {
    /// The trained model as the unified trait object.
    pub fn model(&self) -> &dyn KgeModel {
        self.model.as_ref()
    }

    /// The trained model as a `Sync` trait object, shareable across the
    /// serving tier's shard worker threads.
    pub fn model_sync(&self) -> &(dyn KgeModel + Sync) {
        self.model.as_ref()
    }

    /// The trained parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable store access (checkpoint restore).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Capture a checkpoint of this baseline through the [`KgeModel`]
    /// interface: parameters from the store, model state from the trait.
    pub fn capture(&self, fingerprint: u64, epoch_next: usize) -> came_kg::Snapshot {
        came_kg::capture_kge(
            self.model.as_ref(),
            &self.store,
            fingerprint,
            epoch_next,
            &[],
        )
    }

    /// Restore a checkpoint captured from this baseline, bit-identically.
    pub fn restore(&mut self, snap: &came_kg::Snapshot) -> Result<(), String> {
        came_kg::restore_kge(self.model.as_ref(), &mut self.store, snap)
    }
}

impl TailScorer for TrainedBaseline {
    fn score_tails(&self, queries: &[(came_kg::EntityId, came_kg::RelationId)]) -> Vec<Vec<f32>> {
        KgeScorer::new(self.model.as_ref(), &self.store).score_tails(queries)
    }
}

/// Per-epoch observer: `(epoch, elapsed seconds, scorer-so-far)`.
pub type EpochHook<'h> = dyn FnMut(usize, f64, &dyn TailScorer) + 'h;

/// Build and train a baseline. `features` is required for multimodal
/// baselines and ignored otherwise.
///
/// # Panics
/// Panics if a multimodal baseline is requested without features.
pub fn train_baseline(
    kind: Baseline,
    dataset: &KgDataset,
    features: Option<&ModalFeatures>,
    hp: &BaselineHp,
    mut hook: Option<&mut EpochHook<'_>>,
) -> TrainedBaseline {
    if let Some(kind) = hp.backend {
        came_tensor::set_backend(kind);
    }
    let mut rng = Prng::new(hp.seed);
    let mut store = ParamStore::new();
    let feats = || features.unwrap_or_else(|| panic!("{} needs modal features", kind.label()));
    let d_even = hp.d.next_multiple_of(2);
    let d_oct = hp.d.next_multiple_of(8);
    match kind {
        Baseline::TransE => {
            let m = TransE::new(&mut store, dataset, hp.d, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::Uniform,
                &mut hook,
            )
        }
        Baseline::DistMult => {
            let m = DistMult::new(&mut store, dataset, hp.d, &mut rng);
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
        Baseline::ComplEx => {
            let m = ComplEx::new(&mut store, dataset, d_even, &mut rng);
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
        Baseline::ConvE => {
            let m = ConvE::new(
                &mut store,
                dataset,
                hp.d,
                hp.conv_filters,
                hp.conv_kernel,
                &mut rng,
            );
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
        Baseline::CompGcn => {
            let m = CompGcn::new(&mut store, dataset, hp.d, 1, Composition::Mult, &mut rng);
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
        Baseline::RotatE => {
            let m = RotatE::new(&mut store, dataset, d_even, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::Uniform,
                &mut hook,
            )
        }
        Baseline::ARotatE => {
            let m = RotatE::new(&mut store, dataset, d_even, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::SelfAdversarial(1.0),
                &mut hook,
            )
        }
        Baseline::DualE => {
            let m = DualE::new(&mut store, dataset, d_oct, &mut rng);
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
        Baseline::PairRE => {
            let m = PairRE::new(&mut store, dataset, hp.d, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::SelfAdversarial(1.0),
                &mut hook,
            )
        }
        Baseline::Ikrl => {
            let m = Ikrl::new(&mut store, dataset, feats(), hp.d, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::Uniform,
                &mut hook,
            )
        }
        Baseline::Mtakgr => {
            let m = Mtakgr::new(&mut store, dataset, feats(), hp.d, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::Uniform,
                &mut hook,
            )
        }
        Baseline::TransAe => {
            let m = TransAe::new(&mut store, dataset, feats(), hp.d, &mut rng);
            run_triple(
                kind.label(),
                m,
                store,
                dataset,
                hp,
                NegWeighting::Uniform,
                &mut hook,
            )
        }
        Baseline::MkgFormer => {
            let m = MkgFormer::new(&mut store, dataset, feats(), hp.d, &mut rng);
            run_one_to_n(kind.label(), m, store, dataset, hp, &mut hook)
        }
    }
}

fn run_one_to_n<M: OneToNModel + Send + Sync + 'static>(
    label: &str,
    model: M,
    mut store: ParamStore,
    dataset: &KgDataset,
    hp: &BaselineHp,
    hook: &mut Option<&mut EpochHook<'_>>,
) -> TrainedBaseline {
    let cfg = TrainConfig {
        epochs: hp.epochs,
        batch_size: hp.batch_size,
        lr: hp.lr_one_to_n,
        label_smoothing: hp.label_smoothing,
        seed: hp.seed,
        ..Default::default()
    };
    let stats = train_one_to_n(&model, &mut store, dataset, &cfg, |s, m, st| {
        if let Some(h) = hook.as_deref_mut() {
            h(s.epoch, s.elapsed_s, &OneToNScorer::new(m, st));
        }
    });
    TrainedBaseline {
        model: Box::new(OneToNKge::new(label, model, dataset.num_entities())),
        store,
        losses: stats.iter().map(|s| s.loss).collect(),
    }
}

fn run_triple<M: TripleModel + Send + Sync + 'static>(
    label: &str,
    model: M,
    mut store: ParamStore,
    dataset: &KgDataset,
    hp: &BaselineHp,
    weighting: NegWeighting,
    hook: &mut Option<&mut EpochHook<'_>>,
) -> TrainedBaseline {
    let n = dataset.num_entities();
    let cfg = NegSamplingConfig {
        base: TrainConfig {
            epochs: hp.epochs,
            batch_size: hp.batch_size,
            lr: hp.lr_neg,
            seed: hp.seed,
            ..Default::default()
        },
        k: hp.k_neg,
        margin: hp.margin,
        weighting,
    };
    let stats = train_negative_sampling(&model, &mut store, dataset, &cfg, |s, m, st| {
        if let Some(h) = hook.as_deref_mut() {
            h(s.epoch, s.elapsed_s, &TripleScorerAdapter::new(m, st, n));
        }
    });
    TrainedBaseline {
        model: Box::new(TripleKge::new(label, model, n)),
        store,
        losses: stats.iter().map(|s| s.loss).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_biodata::presets;
    use came_encoders::FeatureConfig;
    use came_kg::{evaluate, EvalConfig, Split};

    #[test]
    fn registry_has_thirteen_distinct_rows() {
        let all = Baseline::all();
        assert_eq!(all.len(), 13);
        let labels: std::collections::HashSet<_> = all.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 13);
        assert_eq!(all.iter().filter(|b| b.is_multimodal()).count(), 4);
    }

    #[test]
    fn every_baseline_trains_one_epoch_and_scores() {
        let bkg = presets::tiny(0);
        let f = ModalFeatures::build(
            &bkg,
            &FeatureConfig {
                d_molecule: 8,
                d_text: 12,
                d_struct: 8,
                gin_layers: 1,
                compgcn_epochs: 1,
                seed: 0,
            },
        );
        let hp = BaselineHp {
            d: 16,
            epochs: 1,
            batch_size: 64,
            ..Default::default()
        };
        let filter = bkg.dataset.filter_index();
        let ev = EvalConfig {
            max_triples: Some(20),
            ..Default::default()
        };
        for kind in Baseline::all() {
            let trained = train_baseline(kind, &bkg.dataset, Some(&f), &hp, None);
            assert_eq!(trained.losses.len(), 1, "{}", kind.label());
            let m = evaluate(&trained, &bkg.dataset, Split::Test, &filter, &ev);
            assert!(m.count() > 0, "{} produced no rankings", kind.label());
            assert!(m.mrr() > 0.0 && m.mrr() <= 1.0, "{}", kind.label());
        }
    }

    #[test]
    fn epoch_hook_sees_every_epoch() {
        let bkg = presets::tiny(1);
        let hp = BaselineHp {
            d: 16,
            epochs: 3,
            ..Default::default()
        };
        let mut epochs_seen = Vec::new();
        {
            let mut hook = |e: usize, _t: f64, _s: &dyn TailScorer| epochs_seen.push(e);
            train_baseline(Baseline::DistMult, &bkg.dataset, None, &hp, Some(&mut hook));
        }
        assert_eq!(epochs_seen, vec![0, 1, 2]);
    }

    #[test]
    fn param_registration_and_checkpoint_round_trip() {
        let bkg = presets::tiny(3);
        let build = || {
            let mut rng = Prng::new(7);
            let mut store = ParamStore::new();
            let model = ConvE::new(&mut store, &bkg.dataset, 16, 4, 3, &mut rng);
            (model, store)
        };

        // Registration is deterministic: the same constructor yields the same
        // parameter names, shapes, and initial bytes every time.
        let (_, a) = build();
        let (_, b) = build();
        let names_a: Vec<_> = a.state_views().map(|p| p.name.to_string()).collect();
        let names_b: Vec<_> = b.state_views().map(|p| p.name.to_string()).collect();
        assert_eq!(names_a, names_b);
        for (x, y) in a.state_views().zip(b.state_views()) {
            assert_eq!(x.value.shape(), y.value.shape(), "{}", x.name);
            assert_eq!(x.value.data(), y.value.data(), "{}", x.name);
        }

        // Checkpoint round-trip: capture, train (perturbing every param),
        // restore, and the store is bit-identical to the captured state.
        let (model, mut store) = build();
        let snap = came_kg::Snapshot::capture(&store, 0xC0FE, 0, 1.0, 0, Vec::new(), &[]);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 64,
            seed: 7,
            ..Default::default()
        };
        train_one_to_n(&model, &mut store, &bkg.dataset, &cfg, |_, _, _| {});
        let drifted = store
            .state_views()
            .zip(snap.params.iter())
            .any(|(live, saved)| live.value.data() != saved.value.as_slice());
        assert!(drifted, "training should have moved at least one parameter");
        snap.restore_into(&mut store).unwrap();
        for (live, saved) in store.state_views().zip(snap.params.iter()) {
            assert_eq!(live.name, saved.name);
            assert_eq!(live.value.data(), saved.value.as_slice(), "{}", live.name);
            assert_eq!(live.m.data(), saved.m.as_slice(), "{}", live.name);
            assert_eq!(live.v.data(), saved.v.as_slice(), "{}", live.name);
        }
    }

    #[test]
    #[should_panic(expected = "needs modal features")]
    fn multimodal_without_features_panics() {
        let bkg = presets::tiny(2);
        let hp = BaselineHp {
            d: 8,
            epochs: 1,
            ..Default::default()
        };
        train_baseline(Baseline::Ikrl, &bkg.dataset, None, &hp, None);
    }
}
