//! Shared pieces for the baseline models: embedding pairs, norm helpers,
//! frozen-feature gathering.

use came_tensor::{EmbeddingTable, Graph, ParamStore, Prng, Shape, Tensor, Var};

/// Learnable entity + relation tables shared by most baselines.
pub struct EmbeddingPair {
    /// Entity table `[N, d]`.
    pub ent: EmbeddingTable,
    /// Relation table `[2R, d]` (inverse-augmented).
    pub rel: EmbeddingTable,
}

impl EmbeddingPair {
    /// Xavier-initialised tables.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        n_ent: usize,
        n_rel_aug: usize,
        d: usize,
        rng: &mut Prng,
    ) -> Self {
        EmbeddingPair {
            ent: EmbeddingTable::new(store, format!("{name}.ent"), n_ent, d, rng),
            rel: EmbeddingTable::new(store, format!("{name}.rel"), n_rel_aug, d, rng),
        }
    }
}

/// `-||x||₁` per row of `x: [B, d]` → `[B]` (negated so that higher = better).
pub fn neg_l1_rows(g: &Graph, x: Var) -> Var {
    g.neg(g.sum_axis(g.abs(x), 1, false))
}

/// `-||x||₂` per row.
pub fn neg_l2_rows(g: &Graph, x: Var) -> Var {
    let eps = g.constant(1e-9);
    g.neg(g.sqrt(g.add(g.sum_axis(g.square(x), 1, false), eps)))
}

/// Gather rows of a frozen (no-gradient) feature table as a graph input.
pub fn frozen_input(g: &Graph, table: &Tensor, ids: &[u32]) -> Var {
    let d = table.shape().at(1);
    let mut out = Tensor::zeros(Shape::d2(ids.len(), d));
    for (row, &id) in ids.iter().enumerate() {
        out.data_mut()[row * d..(row + 1) * d]
            .copy_from_slice(&table.data()[id as usize * d..(id as usize + 1) * d]);
    }
    g.input(out)
}

/// Split a `[B, 2k]` node into real/imaginary halves `([B,k], [B,k])`.
pub fn complex_halves(g: &Graph, x: Var) -> (Var, Var) {
    let d = g.shape(x).at(1);
    assert!(d % 2 == 0, "complex embedding width must be even");
    let k = d / 2;
    (g.narrow(x, 1, 0, k), g.narrow(x, 1, k, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_helpers_match_hand_values() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(Shape::d2(2, 2), vec![3.0, -4.0, 0.0, 2.0]));
        let l1 = g.value(neg_l1_rows(&g, x));
        assert_eq!(l1.data(), &[-7.0, -2.0]);
        let l2 = g.value(neg_l2_rows(&g, x));
        assert!((l2.data()[0] + 5.0).abs() < 1e-4);
        assert!((l2.data()[1] + 2.0).abs() < 1e-4);
    }

    #[test]
    fn complex_halves_split() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(Shape::d2(1, 4), vec![1.0, 2.0, 3.0, 4.0]));
        let (re, im) = complex_halves(&g, x);
        assert_eq!(g.value(re).data(), &[1.0, 2.0]);
        assert_eq!(g.value(im).data(), &[3.0, 4.0]);
    }

    #[test]
    fn frozen_input_gathers_rows() {
        let g = Graph::new();
        let t = Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = frozen_input(&g, &t, &[1, 1, 0]);
        assert_eq!(g.value(v).data(), &[3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
    }
}
