//! Backend parity: every kernel of [`ParallelBackend`] and [`SimdBackend`]
//! must match [`ScalarBackend`] within 1e-5 on randomized shapes — including
//! sizes that are not multiples of the GEMM tile or the vector width,
//! batch = 1, and empty dims — and the autograd backward pass must agree
//! across all three backends.
//!
//! Kernel tests address the implementations *directly* (no global backend
//! mutation), so they are safe under the multithreaded test harness. The
//! cross-backend gradient checks flip the process-global backend and are
//! serialised behind a mutex.

use came_tensor::backend::{self, AdamHp, Backend};
use came_tensor::{
    BackendKind, Graph, ParallelBackend, ParamStore, Prng, ScalarBackend, Shape, SimdBackend,
    Tensor,
};
use std::sync::Mutex;

const TOL: f32 = 1e-5;

/// The backends checked against the scalar oracle.
fn others() -> [(&'static str, &'static dyn Backend); 2] {
    [("parallel", &ParallelBackend), ("simd", &SimdBackend)]
}

fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
    (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
}

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

/// Shapes chosen to straddle the 4-row micro-kernel, the 32-row panel, the
/// 256-wide k block, the 8/16-float vector tiles, and the threading
/// thresholds; includes batch=1 and 0-dims.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (4, 4, 4),
    (5, 3, 2),     // remainder row path
    (7, 19, 11),   // nothing divides the tiles
    (33, 40, 31),  // one past the panel size
    (64, 300, 17), // k crosses the 256 block boundary
    (97, 43, 129),
    (25, 30, 16), // exactly one AVX2 column tile
    (26, 31, 15), // one short of the SSE2-wide tile
    (3, 9, 40),   // fewer rows than any MR block
    (0, 5, 3),    // m == 0
    (3, 0, 5),    // k == 0: pure accumulate-nothing
    (3, 5, 0),    // n == 0
];

#[test]
fn matmul_parity_on_randomized_shapes() {
    let mut rng = Prng::new(0x9A71);
    for &(m, k, n) in GEMM_SHAPES {
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        // accumulate into a non-zero C so the += contract is exercised too
        let init = randv(m * n, &mut rng);
        let mut scalar = init.clone();
        ScalarBackend.matmul(&a, &b, &mut scalar, m, k, n);
        for (name, be) in others() {
            let mut got = init.clone();
            be.matmul(&a, &b, &mut got, m, k, n);
            assert_close(&got, &scalar, &format!("{name} matmul {m}x{k}x{n}"));
        }
    }
}

#[test]
fn matmul_batched_parity_including_batch_one() {
    let mut rng = Prng::new(0x9A72);
    for &(batch, m, k, n) in &[
        (1usize, 5usize, 7usize, 3usize),
        (4, 9, 13, 6),
        (16, 6, 6, 6),
        (2, 10, 12, 20),
        (3, 0, 4, 2),
    ] {
        let a = randv(batch * m * k, &mut rng);
        let b = randv(batch * k * n, &mut rng);
        let mut scalar = vec![0.0; batch * m * n];
        ScalarBackend.matmul_batched(&a, &b, &mut scalar, batch, m, k, n);
        for (name, be) in others() {
            let mut got = vec![0.0; batch * m * n];
            be.matmul_batched(&a, &b, &mut got, batch, m, k, n);
            assert_close(
                &got,
                &scalar,
                &format!("{name} batched {batch}x{m}x{k}x{n}"),
            );
        }
    }
}

#[test]
fn softmax_parity() {
    let mut rng = Prng::new(0x9A73);
    for &(rows, lane) in &[
        (1usize, 1usize),
        (3, 7),
        (200, 33),
        (1000, 40),
        (5, 1),
        (4, 8),
        (4, 19),
    ] {
        let base = randv(rows * lane, &mut rng);
        let mut scalar = base.clone();
        ScalarBackend.softmax_lanes(&mut scalar, lane);
        for (name, be) in others() {
            let mut got = base.clone();
            be.softmax_lanes(&mut got, lane);
            assert_close(&got, &scalar, &format!("{name} softmax {rows}x{lane}"));
        }
    }
    // empty buffer / zero lane are no-ops on all backends
    ScalarBackend.softmax_lanes(&mut [], 4);
    ParallelBackend.softmax_lanes(&mut [], 0);
    SimdBackend.softmax_lanes(&mut [], 0);
}

#[test]
fn layer_norm_parity_forward_and_backward() {
    let mut rng = Prng::new(0x9A74);
    for &(rows, lane) in &[(1usize, 2usize), (7, 5), (300, 64), (2048, 16), (9, 21)] {
        let x = randv(rows * lane, &mut rng);
        let g = randv(rows * lane, &mut rng);
        let mut fs = x.clone();
        ScalarBackend.layer_norm_lanes(&mut fs, lane, 1e-6);
        let mut bs = vec![0.0; rows * lane];
        ScalarBackend.layer_norm_backward_lanes(&x, &g, &mut bs, lane, 1e-6);
        for (name, be) in others() {
            let mut fp = x.clone();
            be.layer_norm_lanes(&mut fp, lane, 1e-6);
            assert_close(&fp, &fs, &format!("{name} ln fwd {rows}x{lane}"));
            let mut bp = vec![0.0; rows * lane];
            be.layer_norm_backward_lanes(&x, &g, &mut bp, lane, 1e-6);
            assert_close(&bp, &bs, &format!("{name} ln bwd {rows}x{lane}"));
        }
    }
}

#[test]
fn elementwise_driver_parity() {
    let mut rng = Prng::new(0x9A75);
    for &n in &[0usize, 1, 100, 50_000] {
        let a = randv(n, &mut rng);
        let b = randv(n, &mut rng);
        let relu = |chunk: &mut [f32]| {
            for x in chunk {
                *x = x.max(0.0);
            }
        };
        let tanh = |src: &[f32], dst: &mut [f32]| {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s.tanh();
            }
        };
        let mul = |x: &[f32], y: &[f32], dst: &mut [f32]| {
            for ((d, &a), &b) in dst.iter_mut().zip(x).zip(y) {
                *d = a * b;
            }
        };
        let mut s1 = a.clone();
        ScalarBackend.run1(&mut s1, &relu);
        let mut s2 = vec![0.0; n];
        ScalarBackend.run2(&a, &mut s2, &tanh);
        let mut s3 = vec![0.0; n];
        ScalarBackend.run3(&a, &b, &mut s3, &mul);
        for (name, be) in others() {
            let mut p1 = a.clone();
            be.run1(&mut p1, &relu);
            assert_close(&p1, &s1, &format!("{name} run1 n={n}"));
            let mut p2 = vec![0.0; n];
            be.run2(&a, &mut p2, &tanh);
            assert_close(&p2, &s2, &format!("{name} run2 n={n}"));
            let mut p3 = vec![0.0; n];
            be.run3(&a, &b, &mut p3, &mul);
            assert_close(&p3, &s3, &format!("{name} run3 n={n}"));
        }
    }
}

#[test]
fn reduction_parity() {
    let mut rng = Prng::new(0x9A76);
    for &n in &[0usize, 1, 31, 4095, 4096, 4097, 120_000] {
        let a = randv(n, &mut rng);
        let b = randv(n, &mut rng);
        let ss = ScalarBackend.sum(&a);
        let sd = ScalarBackend.dot(&a, &b);
        for (name, be) in others() {
            let ps = be.sum(&a);
            assert!(
                (ss - ps).abs() <= TOL * (1.0 + ss.abs()),
                "{name} sum n={n}: {ss} vs {ps}"
            );
            let pd = be.dot(&a, &b);
            assert!(
                (sd - pd).abs() <= TOL * (1.0 + sd.abs()) * 10.0,
                "{name} dot n={n}: {sd} vs {pd}"
            );
        }
    }
}

#[test]
fn adam_update_parity() {
    let mut rng = Prng::new(0x9A77);
    let hp = AdamHp {
        lr: 1e-2,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 0.01,
        bias1: 0.1,
        bias2: 0.001,
    };
    for &n in &[1usize, 37, 70_000] {
        let g = randv(n, &mut rng);
        let x0 = randv(n, &mut rng);
        let m0 = randv(n, &mut rng);
        let v0: Vec<f32> = randv(n, &mut rng).iter().map(|v| v.abs()).collect();
        let (mut xs, mut ms, mut vs) = (x0.clone(), m0.clone(), v0.clone());
        ScalarBackend.adam_update(&mut xs, &g, &mut ms, &mut vs, &hp);
        for (name, be) in others() {
            let (mut xp, mut mp, mut vp) = (x0.clone(), m0.clone(), v0.clone());
            be.adam_update(&mut xp, &g, &mut mp, &mut vp, &hp);
            assert_close(&xp, &xs, &format!("{name} adam x n={n}"));
            assert_close(&mp, &ms, &format!("{name} adam m n={n}"));
            assert_close(&vp, &vs, &format!("{name} adam v n={n}"));
        }
    }
}

#[test]
fn fused_attention_kernel_parity() {
    let mut rng = Prng::new(0x9A78);
    // (batch, m, k, n): n == 1 is the TCA hot path with its own simd code
    for &(batch, m, k, n) in &[
        (1usize, 3usize, 5usize, 1usize),
        (4, 8, 33, 1),
        (2, 6, 64, 1),
        (3, 4, 10, 6),
        (2, 5, 17, 3),
        (1, 2, 40, 24),
    ] {
        let a = randv(batch * m, &mut rng);
        let c = randv(batch * k, &mut rng);
        let v = randv(batch * k * n, &mut rng);
        let scores = randv(batch * m * k, &mut rng);
        let gout = randv(batch * m * n, &mut rng);
        let tau = 1.37;

        let mut soft_s = vec![0.0; batch * m * k];
        let mut out_s = vec![0.0; batch * m * n];
        ScalarBackend.outer_attention(&a, &c, &v, tau, &mut soft_s, &mut out_s, batch, m, k, n);
        let mut fwd_s = vec![0.0; batch * m * n];
        ScalarBackend.outer_attention_fwd(&a, &c, &v, tau, &mut fwd_s, batch, m, k, n);
        let mut sm_soft_s = vec![0.0; batch * m * k];
        let mut sm_out_s = vec![0.0; batch * m * n];
        ScalarBackend.softmax_matmul(&scores, &v, &mut sm_soft_s, &mut sm_out_s, batch, m, k, n);
        let mut sm_fwd_s = vec![0.0; batch * m * n];
        ScalarBackend.softmax_matmul_fwd(&scores, &v, &mut sm_fwd_s, batch, m, k, n);
        let mut ga_s = vec![0.0; batch * m];
        let mut gc_s = vec![0.0; batch * k];
        let mut gv_s = vec![0.0; batch * k * n];
        let gtau_s = ScalarBackend.outer_attention_backward(
            &a, &c, &v, &soft_s, &gout, tau, &mut ga_s, &mut gc_s, &mut gv_s, batch, m, k, n,
        );

        for (name, be) in others() {
            let what = format!("{name} {batch}x{m}x{k}x{n}");
            let mut soft = vec![0.0; batch * m * k];
            let mut out = vec![0.0; batch * m * n];
            be.outer_attention(&a, &c, &v, tau, &mut soft, &mut out, batch, m, k, n);
            assert_close(&soft, &soft_s, &format!("{what} oa soft"));
            assert_close(&out, &out_s, &format!("{what} oa out"));
            let mut fwd = vec![0.0; batch * m * n];
            be.outer_attention_fwd(&a, &c, &v, tau, &mut fwd, batch, m, k, n);
            assert_close(&fwd, &fwd_s, &format!("{what} oa fwd"));
            let mut sm_soft = vec![0.0; batch * m * k];
            let mut sm_out = vec![0.0; batch * m * n];
            be.softmax_matmul(&scores, &v, &mut sm_soft, &mut sm_out, batch, m, k, n);
            assert_close(&sm_soft, &sm_soft_s, &format!("{what} sm soft"));
            assert_close(&sm_out, &sm_out_s, &format!("{what} sm out"));
            let mut sm_fwd = vec![0.0; batch * m * n];
            be.softmax_matmul_fwd(&scores, &v, &mut sm_fwd, batch, m, k, n);
            assert_close(&sm_fwd, &sm_fwd_s, &format!("{what} sm fwd"));
            let mut ga = vec![0.0; batch * m];
            let mut gc = vec![0.0; batch * k];
            let mut gv = vec![0.0; batch * k * n];
            let gtau = be.outer_attention_backward(
                &a, &c, &v, &soft_s, &gout, tau, &mut ga, &mut gc, &mut gv, batch, m, k, n,
            );
            assert_close(&ga, &ga_s, &format!("{what} oa bwd ga"));
            assert_close(&gc, &gc_s, &format!("{what} oa bwd gc"));
            assert_close(&gv, &gv_s, &format!("{what} oa bwd gv"));
            assert!(
                (gtau - gtau_s).abs() <= TOL * (1.0 + gtau_s.abs()) * 10.0,
                "{what} gtau: {gtau} vs {gtau_s}"
            );
        }
    }
}

/// k values straddling the q8 strip width, the vector tiles, and the
/// degenerate sizes; paired with m/n that exercise empty outputs.
const Q8_KS: &[usize] = &[0, 1, 3, 8, 31, 64, 257];

fn randcodes(n: usize, rng: &mut Prng) -> Vec<u8> {
    (0..n)
        .map(|_| (rng.normal_in(128.0, 50.0).clamp(0.0, 255.0)) as u8)
        .collect()
}

#[test]
fn dot_q8_parity_and_scalar_reference() {
    let mut rng = Prng::new(0x9A79);
    for &k in Q8_KS {
        let a = randv(k, &mut rng);
        let codes = randcodes(k, &mut rng);
        let reference: f32 = a.iter().zip(&codes).map(|(&x, &c)| x * c as f32).sum();
        let s = ScalarBackend.dot_q8(&a, &codes);
        assert!(
            (s - reference).abs() <= TOL * (1.0 + reference.abs()) * 10.0,
            "scalar dot_q8 k={k}: {s} vs {reference}"
        );
        // parallel shares the scalar strip reduction: bitwise equal
        assert_eq!(
            ParallelBackend.dot_q8(&a, &codes).to_bits(),
            s.to_bits(),
            "parallel dot_q8 k={k} must be bitwise scalar"
        );
        let v = SimdBackend.dot_q8(&a, &codes);
        assert!(
            (v - s).abs() <= TOL * (1.0 + s.abs()) * 10.0,
            "simd dot_q8 k={k}: {v} vs {s}"
        );
    }
}

#[test]
fn gemm_q8_f32_parity_on_randomized_shapes() {
    let mut rng = Prng::new(0x9A7A);
    for &(m, n) in &[(1usize, 1usize), (3, 7), (8, 33), (16, 100), (0, 5), (5, 0)] {
        for &k in Q8_KS {
            let a = randv(m * k, &mut rng);
            let a_sums: Vec<f32> = a.chunks(k.max(1)).map(|r| r.iter().sum()).collect();
            let a_sums = if k == 0 { vec![0.0; m] } else { a_sums };
            let codes = randcodes(n * k, &mut rng);
            let scales = randv(n, &mut rng)
                .iter()
                .map(|s| s.abs() * 0.01)
                .collect::<Vec<_>>();
            let mins = randv(n, &mut rng);
            // plain-loop reference for the fused affine-dequant contract
            let mut reference = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    let dot: f32 = (0..k).map(|t| a[i * k + t] * codes[j * k + t] as f32).sum();
                    reference[i * n + j] = mins[j] * a_sums[i] + scales[j] * dot;
                }
            }
            let mut s = vec![0.0f32; m * n];
            ScalarBackend.gemm_q8_f32(&a, &a_sums, &codes, &scales, &mins, &mut s, m, k, n);
            assert_close(&s, &reference, &format!("scalar gemm_q8 {m}x{k}x{n}"));
            let mut p = vec![0.0f32; m * n];
            ParallelBackend.gemm_q8_f32(&a, &a_sums, &codes, &scales, &mins, &mut p, m, k, n);
            assert_eq!(
                s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "parallel gemm_q8 {m}x{k}x{n} must be bitwise scalar"
            );
            let mut v = vec![0.0f32; m * n];
            SimdBackend.gemm_q8_f32(&a, &a_sums, &codes, &scales, &mins, &mut v, m, k, n);
            // long-k reductions group differently under simd: same 10x slack
            // as the dot/sum parity checks
            for (i, (x, y)) in v.iter().zip(&s).enumerate() {
                assert!(
                    (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())) * 10.0,
                    "simd gemm_q8 {m}x{k}x{n}[{i}]: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn store_variants_agree_under_every_backend() {
    use came_tensor::{build_store, StoreKind};
    let mut rng = Prng::new(0x9A7B);
    let (n, d, m) = (67, 23, 5);
    let rows = randv(n * d, &mut rng);
    let queries = randv(m * d, &mut rng);
    // f32 store scored under the scalar backend is the oracle
    let f32_store = build_store(StoreKind::F32, &rows, n, d, 8).unwrap();
    let mut oracle = vec![0.0f32; m * n];
    with_backend(BackendKind::Scalar, || {
        f32_store.score_range_into(&queries, m, 0, n, &mut oracle);
    });
    for kind in [
        BackendKind::Scalar,
        BackendKind::Parallel,
        BackendKind::Simd,
    ] {
        with_backend(kind, || {
            // tiny cache (n/4 rows) so the file store streams most rows
            let stores = [
                build_store(StoreKind::F32, &rows, n, d, 8).unwrap(),
                build_store(StoreKind::Q8, &rows, n, d, 8).unwrap(),
                build_store(StoreKind::File, &rows, n, d, n / 4).unwrap(),
            ];
            let mut q8_full: Option<Vec<f32>> = None;
            for st in &stores {
                // full range and an interior sub-range against the oracle
                let mut full = vec![0.0f32; m * n];
                st.score_range_into(&queries, m, 0, n, &mut full);
                let what = format!("{kind:?} {:?}", st.kind());
                // q8 dequant error: half-step per element, d elements
                let budget = if st.kind() == StoreKind::F32 {
                    TOL
                } else {
                    0.05
                };
                for (i, (got, want)) in full.iter().zip(&oracle).enumerate() {
                    assert!(
                        (got - want).abs() <= budget * (1.0 + want.abs()),
                        "{what}[{i}]: {got} vs {want}"
                    );
                }
                let (lo, hi) = (n / 3, n - 2);
                let mut sub = vec![0.0f32; m * (hi - lo)];
                st.score_range_into(&queries, m, lo, hi, &mut sub);
                for i in 0..m {
                    for j in lo..hi {
                        assert_eq!(
                            sub[i * (hi - lo) + (j - lo)].to_bits(),
                            full[i * n + j].to_bits(),
                            "{what}: sub-range must be a bitwise slice of the full range"
                        );
                    }
                }
                // file-backed rows are the same codes: bitwise q8 scores
                match st.kind() {
                    StoreKind::Q8 => q8_full = Some(full),
                    StoreKind::File => assert_eq!(
                        q8_full
                            .as_ref()
                            .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
                        Some(full.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
                        "{kind:?}: file store must match resident q8 bitwise"
                    ),
                    StoreKind::F32 => {}
                }
            }
        });
    }
}

/// Guards the process-global backend selection for the cross-backend
/// gradient checks below.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under the given global backend, restoring the previous selection.
fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let prev = backend::kind();
    came_tensor::set_backend(kind);
    let out = f();
    came_tensor::set_backend(prev);
    out
}

/// A small end-to-end model (matmul → layer-norm → conv-free softmax head →
/// BCE) whose forward value and parameter gradients are computed under one
/// backend.
fn grads_under(kind: BackendKind, seed: u64) -> (f32, Vec<Vec<f32>>) {
    with_backend(kind, || {
        let mut rng = Prng::new(seed);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::randn(Shape::d2(6, 9), 0.5, &mut rng));
        let w2 = store.add("w2", Tensor::randn(Shape::d2(9, 5), 0.5, &mut rng));
        let x = Tensor::randn(Shape::d2(11, 6), 1.0, &mut rng);
        let targets = Tensor::rand_uniform(Shape::d2(11, 5), 0.0, 1.0, &mut rng).map(|v| {
            if v > 0.5 {
                1.0
            } else {
                0.0
            }
        });

        let g = Graph::new();
        let xv = g.input(x);
        let h = g.matmul(xv, g.param(&store, w1));
        let h = g.layer_norm(h, 1e-6);
        let h = g.tanh(h);
        let logits = g.matmul(h, g.param(&store, w2));
        let sm = g.softmax(logits, 1);
        let logits2 = g.add(logits, sm);
        let loss = g.bce_with_logits(logits2, &targets);
        let lv = g.value(loss).item();
        g.backward(loss, &mut store);
        let grads = vec![
            store.grad(w1).data().to_vec(),
            store.grad(w2).data().to_vec(),
        ];
        (lv, grads)
    })
}

#[test]
fn backward_pass_agrees_across_backends() {
    for seed in [3u64, 17, 99] {
        let (loss_s, grads_s) = grads_under(BackendKind::Scalar, seed);
        for kind in [BackendKind::Parallel, BackendKind::Simd] {
            let (loss_p, grads_p) = grads_under(kind, seed);
            assert!(
                (loss_s - loss_p).abs() <= TOL * (1.0 + loss_s.abs()),
                "seed {seed} {kind:?}: loss {loss_s} vs {loss_p}"
            );
            for (i, (gs, gp)) in grads_s.iter().zip(&grads_p).enumerate() {
                assert_close(gp, gs, &format!("seed {seed} {kind:?}: grad[{i}]"));
            }
        }
    }
}

#[test]
fn conv_forward_and_backward_agree_across_backends() {
    let run = |kind: BackendKind| {
        with_backend(kind, || {
            let mut rng = Prng::new(0xC0);
            let x = Tensor::randn(Shape::d4(2, 3, 8, 7), 1.0, &mut rng);
            let w = Tensor::randn(Shape::d4(5, 3, 3, 3), 0.5, &mut rng);
            let b = Tensor::randn(Shape::d1(5), 0.5, &mut rng);
            let y = came_tensor::conv::conv2d_forward(&x, &w, Some(&b));
            let gout = Tensor::randn(y.shape(), 1.0, &mut rng);
            let (gx, gw, gb) = came_tensor::conv::conv2d_backward(&x, &w, &gout);
            (y, gx, gw, gb)
        })
    };
    let (ys, gxs, gws, gbs) = run(BackendKind::Scalar);
    for kind in [BackendKind::Parallel, BackendKind::Simd] {
        let (yp, gxp, gwp, gbp) = run(kind);
        assert_close(yp.data(), ys.data(), &format!("{kind:?} conv fwd"));
        assert_close(gxp.data(), gxs.data(), &format!("{kind:?} conv gx"));
        assert_close(gwp.data(), gws.data(), &format!("{kind:?} conv gw"));
        assert_close(gbp.data(), gbs.data(), &format!("{kind:?} conv gb"));
    }
}
