//! Backend parity: every kernel of [`ParallelBackend`] must match
//! [`ScalarBackend`] within 1e-5 on randomized shapes — including sizes that
//! are not multiples of the GEMM tile, batch = 1, and empty dims — and the
//! autograd backward pass must agree across backends.
//!
//! Kernel tests address the two implementations *directly* (no global
//! backend mutation), so they are safe under the multithreaded test harness.
//! The cross-backend gradient check flips the process-global backend and is
//! serialised behind a mutex.

use came_tensor::backend::{self, AdamHp, Backend};
use came_tensor::{
    BackendKind, Graph, ParallelBackend, ParamStore, Prng, ScalarBackend, Shape, Tensor,
};
use std::sync::Mutex;

const TOL: f32 = 1e-5;

fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
    (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
}

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

/// Shapes chosen to straddle the 4-row micro-kernel, the 32-row panel, the
/// 256-wide k block, and the threading thresholds; includes batch=1 and 0-dims.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (4, 4, 4),
    (5, 3, 2),     // remainder row path
    (7, 19, 11),   // nothing divides the tiles
    (33, 40, 31),  // one past the panel size
    (64, 300, 17), // k crosses the 256 block boundary
    (97, 43, 129),
    (0, 5, 3), // m == 0
    (3, 0, 5), // k == 0: pure accumulate-nothing
    (3, 5, 0), // n == 0
];

#[test]
fn matmul_parity_on_randomized_shapes() {
    let mut rng = Prng::new(0x9A71);
    for &(m, k, n) in GEMM_SHAPES {
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        // accumulate into a non-zero C so the += contract is exercised too
        let init = randv(m * n, &mut rng);
        let mut scalar = init.clone();
        let mut par = init.clone();
        ScalarBackend.matmul(&a, &b, &mut scalar, m, k, n);
        ParallelBackend.matmul(&a, &b, &mut par, m, k, n);
        assert_close(&par, &scalar, &format!("matmul {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_batched_parity_including_batch_one() {
    let mut rng = Prng::new(0x9A72);
    for &(batch, m, k, n) in &[
        (1usize, 5usize, 7usize, 3usize),
        (4, 9, 13, 6),
        (16, 6, 6, 6),
        (3, 0, 4, 2),
    ] {
        let a = randv(batch * m * k, &mut rng);
        let b = randv(batch * k * n, &mut rng);
        let mut scalar = vec![0.0; batch * m * n];
        let mut par = scalar.clone();
        ScalarBackend.matmul_batched(&a, &b, &mut scalar, batch, m, k, n);
        ParallelBackend.matmul_batched(&a, &b, &mut par, batch, m, k, n);
        assert_close(&par, &scalar, &format!("batched {batch}x{m}x{k}x{n}"));
    }
}

#[test]
fn softmax_parity() {
    let mut rng = Prng::new(0x9A73);
    for &(rows, lane) in &[(1usize, 1usize), (3, 7), (200, 33), (1000, 40), (5, 1)] {
        let mut scalar = randv(rows * lane, &mut rng);
        let mut par = scalar.clone();
        ScalarBackend.softmax_lanes(&mut scalar, lane);
        ParallelBackend.softmax_lanes(&mut par, lane);
        assert_close(&par, &scalar, &format!("softmax {rows}x{lane}"));
    }
    // empty buffer / zero lane are no-ops on both
    ScalarBackend.softmax_lanes(&mut [], 4);
    ParallelBackend.softmax_lanes(&mut [], 0);
}

#[test]
fn layer_norm_parity_forward_and_backward() {
    let mut rng = Prng::new(0x9A74);
    for &(rows, lane) in &[(1usize, 2usize), (7, 5), (300, 64), (2048, 16)] {
        let x = randv(rows * lane, &mut rng);
        let g = randv(rows * lane, &mut rng);
        let mut fs = x.clone();
        let mut fp = x.clone();
        ScalarBackend.layer_norm_lanes(&mut fs, lane, 1e-6);
        ParallelBackend.layer_norm_lanes(&mut fp, lane, 1e-6);
        assert_close(&fp, &fs, &format!("ln fwd {rows}x{lane}"));
        let mut bs = vec![0.0; rows * lane];
        let mut bp = bs.clone();
        ScalarBackend.layer_norm_backward_lanes(&x, &g, &mut bs, lane, 1e-6);
        ParallelBackend.layer_norm_backward_lanes(&x, &g, &mut bp, lane, 1e-6);
        assert_close(&bp, &bs, &format!("ln bwd {rows}x{lane}"));
    }
}

#[test]
fn elementwise_driver_parity() {
    let mut rng = Prng::new(0x9A75);
    for &n in &[0usize, 1, 100, 50_000] {
        let a = randv(n, &mut rng);
        let b = randv(n, &mut rng);
        // run1
        let mut s1 = a.clone();
        let mut p1 = a.clone();
        let relu = |chunk: &mut [f32]| {
            for x in chunk {
                *x = x.max(0.0);
            }
        };
        ScalarBackend.run1(&mut s1, &relu);
        ParallelBackend.run1(&mut p1, &relu);
        assert_close(&p1, &s1, &format!("run1 n={n}"));
        // run2
        let mut s2 = vec![0.0; n];
        let mut p2 = vec![0.0; n];
        let tanh = |src: &[f32], dst: &mut [f32]| {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s.tanh();
            }
        };
        ScalarBackend.run2(&a, &mut s2, &tanh);
        ParallelBackend.run2(&a, &mut p2, &tanh);
        assert_close(&p2, &s2, &format!("run2 n={n}"));
        // run3
        let mut s3 = vec![0.0; n];
        let mut p3 = vec![0.0; n];
        let mul = |x: &[f32], y: &[f32], dst: &mut [f32]| {
            for ((d, &a), &b) in dst.iter_mut().zip(x).zip(y) {
                *d = a * b;
            }
        };
        ScalarBackend.run3(&a, &b, &mut s3, &mul);
        ParallelBackend.run3(&a, &b, &mut p3, &mul);
        assert_close(&p3, &s3, &format!("run3 n={n}"));
    }
}

#[test]
fn reduction_parity() {
    let mut rng = Prng::new(0x9A76);
    for &n in &[0usize, 1, 4095, 4096, 4097, 120_000] {
        let a = randv(n, &mut rng);
        let b = randv(n, &mut rng);
        let (ss, ps) = (ScalarBackend.sum(&a), ParallelBackend.sum(&a));
        assert!(
            (ss - ps).abs() <= TOL * (1.0 + ss.abs()),
            "sum n={n}: {ss} vs {ps}"
        );
        let (sd, pd) = (ScalarBackend.dot(&a, &b), ParallelBackend.dot(&a, &b));
        assert!(
            (sd - pd).abs() <= TOL * (1.0 + sd.abs()) * 10.0,
            "dot n={n}: {sd} vs {pd}"
        );
    }
}

#[test]
fn adam_update_parity() {
    let mut rng = Prng::new(0x9A77);
    let hp = AdamHp {
        lr: 1e-2,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        weight_decay: 0.01,
        bias1: 0.1,
        bias2: 0.001,
    };
    for &n in &[1usize, 37, 70_000] {
        let g = randv(n, &mut rng);
        let x0 = randv(n, &mut rng);
        let m0 = randv(n, &mut rng);
        let v0: Vec<f32> = randv(n, &mut rng).iter().map(|v| v.abs()).collect();
        let (mut xs, mut ms, mut vs) = (x0.clone(), m0.clone(), v0.clone());
        let (mut xp, mut mp, mut vp) = (x0, m0, v0);
        ScalarBackend.adam_update(&mut xs, &g, &mut ms, &mut vs, &hp);
        ParallelBackend.adam_update(&mut xp, &g, &mut mp, &mut vp, &hp);
        assert_close(&xp, &xs, &format!("adam x n={n}"));
        assert_close(&mp, &ms, &format!("adam m n={n}"));
        assert_close(&vp, &vs, &format!("adam v n={n}"));
    }
}

/// Guards the process-global backend selection for the cross-backend
/// gradient checks below.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under the given global backend, restoring the previous selection.
fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let prev = backend::kind();
    came_tensor::set_backend(kind);
    let out = f();
    came_tensor::set_backend(prev);
    out
}

/// A small end-to-end model (matmul → layer-norm → conv-free softmax head →
/// BCE) whose forward value and parameter gradients are computed under one
/// backend.
fn grads_under(kind: BackendKind, seed: u64) -> (f32, Vec<Vec<f32>>) {
    with_backend(kind, || {
        let mut rng = Prng::new(seed);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::randn(Shape::d2(6, 9), 0.5, &mut rng));
        let w2 = store.add("w2", Tensor::randn(Shape::d2(9, 5), 0.5, &mut rng));
        let x = Tensor::randn(Shape::d2(11, 6), 1.0, &mut rng);
        let targets = Tensor::rand_uniform(Shape::d2(11, 5), 0.0, 1.0, &mut rng).map(|v| {
            if v > 0.5 {
                1.0
            } else {
                0.0
            }
        });

        let g = Graph::new();
        let xv = g.input(x);
        let h = g.matmul(xv, g.param(&store, w1));
        let h = g.layer_norm(h, 1e-6);
        let h = g.tanh(h);
        let logits = g.matmul(h, g.param(&store, w2));
        let sm = g.softmax(logits, 1);
        let logits2 = g.add(logits, sm);
        let loss = g.bce_with_logits(logits2, &targets);
        let lv = g.value(loss).item();
        g.backward(loss, &mut store);
        let grads = vec![
            store.grad(w1).data().to_vec(),
            store.grad(w2).data().to_vec(),
        ];
        (lv, grads)
    })
}

#[test]
fn backward_pass_agrees_across_backends() {
    for seed in [3u64, 17, 99] {
        let (loss_s, grads_s) = grads_under(BackendKind::Scalar, seed);
        let (loss_p, grads_p) = grads_under(BackendKind::Parallel, seed);
        assert!(
            (loss_s - loss_p).abs() <= TOL * (1.0 + loss_s.abs()),
            "seed {seed}: loss {loss_s} vs {loss_p}"
        );
        for (i, (gs, gp)) in grads_s.iter().zip(&grads_p).enumerate() {
            assert_close(gp, gs, &format!("seed {seed}: grad[{i}]"));
        }
    }
}

#[test]
fn conv_forward_and_backward_agree_across_backends() {
    let run = |kind: BackendKind| {
        with_backend(kind, || {
            let mut rng = Prng::new(0xC0);
            let x = Tensor::randn(Shape::d4(2, 3, 8, 7), 1.0, &mut rng);
            let w = Tensor::randn(Shape::d4(5, 3, 3, 3), 0.5, &mut rng);
            let b = Tensor::randn(Shape::d1(5), 0.5, &mut rng);
            let y = came_tensor::conv::conv2d_forward(&x, &w, Some(&b));
            let gout = Tensor::randn(y.shape(), 1.0, &mut rng);
            let (gx, gw, gb) = came_tensor::conv::conv2d_backward(&x, &w, &gout);
            (y, gx, gw, gb)
        })
    };
    let (ys, gxs, gws, gbs) = run(BackendKind::Scalar);
    let (yp, gxp, gwp, gbp) = run(BackendKind::Parallel);
    assert_close(yp.data(), ys.data(), "conv fwd");
    assert_close(gxp.data(), gxs.data(), "conv gx");
    assert_close(gwp.data(), gws.data(), "conv gw");
    assert_close(gbp.data(), gbs.data(), "conv gb");
}
