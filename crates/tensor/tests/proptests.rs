//! Property-based tests for tensor algebra and autograd invariants.

use came_tensor::{Graph, ParamStore, Prng, Shape, Tensor};
use proptest::prelude::*;

/// Strategy: a small shape (rank 1..=3, dims 1..=5).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=3)
}

/// Strategy: a tensor of the given shape with values in [-3, 3].
fn tensor_of(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-3.0f32..3.0, n)
        .prop_map(move |data| Tensor::from_vec(Shape::new(&dims), data))
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_of)
}

proptest! {
    #[test]
    fn softmax_lanes_sum_to_one(t in arb_tensor(), axis_pick in 0usize..3) {
        let axis = axis_pick % t.shape().ndim();
        let s = t.softmax_axis(axis);
        // every lane along `axis` sums to 1
        let reduced = s.sum_axis(axis, false);
        for &v in reduced.data() {
            prop_assert!((v - 1.0).abs() < 1e-4, "lane sum {v}");
        }
        // probabilities are in [0, 1]
        for &v in s.data() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn softmax_preserves_argmax(row in prop::collection::vec(-5.0f32..5.0, 2..8)) {
        let t = Tensor::from_slice(&row);
        let s = t.softmax_axis(0);
        let argmax_in = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let argmax_out = s
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert_eq!(argmax_in, argmax_out);
    }

    #[test]
    fn add_commutes_with_broadcast(a in arb_tensor(), b in arb_tensor()) {
        if Shape::broadcast(a.shape(), b.shape()).is_some() {
            let ab = a.zip_broadcast(&b, |x, y| x + y);
            let ba = b.zip_broadcast(&a, |x, y| x + y);
            prop_assert_eq!(ab.shape(), ba.shape());
            for (x, y) in ab.data().iter().zip(ba.data()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sum_to_conserves_total(t in arb_tensor()) {
        // folding a tensor onto any broadcastable sub-shape preserves the sum
        let target = Shape::d1(*t.shape().dims().last().unwrap());
        let folded = t.sum_to(target);
        prop_assert!((folded.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
    }

    #[test]
    fn transpose_matmul_identity(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        // (A B)^T == B^T A^T
        let mut rng = Prng::new(seed);
        let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
        let left = a.matmul(&b).transpose(0, 1);
        let right = b.transpose(0, 1).matmul(&a.transpose(0, 1));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..1000) {
        let mut rng = Prng::new(seed);
        let a = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(4, 2), 1.0, &mut rng);
        let c = Tensor::randn(Shape::d2(4, 2), 1.0, &mut rng);
        let bc = b.zip_broadcast(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let rhs = a.matmul(&b).zip_broadcast(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn concat_narrow_roundtrip(a in arb_tensor(), axis_pick in 0usize..3) {
        let axis = axis_pick % a.shape().ndim();
        let joined = Tensor::concat(&[&a, &a], axis);
        let len = a.shape().at(axis);
        let first = joined.narrow(axis, 0, len);
        let second = joined.narrow(axis, len, len);
        prop_assert_eq!(first.data(), a.data());
        prop_assert_eq!(second.data(), a.data());
    }

    #[test]
    fn autograd_linear_in_grad_seed(seed in 0u64..500) {
        // grad of sum(c * x) w.r.t. x is exactly c everywhere
        let mut rng = Prng::new(seed);
        let x = Tensor::randn(Shape::d2(2, 3), 1.0, &mut rng);
        let c = 0.5 + (seed % 7) as f32;
        let g = Graph::new();
        let xv = g.input(x);
        let y = g.scale(xv, c);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        for &v in g.grad(xv).data() {
            prop_assert!((v - c).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_grad_bounded(t in arb_tensor()) {
        // d sigmoid / dx in (0, 0.25]
        let g = Graph::new();
        let xv = g.input(t);
        let y = g.sigmoid(xv);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        for &v in g.grad(xv).data() {
            prop_assert!(v > 0.0 && v <= 0.2500001, "sigmoid grad {v}");
        }
    }

    #[test]
    fn layer_norm_output_is_standardised(dims in prop::collection::vec(2usize..6, 2..3), seed in 0u64..100) {
        let mut rng = Prng::new(seed);
        let last = *dims.last().unwrap();
        if last < 2 { return Ok(()); }
        let t = Tensor::randn(Shape::new(&dims), 2.0, &mut rng);
        let g = Graph::new();
        let y = g.value(g.layer_norm(g.input(t), 1e-6));
        for lane in y.data().chunks(last) {
            let mean: f32 = lane.iter().sum::<f32>() / last as f32;
            let var: f32 = lane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / last as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }
}
