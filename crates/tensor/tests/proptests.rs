//! Seeded randomized tests for tensor algebra and autograd invariants.
//!
//! Formerly `proptest`-based; now driven by the in-repo [`Prng`] so the
//! workspace builds hermetically offline. Each test sweeps many seeds, and
//! every random draw derives deterministically from the case seed, so any
//! failure is reproducible from the message alone.

use came_tensor::{Graph, ParamStore, Prng, Shape, Tensor};

/// Random shape with rank 1..=3 and dims 1..=5.
fn small_shape(rng: &mut Prng) -> Shape {
    let rank = 1 + rng.below(3);
    let dims: Vec<usize> = (0..rank).map(|_| 1 + rng.below(5)).collect();
    Shape::new(&dims)
}

/// Tensor of the given shape with i.i.d. uniform values in `[-3, 3)`.
fn tensor_of(shape: Shape, rng: &mut Prng) -> Tensor {
    Tensor::rand_uniform(shape, -3.0, 3.0, rng)
}

fn arb_tensor(rng: &mut Prng) -> Tensor {
    let s = small_shape(rng);
    tensor_of(s, rng)
}

#[test]
fn softmax_lanes_sum_to_one() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed);
        let t = arb_tensor(&mut rng);
        let axis = rng.below(t.shape().ndim());
        let s = t.softmax_axis(axis);
        let reduced = s.sum_axis(axis, false);
        for &v in reduced.data() {
            assert!((v - 1.0).abs() < 1e-4, "seed {seed}: lane sum {v}");
        }
        for &v in s.data() {
            assert!((0.0..=1.0).contains(&v), "seed {seed}: prob {v}");
        }
    }
}

#[test]
fn softmax_preserves_argmax() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0xA1);
        let n = 2 + rng.below(6);
        let row: Vec<f32> = (0..n).map(|_| rng.uniform_in(-5.0, 5.0)).collect();
        let t = Tensor::from_slice(&row);
        let s = t.softmax_axis(0);
        let argmax = |xs: &[f32]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(&row), argmax(s.data()), "seed {seed}");
    }
}

#[test]
fn add_commutes_with_broadcast() {
    let mut hit = 0;
    for seed in 0..400u64 {
        let mut rng = Prng::new(seed ^ 0xB2);
        let a = arb_tensor(&mut rng);
        let b = arb_tensor(&mut rng);
        if Shape::broadcast(a.shape(), b.shape()).is_none() {
            continue;
        }
        hit += 1;
        let ab = a.zip_broadcast(&b, |x, y| x + y);
        let ba = b.zip_broadcast(&a, |x, y| x + y);
        assert_eq!(ab.shape(), ba.shape(), "seed {seed}");
        for (x, y) in ab.data().iter().zip(ba.data()) {
            assert!((x - y).abs() < 1e-6, "seed {seed}: {x} vs {y}");
        }
    }
    assert!(hit > 20, "broadcastable pairs too rare ({hit})");
}

#[test]
fn sum_to_conserves_total() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0xC3);
        let t = arb_tensor(&mut rng);
        // folding onto any broadcastable sub-shape preserves the sum
        let target = Shape::d1(*t.shape().dims().last().unwrap());
        let folded = t.sum_to(target);
        assert!(
            (folded.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()),
            "seed {seed}: {} vs {}",
            folded.sum(),
            t.sum()
        );
    }
}

#[test]
fn transpose_matmul_identity() {
    // (A B)^T == B^T A^T
    for seed in 0..300u64 {
        let mut rng = Prng::new(seed ^ 0xD4);
        let (m, k, n) = (1 + rng.below(4), 1 + rng.below(4), 1 + rng.below(4));
        let a = Tensor::randn(Shape::d2(m, k), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(k, n), 1.0, &mut rng);
        let left = a.matmul(&b).transpose(0, 1);
        let right = b.transpose(0, 1).matmul(&a.transpose(0, 1));
        for (x, y) in left.data().iter().zip(right.data()) {
            assert!((x - y).abs() < 1e-4, "seed {seed}: {x} vs {y}");
        }
    }
}

#[test]
fn matmul_distributes_over_add() {
    for seed in 0..300u64 {
        let mut rng = Prng::new(seed ^ 0xE5);
        let a = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d2(4, 2), 1.0, &mut rng);
        let c = Tensor::randn(Shape::d2(4, 2), 1.0, &mut rng);
        let bc = b.zip_broadcast(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let rhs = a.matmul(&b).zip_broadcast(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "seed {seed}: {x} vs {y}");
        }
    }
}

#[test]
fn concat_narrow_roundtrip() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0xF6);
        let a = arb_tensor(&mut rng);
        let axis = rng.below(a.shape().ndim());
        let joined = Tensor::concat(&[&a, &a], axis);
        let len = a.shape().at(axis);
        assert_eq!(joined.narrow(axis, 0, len).data(), a.data(), "seed {seed}");
        assert_eq!(
            joined.narrow(axis, len, len).data(),
            a.data(),
            "seed {seed}"
        );
    }
}

#[test]
fn autograd_linear_in_grad_seed() {
    // grad of sum(c * x) w.r.t. x is exactly c everywhere
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0x17);
        let x = Tensor::randn(Shape::d2(2, 3), 1.0, &mut rng);
        let c = 0.5 + (seed % 7) as f32;
        let g = Graph::new();
        let xv = g.input(x);
        let y = g.scale(xv, c);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        for &v in g.grad(xv).data() {
            assert!((v - c).abs() < 1e-5, "seed {seed}: grad {v} expected {c}");
        }
    }
}

#[test]
fn sigmoid_grad_bounded() {
    // d sigmoid / dx in (0, 0.25]
    for seed in 0..100u64 {
        let mut rng = Prng::new(seed ^ 0x28);
        let t = arb_tensor(&mut rng);
        let g = Graph::new();
        let xv = g.input(t);
        let y = g.sigmoid(xv);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        for &v in g.grad(xv).data() {
            assert!(v > 0.0 && v <= 0.2500001, "seed {seed}: sigmoid grad {v}");
        }
    }
}

#[test]
fn layer_norm_output_is_standardised() {
    for seed in 0..100u64 {
        let mut rng = Prng::new(seed ^ 0x39);
        let rows = 2 + rng.below(4);
        let last = 2 + rng.below(4);
        let t = Tensor::randn(Shape::d2(rows, last), 2.0, &mut rng);
        let g = Graph::new();
        let y = g.value(g.layer_norm(g.input(t), 1e-6));
        for lane in y.data().chunks(last) {
            let mean: f32 = lane.iter().sum::<f32>() / last as f32;
            let var: f32 = lane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / last as f32;
            assert!(mean.abs() < 1e-3, "seed {seed}: mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "seed {seed}: var {var}");
        }
    }
}
