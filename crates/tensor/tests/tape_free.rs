//! Tape-free inference mode: `Graph::inference` with the `CAME_INFER` switch
//! on must produce bit-identical forward values to the recording graph while
//! storing no op payloads, and `backward` must refuse to run on it.

use came_tensor::{Activation, BackendKind, Graph, ParamStore, Prng, Shape, Tensor};
use std::sync::Mutex;

// The infer/backend switches are process-global; serialise tests that flip
// them so parallel test threads never observe a foreign setting.
static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn with_modes<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let _guard = SWITCH_LOCK.lock().unwrap();
    let prev = came_tensor::backend::kind();
    came_tensor::set_backend(kind);
    came_tensor::set_infer_tape_free(true);
    let out = f();
    came_tensor::set_backend(prev);
    out
}

/// A forward pass exercising every fused op plus embeddings, concat, and
/// dropout, returning the final value under the given graph.
fn forward(g: &Graph, store: &ParamStore, ids: &[u32], rng_seed: u64) -> Vec<f32> {
    let mut rng = Prng::new(rng_seed);
    let mut pids = store.ids();
    let table = pids.next().unwrap();
    let w = pids.next().unwrap();
    drop(pids);
    let e = g.embedding(store, table, ids); // [4, 6]
    let e = g.dropout(e, 0.3, &mut rng); // identity at inference
    let h = g.gemm_bias_act(e, g.param(store, w), None, Activation::Tanh); // [4, 6]
    let a = g.input(Tensor::randn(Shape::d2(2, 3), 1.0, &mut Prng::new(5)));
    let c = g.input(Tensor::randn(Shape::d2(2, 4), 1.0, &mut Prng::new(6)));
    let v = g.input(Tensor::randn(Shape::d3(2, 4, 3), 1.0, &mut Prng::new(7)));
    let att = g.outer_attention(a, c, v, g.constant(0.9)); // [2, 3, 3]
    let s = g.reshape(h, Shape::d3(2, 3, 4));
    let sm = g.softmax_matmul(att, s); // [2, 3, 4]
    let flat = g.reshape(sm, Shape::d2(2, 12));
    let out = g.concat(&[flat, g.input(Tensor::zeros(Shape::d2(2, 2)))], 1);
    g.with_value(out, |t| t.data().to_vec())
}

fn demo_store(rng: &mut Prng) -> ParamStore {
    let mut store = ParamStore::new();
    store.add("table", Tensor::randn(Shape::d2(10, 6), 1.0, rng));
    store.add("w", Tensor::randn(Shape::d2(6, 6), 0.7, rng));
    store
}

#[test]
fn tape_free_forward_is_bit_identical_on_both_backends() {
    for kind in [
        BackendKind::Scalar,
        BackendKind::Parallel,
        BackendKind::Simd,
    ] {
        with_modes(kind, || {
            let mut rng = Prng::new(0x7A9E);
            let store = demo_store(&mut rng);
            let ids = [0u32, 3, 7, 9];

            let taped = Graph::inference();
            came_tensor::set_infer_tape_free(true);
            let free = Graph::inference();
            assert!(!free.records_tape());
            came_tensor::set_infer_tape_free(false);
            let recorded = Graph::inference();
            assert!(recorded.records_tape());
            came_tensor::set_infer_tape_free(true);
            assert!(!taped.records_tape());

            let want = forward(&recorded, &store, &ids, 1);
            let got = forward(&free, &store, &ids, 1);
            assert_eq!(got, want, "{kind:?}: tape-free forward must be bit-equal");
        });
    }
}

#[test]
fn tape_free_graph_records_no_parents() {
    with_modes(BackendKind::Scalar, || {
        let mut rng = Prng::new(0x7A9F);
        let store = demo_store(&mut rng);
        let g = Graph::inference();
        assert!(!g.records_tape());
        let _ = forward(&g, &store, &[1, 2, 3, 4], 2);
        // values are still addressable node by node
        assert!(!g.is_empty());
    });
}

#[test]
fn backward_panics_on_tape_free_graph() {
    with_modes(BackendKind::Scalar, || {
        let g = Graph::inference();
        let x = g.input(Tensor::scalar(2.0));
        let y = g.square(x);
        let mut store = ParamStore::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.backward(y, &mut store);
        }));
        assert!(err.is_err(), "backward must refuse a tape-free graph");
    });
}

#[test]
fn runtime_switch_restores_taped_inference() {
    with_modes(BackendKind::Scalar, || {
        came_tensor::set_infer_tape_free(false);
        let g = Graph::inference();
        assert!(g.records_tape(), "CAME_INFER off: inference keeps the tape");
        let x = g.input(Tensor::scalar(3.0));
        let y = g.square(x);
        let mut store = ParamStore::new();
        g.backward(y, &mut store); // legal again
        assert_eq!(g.grad(x).item(), 6.0);
        came_tensor::set_infer_tape_free(true);
    });
}
