//! Buffer-pool behaviour over repeated training steps: after a warm-up
//! cycle the thread-local pool must serve every tape allocation (zero new
//! heap allocations in steady state), and pooled runs must be bit-identical
//! to fresh-allocation runs — including gradients — on both backends.
//!
//! Each `#[test]` runs on its own thread, so the thread-local pool state is
//! naturally isolated per test. Tests that flip the process-global backend
//! are serialised behind a mutex.

use came_tensor::{pool, BackendKind, Graph, ParamId, ParamStore, Prng, Shape, Tensor};
use std::sync::Mutex;

const CYCLES: usize = 100;
const TOL: f32 = 1e-5;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let prev = came_tensor::backend::kind();
    came_tensor::set_backend(kind);
    let out = f();
    came_tensor::set_backend(prev);
    out
}

/// One training step of a small but representative model (embedding gather,
/// matmul, layer norm, tanh, softmax residual, BCE) on a reused graph.
/// Returns the loss and both parameter gradients.
fn step(
    g: &mut Graph,
    store: &mut ParamStore,
    ids: (ParamId, ParamId, ParamId),
    x: &Tensor,
    targets: &Tensor,
) -> (f32, Vec<Vec<f32>>) {
    g.reset();
    store.zero_grad();
    let (w1, w2, emb) = ids;
    let xv = g.input(x.clone());
    let e = g.embedding(store, emb, &[2, 0, 1, 2, 0, 1, 0, 2, 1, 0, 1]);
    let h = g.matmul(g.add(xv, e), g.param(store, w1));
    let h = g.layer_norm(h, 1e-6);
    let h = g.tanh(h);
    let logits = g.matmul(h, g.param(store, w2));
    let sm = g.softmax(logits, 1);
    let logits2 = g.add(logits, sm);
    let loss = g.bce_with_logits(logits2, targets);
    let lv = g.with_value(loss, |t| t.item());
    g.backward(loss, store);
    (
        lv,
        vec![
            store.grad(w1).data().to_vec(),
            store.grad(w2).data().to_vec(),
        ],
    )
}

fn fixtures(seed: u64) -> (ParamStore, (ParamId, ParamId, ParamId), Tensor, Tensor) {
    let mut rng = Prng::new(seed);
    let mut store = ParamStore::new();
    let w1 = store.add("w1", Tensor::randn(Shape::d2(6, 9), 0.5, &mut rng));
    let w2 = store.add("w2", Tensor::randn(Shape::d2(9, 5), 0.5, &mut rng));
    let emb = store.add("emb", Tensor::randn(Shape::d2(3, 6), 0.5, &mut rng));
    let x = Tensor::randn(Shape::d2(11, 6), 1.0, &mut rng);
    let targets = Tensor::rand_uniform(Shape::d2(11, 5), 0.0, 1.0, &mut rng).map(|v| {
        if v > 0.5 {
            1.0
        } else {
            0.0
        }
    });
    (store, (w1, w2, emb), x, targets)
}

/// Run `CYCLES` steps with the pool in the given state, returning every
/// (loss, grads) pair.
fn run_cycles(pooled: bool, seed: u64) -> Vec<(f32, Vec<Vec<f32>>)> {
    pool::set_enabled(pooled);
    pool::clear();
    let (mut store, ids, x, targets) = fixtures(seed);
    let mut g = Graph::new();
    let out = (0..CYCLES)
        .map(|_| step(&mut g, &mut store, ids, &x, &targets))
        .collect();
    pool::set_enabled(true);
    out
}

#[test]
fn steady_state_steps_allocate_nothing() {
    pool::set_enabled(true);
    pool::clear();
    let (mut store, ids, x, targets) = fixtures(0xB00);
    let mut g = Graph::new();
    // warm-up: the first cycles populate the free lists
    for _ in 0..3 {
        step(&mut g, &mut store, ids, &x, &targets);
    }
    pool::reset_stats();
    for _ in 0..CYCLES {
        step(&mut g, &mut store, ids, &x, &targets);
    }
    let s = pool::stats();
    assert_eq!(
        s.misses, 0,
        "steady-state steps must be 100% pool hits, got {s:?}"
    );
    assert!(s.hits > 0, "steps must actually exercise the pool: {s:?}");
    assert_eq!(s.hit_rate(), 1.0);
}

#[test]
fn pooled_run_is_bit_identical_to_fresh_allocations() {
    let pooled = run_cycles(true, 0xB01);
    let fresh = run_cycles(false, 0xB01);
    for (i, ((lp, gp), (lf, gf))) in pooled.iter().zip(&fresh).enumerate() {
        assert_eq!(
            lp.to_bits(),
            lf.to_bits(),
            "cycle {i}: loss must be bit-identical"
        );
        assert_eq!(gp, gf, "cycle {i}: gradients must be bit-identical");
    }
}

#[test]
fn pooled_gradients_match_across_backends() {
    let scalar = with_backend(BackendKind::Scalar, || run_cycles(true, 0xB02));
    for kind in [BackendKind::Parallel, BackendKind::Simd] {
        let other = with_backend(kind, || run_cycles(true, 0xB02));
        for (i, ((ls, gs), (lp, gp))) in scalar.iter().zip(&other).enumerate() {
            assert!(
                (ls - lp).abs() <= TOL * (1.0 + ls.abs()),
                "{kind:?} cycle {i}: loss {ls} vs {lp}"
            );
            for (which, (a, b)) in gs.iter().zip(gp).enumerate() {
                for (j, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())),
                        "{kind:?} cycle {i} grad[{which}][{j}]: {x} vs {y}"
                    );
                }
            }
        }
    }
}
