//! Fused-kernel correctness: `gemm_bias_act`, `softmax_matmul`, and
//! `outer_attention` must match their composed unfused counterparts in
//! forward value and gradients, and pass finite-difference gradient checks,
//! on both backends.
//!
//! The composed references are built from the primitive graph ops directly
//! (matmul / add / sigmoid / softmax), so they exercise the unfused code path
//! without touching the process-global fusion switch.

use came_tensor::{Activation, BackendKind, Graph, ParamStore, Prng, Shape, Tensor, Var};
use std::sync::Mutex;

const TOL: f32 = 1e-5;

static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(kind: BackendKind, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let prev = came_tensor::backend::kind();
    came_tensor::set_backend(kind);
    let out = f();
    came_tensor::set_backend(prev);
    out
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

/// Central-difference numeric gradient of scalar-valued `f` w.r.t. `x`.
fn numeric_grad(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut g = Tensor::zeros(x.shape());
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        g.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
    }
    g
}

/// Composed reference for `act(x·w + b)` from primitive ops only.
fn composed(g: &Graph, x: Var, w: Var, b: Option<Var>, act: Activation) -> Var {
    let y = g.matmul(x, w);
    let y = match b {
        Some(bv) => g.add(y, bv),
        None => y,
    };
    match act {
        Activation::Identity => y,
        Activation::Sigmoid => g.sigmoid(y),
        Activation::Tanh => g.tanh(y),
        Activation::Relu => g.relu(y),
    }
}

const ACTS: [Activation; 4] = [
    Activation::Identity,
    Activation::Sigmoid,
    Activation::Tanh,
    Activation::Relu,
];

/// Forward + gradient agreement between the fused node and the composed
/// reference, for one (x, w, b) triple under the active backend.
fn check_gemm_bias_act(x: &Tensor, w: &Tensor, b: Option<&Tensor>, what: &str) {
    for act in ACTS {
        let run = |fused: bool| {
            let g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w.clone());
            let bv = b.map(|t| g.input(t.clone()));
            let y = if fused {
                g.gemm_bias_act(xv, wv, bv, act)
            } else {
                composed(&g, xv, wv, bv, act)
            };
            let loss = g.sum_all(g.mul(y, y));
            let mut store = ParamStore::new();
            g.backward(loss, &mut store);
            let grads = [
                g.grad(xv).data().to_vec(),
                g.grad(wv).data().to_vec(),
                bv.map(|v| g.grad(v).data().to_vec()).unwrap_or_default(),
            ];
            (g.value(y).data().to_vec(), grads)
        };
        let (yf, gf) = run(true);
        let (yu, gu) = run(false);
        let name = format!("{what} {act:?}");
        assert_close(&yf, &yu, TOL, &format!("{name}: forward"));
        assert_close(&gf[0], &gu[0], TOL, &format!("{name}: gx"));
        assert_close(&gf[1], &gu[1], TOL, &format!("{name}: gw"));
        assert_close(&gf[2], &gu[2], TOL, &format!("{name}: gb"));
    }
}

#[test]
fn gemm_bias_act_matches_composed_on_both_backends() {
    for kind in [
        BackendKind::Scalar,
        BackendKind::Parallel,
        BackendKind::Simd,
    ] {
        with_backend(kind, || {
            let mut rng = Prng::new(0xF0);
            // 2-D with bias, odd sizes straddling the tile boundaries
            let x = Tensor::randn(Shape::d2(7, 5), 1.0, &mut rng);
            let w = Tensor::randn(Shape::d2(5, 9), 0.7, &mut rng);
            let b = Tensor::randn(Shape::d1(9), 0.5, &mut rng);
            check_gemm_bias_act(&x, &w, Some(&b), &format!("{kind:?} 2d+bias"));
            // 2-D without bias
            check_gemm_bias_act(&x, &w, None, &format!("{kind:?} 2d"));
            // 3-D (batched rows share the weight), larger so the parallel
            // panel path engages
            let x3 = Tensor::randn(Shape::d3(4, 37, 12), 1.0, &mut rng);
            let w3 = Tensor::randn(Shape::d2(12, 33), 0.5, &mut rng);
            let b3 = Tensor::randn(Shape::d1(33), 0.5, &mut rng);
            check_gemm_bias_act(&x3, &w3, Some(&b3), &format!("{kind:?} 3d+bias"));
        });
    }
}

#[test]
fn gemm_bias_act_finite_difference() {
    let mut rng = Prng::new(0xF1);
    let w = Tensor::randn(Shape::d2(4, 6), 0.7, &mut rng);
    let b = Tensor::randn(Shape::d1(6), 0.5, &mut rng);
    let x = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
    for act in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
        let g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.input(w.clone());
        let bv = g.input(b.clone());
        let loss = g.sum_all(g.gemm_bias_act(xv, wv, Some(bv), act));
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        let (wc, bc) = (w.clone(), b.clone());
        let num = numeric_grad(
            move |t| {
                let g2 = Graph::new();
                let xv2 = g2.input(t.clone());
                let wv2 = g2.input(wc.clone());
                let bv2 = g2.input(bc.clone());
                g2.with_value(
                    g2.sum_all(g2.gemm_bias_act(xv2, wv2, Some(bv2), act)),
                    |v| v.item(),
                )
            },
            &x,
            1e-2,
        );
        assert_close(
            g.grad(xv).data(),
            num.data(),
            2e-2,
            &format!("fd gx {act:?}"),
        );
    }
}

#[test]
fn softmax_matmul_matches_composed_on_both_backends() {
    for kind in [
        BackendKind::Scalar,
        BackendKind::Parallel,
        BackendKind::Simd,
    ] {
        with_backend(kind, || {
            let mut rng = Prng::new(0xF2);
            for &(batch, m, k, n) in &[
                (1usize, 1usize, 4usize, 1usize),
                (3, 5, 7, 4),
                (8, 16, 16, 8),
            ] {
                let s = Tensor::randn(Shape::d3(batch, m, k), 1.0, &mut rng);
                let v = Tensor::randn(Shape::d3(batch, k, n), 1.0, &mut rng);
                let run = |fused: bool| {
                    let g = Graph::new();
                    let sv = g.input(s.clone());
                    let vv = g.input(v.clone());
                    let y = if fused {
                        g.softmax_matmul(sv, vv)
                    } else {
                        let soft = g.softmax(sv, 2);
                        g.matmul(soft, vv)
                    };
                    let loss = g.sum_all(g.mul(y, y));
                    let mut store = ParamStore::new();
                    g.backward(loss, &mut store);
                    (
                        g.value(y).data().to_vec(),
                        g.grad(sv).data().to_vec(),
                        g.grad(vv).data().to_vec(),
                    )
                };
                let (yf, gsf, gvf) = run(true);
                let (yu, gsu, gvu) = run(false);
                let name = format!("{kind:?} softmax_matmul {batch}x{m}x{k}x{n}");
                assert_close(&yf, &yu, TOL, &format!("{name}: forward"));
                assert_close(&gsf, &gsu, TOL, &format!("{name}: gscores"));
                assert_close(&gvf, &gvu, TOL, &format!("{name}: gv"));
            }
        });
    }
}

/// Composed reference for `softmax((a ⊗ c)/τ, last) · v` from primitive ops
/// only: explicit outer product, division, softmax, and matmul.
fn composed_outer_attention(g: &Graph, a: Var, c: Var, v: Var, tau: Var) -> Var {
    let (b, m) = {
        let s = g.shape(a);
        (s.at(0), s.at(1))
    };
    let k = g.shape(c).at(1);
    let col = g.reshape(a, Shape::d3(b, m, 1));
    let row = g.reshape(c, Shape::d3(b, 1, k));
    let scores = g.div(g.mul(col, row), tau);
    g.matmul(g.softmax(scores, 2), v)
}

#[test]
fn outer_attention_matches_composed_on_both_backends() {
    for kind in [
        BackendKind::Scalar,
        BackendKind::Parallel,
        BackendKind::Simd,
    ] {
        with_backend(kind, || {
            let mut rng = Prng::new(0xF4);
            for &(batch, m, k, n) in &[
                (1usize, 1usize, 3usize, 1usize),
                (3, 5, 7, 4),
                (8, 32, 32, 1),
            ] {
                let a = Tensor::randn(Shape::d2(batch, m), 1.0, &mut rng);
                let c = Tensor::randn(Shape::d2(batch, k), 1.0, &mut rng);
                let v = Tensor::randn(Shape::d3(batch, k, n), 1.0, &mut rng);
                let run = |fused: bool| {
                    let g = Graph::new();
                    let av = g.input(a.clone());
                    let cv = g.input(c.clone());
                    let vv = g.input(v.clone());
                    let tv = g.input(Tensor::scalar(0.7));
                    let y = if fused {
                        g.outer_attention(av, cv, vv, tv)
                    } else {
                        composed_outer_attention(&g, av, cv, vv, tv)
                    };
                    let loss = g.sum_all(g.mul(y, y));
                    let mut store = ParamStore::new();
                    g.backward(loss, &mut store);
                    let grads = [
                        g.grad(av).data().to_vec(),
                        g.grad(cv).data().to_vec(),
                        g.grad(vv).data().to_vec(),
                        g.grad(tv).data().to_vec(),
                    ];
                    (g.value(y).data().to_vec(), grads)
                };
                let (yf, gf) = run(true);
                let (yu, gu) = run(false);
                let name = format!("{kind:?} outer_attention {batch}x{m}x{k}x{n}");
                assert_close(&yf, &yu, TOL, &format!("{name}: forward"));
                assert_close(&gf[0], &gu[0], TOL, &format!("{name}: ga"));
                assert_close(&gf[1], &gu[1], TOL, &format!("{name}: gc"));
                assert_close(&gf[2], &gu[2], TOL, &format!("{name}: gv"));
                assert_close(&gf[3], &gu[3], TOL, &format!("{name}: gtau"));
            }
        });
    }
}

#[test]
fn outer_attention_finite_difference() {
    let mut rng = Prng::new(0xF5);
    let a = Tensor::randn(Shape::d2(2, 3), 1.0, &mut rng);
    let c = Tensor::randn(Shape::d2(2, 5), 1.0, &mut rng);
    let v = Tensor::randn(Shape::d3(2, 5, 4), 1.0, &mut rng);
    let tau = Tensor::scalar(0.8);
    let probe = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
    let build = |g: &Graph, at: &Tensor, ct: &Tensor, vt: &Tensor, tt: &Tensor| {
        let av = g.input(at.clone());
        let cv = g.input(ct.clone());
        let vv = g.input(vt.clone());
        let tv = g.input(tt.clone());
        let y = g.outer_attention(av, cv, vv, tv);
        let p = g.input(probe.clone());
        ([av, cv, vv, tv], g.sum_all(g.mul(y, p)))
    };
    let g = Graph::new();
    let (vars, loss) = build(&g, &a, &c, &v, &tau);
    let mut store = ParamStore::new();
    g.backward(loss, &mut store);
    let eval = |at: &Tensor, ct: &Tensor, vt: &Tensor, tt: &Tensor| {
        let g2 = Graph::new();
        let (_, l) = build(&g2, at, ct, vt, tt);
        g2.with_value(l, |t| t.item())
    };
    let num_a = numeric_grad(|t| eval(t, &c, &v, &tau), &a, 1e-2);
    let num_c = numeric_grad(|t| eval(&a, t, &v, &tau), &c, 1e-2);
    let num_v = numeric_grad(|t| eval(&a, &c, t, &tau), &v, 1e-2);
    let num_t = numeric_grad(|t| eval(&a, &c, &v, t), &tau, 1e-3);
    assert_close(g.grad(vars[0]).data(), num_a.data(), 3e-2, "fd ga");
    assert_close(g.grad(vars[1]).data(), num_c.data(), 3e-2, "fd gc");
    assert_close(g.grad(vars[2]).data(), num_v.data(), 2e-2, "fd gv");
    assert_close(g.grad(vars[3]).data(), num_t.data(), 3e-2, "fd gtau");
}

#[test]
fn softmax_matmul_finite_difference() {
    let mut rng = Prng::new(0xF3);
    let s = Tensor::randn(Shape::d3(2, 3, 5), 1.0, &mut rng);
    let v = Tensor::randn(Shape::d3(2, 5, 4), 1.0, &mut rng);
    let probe = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
    let build = |g: &Graph, st: &Tensor, vt: &Tensor| {
        let sv = g.input(st.clone());
        let vv = g.input(vt.clone());
        let y = g.softmax_matmul(sv, vv);
        let p = g.input(probe.clone());
        (sv, vv, g.sum_all(g.mul(y, p)))
    };
    let g = Graph::new();
    let (sv, vv, loss) = build(&g, &s, &v);
    let mut store = ParamStore::new();
    g.backward(loss, &mut store);
    let (sc, vc) = (s.clone(), v.clone());
    let num_s = numeric_grad(
        |t| {
            let g2 = Graph::new();
            let (_, _, l) = build(&g2, t, &vc);
            g2.with_value(l, |v| v.item())
        },
        &s,
        1e-2,
    );
    let num_v = numeric_grad(
        |t| {
            let g2 = Graph::new();
            let (_, _, l) = build(&g2, &sc, t);
            g2.with_value(l, |v| v.item())
        },
        &v,
        1e-2,
    );
    assert_close(g.grad(sv).data(), num_s.data(), 3e-2, "fd gscores");
    assert_close(g.grad(vv).data(), num_v.data(), 2e-2, "fd gv");
}
