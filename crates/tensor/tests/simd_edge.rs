//! SIMD edge cases: remainder lanes (lengths not divisible by the 4/8-float
//! vector width), unaligned slice heads (the kernels use unaligned loads —
//! any offset must work), NaN/±inf propagation through the vectorized
//! softmax/exp, and bit-identity between the taped and tape-free fused
//! attention entries under the SIMD backend.

use came_tensor::backend::{simd, Backend};
use came_tensor::{Prng, ScalarBackend, SimdBackend};

const TOL: f32 = 1e-5;

fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
    (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
}

fn assert_close(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

/// Every lane length from 1 to a few vectors' worth: the vector body handles
/// `len / W` vectors, the scalar tail the rest; both must agree with the
/// scalar backend at every remainder.
#[test]
fn remainder_lanes_cover_every_tail_length() {
    let mut rng = Prng::new(0x51D0);
    for lane in 1usize..=36 {
        let rows = 3;
        let base = randv(rows * lane, &mut rng);
        let mut want = base.clone();
        let mut got = base.clone();
        ScalarBackend.softmax_lanes(&mut want, lane);
        SimdBackend.softmax_lanes(&mut got, lane);
        assert_close(&got, &want, &format!("softmax lane={lane}"));

        let mut want = base.clone();
        let mut got = base.clone();
        ScalarBackend.layer_norm_lanes(&mut want, lane, 1e-5);
        SimdBackend.layer_norm_lanes(&mut got, lane, 1e-5);
        assert_close(&got, &want, &format!("layer_norm lane={lane}"));

        let ss = ScalarBackend.sum(&base[..lane]);
        let ps = SimdBackend.sum(&base[..lane]);
        assert!(
            (ss - ps).abs() <= TOL * (1.0 + ss.abs()),
            "sum len={lane}: {ss} vs {ps}"
        );
    }
}

/// The kernels take arbitrary sub-slices: start offsets 0..=7 shift the data
/// off any 16/32/64-byte boundary. Results must not depend on alignment.
#[test]
fn unaligned_slice_heads_match_scalar() {
    let mut rng = Prng::new(0x51D1);
    let lane = 24;
    let buf = randv(8 + 5 * lane, &mut rng);
    let buf2 = randv(8 + 5 * lane, &mut rng);
    for off in 0usize..8 {
        let view = &buf[off..off + 5 * lane];
        let mut want = view.to_vec();
        ScalarBackend.softmax_lanes(&mut want, lane);
        // operate directly on the offset view in a copied buffer so the
        // kernel really sees the unaligned address
        let mut work = buf.clone();
        SimdBackend.softmax_lanes(&mut work[off..off + 5 * lane], lane);
        assert_close(
            &work[off..off + 5 * lane],
            &want,
            &format!("softmax off={off}"),
        );

        let a = &buf[off..off + 4 * lane];
        let b = &buf2[off..off + 4 * lane];
        let sd = ScalarBackend.dot(a, b);
        let pd = SimdBackend.dot(a, b);
        assert!(
            (sd - pd).abs() <= TOL * (1.0 + sd.abs()) * 10.0,
            "dot off={off}: {sd} vs {pd}"
        );

        let mut want = a.to_vec();
        let mut got = a.to_vec();
        for x in &mut want {
            *x = came_tensor::tensor::fast_exp_lane(*x);
        }
        simd::exp_inplace(&mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "exp off={off}[{i}]: {g} vs {w}");
        }
    }
}

/// A NaN anywhere in a softmax lane poisons the normaliser, so the whole
/// lane must come out NaN — on both backends. `+inf` behaves the same way
/// (`inf - inf = NaN` in the shift). `-inf` is an ordinary "weight zero"
/// entry and the rest of the lane must still match the scalar result.
#[test]
fn nan_and_inf_propagate_identically_through_softmax() {
    let lane = 13; // vector body + scalar tail
    let mk = |poison: f32, at: usize| {
        let mut v: Vec<f32> = (0..2 * lane).map(|i| (i as f32) * 0.3 - 2.0).collect();
        v[at] = poison;
        v
    };
    for (poison, expect_nan) in [
        (f32::NAN, true),
        (f32::INFINITY, true),
        (f32::NEG_INFINITY, false),
    ] {
        for at in [0usize, 5, lane - 1] {
            let mut want = mk(poison, at);
            let mut got = want.clone();
            ScalarBackend.softmax_lanes(&mut want, lane);
            SimdBackend.softmax_lanes(&mut got, lane);
            // first lane is poisoned, second lane untouched by the poison
            for i in 0..lane {
                assert_eq!(
                    got[i].is_nan(),
                    want[i].is_nan(),
                    "poison={poison} at={at} [{i}]: {} vs {}",
                    got[i],
                    want[i]
                );
                if expect_nan {
                    assert!(got[i].is_nan(), "poison={poison} must flood the lane");
                }
            }
            assert_close(
                &got[lane..],
                &want[lane..],
                &format!("clean lane after poison={poison}"),
            );
        }
    }
    // exp saturation edges propagate identically too
    let mut v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 90.0, -90.0];
    simd::exp_inplace(&mut v);
    assert!(v[0].is_nan());
    assert_eq!(v[1], f32::MAX);
    assert_eq!(v[2], 0.0);
    assert_eq!(v[3], f32::MAX);
    assert_eq!(v[4], 0.0);
}

/// The taped (`outer_attention` / `softmax_matmul`) and tape-free (`_fwd`)
/// entries share one row kernel under the SIMD backend, so their outputs are
/// bit-identical — the same guarantee the scalar/parallel backends give
/// tape-free inference, re-proven here under `simd`.
#[test]
fn taped_and_tape_free_attention_are_bit_identical_under_simd() {
    let mut rng = Prng::new(0x51D2);
    for &(batch, m, k, n) in &[
        (1usize, 4usize, 33usize, 1usize),
        (3, 8, 21, 1),
        (2, 5, 19, 7),
    ] {
        let a = randv(batch * m, &mut rng);
        let c = randv(batch * k, &mut rng);
        let v = randv(batch * k * n, &mut rng);
        let scores = randv(batch * m * k, &mut rng);
        let tau = 0.83;

        let mut soft = vec![0.0; batch * m * k];
        let mut taped = vec![0.0; batch * m * n];
        SimdBackend.outer_attention(&a, &c, &v, tau, &mut soft, &mut taped, batch, m, k, n);
        let mut fwd = vec![0.0; batch * m * n];
        SimdBackend.outer_attention_fwd(&a, &c, &v, tau, &mut fwd, batch, m, k, n);
        for (i, (t, f)) in taped.iter().zip(&fwd).enumerate() {
            assert_eq!(
                t.to_bits(),
                f.to_bits(),
                "outer_attention {batch}x{m}x{k}x{n} [{i}]: {t} vs {f}"
            );
        }

        let mut sm_soft = vec![0.0; batch * m * k];
        let mut sm_taped = vec![0.0; batch * m * n];
        SimdBackend.softmax_matmul(&scores, &v, &mut sm_soft, &mut sm_taped, batch, m, k, n);
        let mut sm_fwd = vec![0.0; batch * m * n];
        SimdBackend.softmax_matmul_fwd(&scores, &v, &mut sm_fwd, batch, m, k, n);
        for (i, (t, f)) in sm_taped.iter().zip(&sm_fwd).enumerate() {
            assert_eq!(
                t.to_bits(),
                f.to_bits(),
                "softmax_matmul {batch}x{m}x{k}x{n} [{i}]: {t} vs {f}"
            );
        }
    }
}
