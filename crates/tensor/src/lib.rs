//! # came-tensor
//!
//! A from-scratch deep-learning substrate for the CamE reproduction: dense
//! `f32` tensors, reverse-mode automatic differentiation, common neural-net
//! layers, and the Adam optimiser.
//!
//! The paper trains CamE and thirteen baselines on a GPU framework; this
//! crate replaces that stack with a deterministic, dependency-free CPU
//! implementation that supports exactly the operations the paper's equations
//! require:
//!
//! - batched matrix products and outer products (co-affinity matrices, Eqn. 1)
//! - axis softmax with temperature scaling (Eqns. 2, 5, 8)
//! - sigmoid / tanh / Hadamard products (low-rank bilinear fusion, Eqn. 13)
//! - layer normalisation (exchanging fusion, Eqns. 10–11)
//! - valid 2-D convolution (scoring function, Eqn. 15)
//! - binary cross-entropy with logits over 1-N targets (Eqn. 16)
//!
//! ## Quick example
//!
//! ```
//! use came_tensor::{Graph, ParamStore, Tensor, Shape, Prng, Adam};
//!
//! let mut rng = Prng::new(0);
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::randn(Shape::d2(4, 1), 0.1, &mut rng));
//!
//! // one gradient step of least squares
//! let g = Graph::new();
//! let x = g.input(Tensor::randn(Shape::d2(8, 4), 1.0, &mut rng));
//! let y = g.input(Tensor::randn(Shape::d2(8, 1), 1.0, &mut rng));
//! let wv = g.param(&store, w);
//! let pred = g.matmul(x, wv);
//! let err = g.sub(pred, y);
//! let loss = g.mean_all(g.square(err));
//! g.backward(loss, &mut store);
//! store.adam_step(&Adam::with_lr(1e-2));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod conv;
pub mod graph;
pub mod nn;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod store;
pub mod tensor;

/// Serialises tests that toggle the process-global `came_obs` switch.
#[cfg(test)]
pub(crate) fn obs_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

pub use backend::{
    fusion_enabled, infer_tape_free, set_backend, set_fusion, set_infer_tape_free, Activation,
    Backend, BackendKind, ParallelBackend, ScalarBackend, SimdBackend,
};
pub use graph::{sigmoid, Graph, UnaryKind, Var};
pub use nn::{Adam, Conv2dLayer, EmbeddingTable, Linear, ParamId, ParamStateView, ParamStore};
pub use rng::Prng;
pub use shape::{Shape, MAX_NDIM};
pub use store::{
    build_store, store_from_blob, DenseF32Store, EmbeddingStore, EntityHead, FileBackedStore,
    QuantError, QuantizedStore, StoreKind,
};
pub use tensor::Tensor;
