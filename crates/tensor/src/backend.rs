//! Pluggable kernel backends: the dispatch seam for every hot tensor op.
//!
//! All dense kernels the stack spends wall-clock in — GEMM (plain, batched,
//! and the im2col GEMMs inside conv2d), rowwise softmax / layer-norm, and the
//! elementwise map / zip / reduce drivers — are routed through the [`Backend`]
//! trait. Two implementations ship:
//!
//! - [`ScalarBackend`]: the original single-threaded reference loops.
//!   Bitwise-stable semantics; the oracle every parity test compares against.
//! - [`ParallelBackend`]: cache-blocked, register-tiled GEMM plus
//!   `std::thread::scope` row-panel work-stealing sized by
//!   [`std::thread::available_parallelism`]. No external crates. Within each
//!   output element the accumulation order is identical to the scalar kernel,
//!   so GEMM results match the reference bit-for-bit; blocked reductions
//!   (`sum`/`dot`) use a fixed block size so they are deterministic for any
//!   thread count.
//!
//! The active backend is a process-wide setting: [`set_backend`] selects one
//! programmatically, the `CAME_BACKEND` environment variable (`scalar` |
//! `parallel`) selects one at launch, and the default is `parallel`. Thread
//! count follows `available_parallelism`, overridable with `CAME_THREADS`.
//!
//! Elementwise ops keep their inner loops monomorphised: callers hand the
//! backend a *chunk* closure (`&dyn Fn(&[f32], &mut [f32])`), so the dynamic
//! dispatch cost is paid once per cache-sized chunk, not once per element.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which backend implementation to dispatch through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Reference single-threaded loops.
    Scalar,
    /// Cache-blocked, multithreaded kernels.
    Parallel,
}

impl BackendKind {
    /// Parse `"scalar"` / `"parallel"` (case-insensitive; `"par"` accepted).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" | "ref" | "reference" => Some(BackendKind::Scalar),
            "parallel" | "par" | "blocked" => Some(BackendKind::Parallel),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Parallel => "parallel",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::parse(s).ok_or_else(|| format!("unknown backend {s:?}"))
    }
}

/// Adam update hyper-parameters plus the step's bias corrections, packed so
/// the fused optimiser kernel has one argument.
#[derive(Clone, Copy, Debug)]
pub struct AdamHp {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// `1 - beta1^t` for the current step `t`.
    pub bias1: f32,
    /// `1 - beta2^t` for the current step `t`.
    pub bias2: f32,
}

/// Elementwise activation applied by the fused GEMM epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation (plain GEMM + optional bias).
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Apply the activation to one value. Uses the same scalar functions as
    /// the unfused graph ops, so fused and composed results are identical.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => crate::graph::sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }
}

/// The kernel dispatch trait. `out` GEMM buffers are *accumulated into*
/// (`C += A·B`); pass zeros for a plain product. Lane kernels treat their
/// buffer as contiguous rows of length `lane`.
pub trait Backend: Send + Sync {
    /// Canonical backend name.
    fn name(&self) -> &'static str;

    /// `out[m,n] += a[m,k] · b[k,n]`, row-major.
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Batched `out[i] += a[i] · b[i]` over `batch` independent `[m,k]x[k,n]`
    /// products stored contiguously.
    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..batch {
            self.matmul(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// In-place stabilised softmax over each contiguous lane of length `lane`.
    fn softmax_lanes(&self, data: &mut [f32], lane: usize);

    /// In-place layer normalisation (no affine) over contiguous lanes.
    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32);

    /// Backward of [`Backend::layer_norm_lanes`]: writes `d loss/d x` into
    /// `out` given input `x` and upstream gradient `g`.
    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    );

    /// Elementwise driver over one mutable buffer. `body` is invoked on
    /// cache-sized chunks (the whole buffer under the scalar backend).
    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync));

    /// Elementwise driver `src -> dst` (equal lengths, chunked in lockstep).
    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync));

    /// Elementwise driver `(a, b) -> dst` (equal lengths, chunked in lockstep).
    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    );

    /// Deterministic sum of all elements.
    fn sum(&self, xs: &[f32]) -> f32;

    /// Deterministic dot product (`xs.len() == ys.len()`).
    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32;

    /// Fused Adam step over one parameter tensor's buffers.
    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp);

    /// Fused `out = act(out + a·b + bias)`: GEMM accumulation followed by a
    /// row-broadcast bias add and elementwise activation in one pass while
    /// the output panel is cache-hot. `bias` has length `n` when present.
    /// With zeroed `out` this equals the composed
    /// `act(matmul(a, b) + bias)` bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        self.matmul(a, b, out, m, k, n);
        bias_act_rows(out, bias, n, act);
    }

    /// Fused attention-weight application: for each of `batch` independent
    /// problems, row-softmax `scores[m,k]` into `soft` and immediately
    /// accumulate `out[m,n] += softmax(scores)·v[k,n]`. The softmax result
    /// lands in the caller-provided `soft` scratch (needed for backward)
    /// instead of becoming a separate tape node. Equals the composed
    /// softmax-then-batched-matmul bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        for i in 0..batch {
            softmax_matmul_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut soft[i * m * k..(i + 1) * m * k],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// Fully fused scaled-outer-product attention, the TCA hot path: for each
    /// batch entry, score row `i` is built on the fly as `a[i]·c[j]/τ`
    /// directly inside `soft`, row-softmaxed in place, and accumulated into
    /// `out[m,n] += soft·v[k,n]`. The `[m,k]` score matrix never exists as a
    /// tensor — only the softmax survives (the backward pass needs it). With
    /// zeroed `out` this agrees with the composed outer-product → divide-by-τ
    /// → softmax → matmul chain to float rounding (the `/τ` is hoisted per
    /// row), within the 1e-5 parity budget.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        for i in 0..batch {
            outer_attention_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut soft[i * m * k..(i + 1) * m * k],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// Forward-only [`Backend::softmax_matmul`]: identical per-row math and
    /// accumulation order, but the softmax lives in a pooled `k`-float row
    /// that is recycled immediately instead of a `[batch,m,k]` tensor the
    /// backward pass would read. Tape-free inference calls this.
    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        let mut row = crate::pool::alloc_uninit(k);
        for i in 0..batch {
            softmax_matmul_fwd_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut row,
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(row);
    }

    /// Forward-only [`Backend::outer_attention`]: same fused score build,
    /// softmax, and ascending-`k` contraction, bit-equal to the
    /// tape-recording kernel. The attention case `n == 1` takes the
    /// column-major lane-parallel path ([`outer_attention_fwd_col_block`]);
    /// other shapes reuse the row walk with a pooled `k`-float softmax row.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        if n == 1 {
            let mut u = crate::pool::alloc_uninit(m * k);
            let mut lanes = crate::pool::alloc_uninit(3 * m);
            for i in 0..batch {
                outer_attention_fwd_col_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k..(i + 1) * k],
                    tau,
                    &mut u,
                    &mut lanes,
                    &mut out[i * m..(i + 1) * m],
                    m,
                    k,
                );
            }
            crate::pool::recycle(lanes);
            crate::pool::recycle(u);
            return;
        }
        let mut row = crate::pool::alloc_uninit(k);
        for i in 0..batch {
            outer_attention_fwd_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut row,
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(row);
    }

    /// Backward of [`Backend::outer_attention`]: reads the saved row softmax
    /// and the upstream gradient `gout [batch,m,n]`, accumulates into
    /// `ga [batch,m]`, `gc [batch,k]`, `gv [batch,k,n]`, and returns the
    /// scalar gradient wrt `τ`. Needs no `[m,k]`-sized scratch — every row is
    /// reduced in a `k`-float buffer while it is cache-hot.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        if m * k == 0 {
            return 0.0;
        }
        let mut scratch = crate::pool::alloc_uninit(k);
        let mut gtau = 0.0f32;
        for i in 0..batch {
            gtau += outer_attention_backward_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                &soft[i * m * k..(i + 1) * m * k],
                &gout[i * m * n..(i + 1) * m * n],
                tau,
                &mut ga[i * m..(i + 1) * m],
                &mut gc[i * k..(i + 1) * k],
                &mut gv[i * k * n..(i + 1) * k * n],
                &mut scratch,
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(scratch);
        gtau
    }
}

// --------------------------------------------------------------------------
// shared lane kernels (per-lane math identical across backends)
// --------------------------------------------------------------------------

#[inline]
fn softmax_one_lane(lane: &mut [f32]) {
    let mut mx = f32::NEG_INFINITY;
    for &v in lane.iter() {
        mx = mx.max(v);
    }
    let mut z = 0.0;
    for v in lane.iter_mut() {
        let e = crate::tensor::fast_exp(*v - mx);
        *v = e;
        z += e;
    }
    let inv = 1.0 / z;
    for v in lane.iter_mut() {
        *v *= inv;
    }
}

#[inline]
fn layer_norm_one_lane(lane: &mut [f32], eps: f32) {
    let d = lane.len() as f32;
    let mean = lane.iter().sum::<f32>() / d;
    let var = lane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
    let inv = 1.0 / (var + eps).sqrt();
    for v in lane.iter_mut() {
        *v = (*v - mean) * inv;
    }
}

#[inline]
fn layer_norm_backward_one_lane(xs: &[f32], gs: &[f32], os: &mut [f32], eps: f32) {
    let d = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / d;
    let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
    let inv = 1.0 / (var + eps).sqrt();
    let mut g_mean = 0.0f32;
    let mut gy_mean = 0.0f32;
    for (&g, &x) in gs.iter().zip(xs) {
        g_mean += g;
        gy_mean += g * (x - mean) * inv;
    }
    g_mean /= d;
    gy_mean /= d;
    for ((o, &g), &x) in os.iter_mut().zip(gs).zip(xs) {
        let y = (x - mean) * inv;
        *o = inv * (g - g_mean - y * gy_mean);
    }
}

#[inline]
fn adam_chunk(x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
    for i in 0..x.len() {
        let gi = g[i] + hp.weight_decay * x[i];
        m[i] = hp.beta1 * m[i] + (1.0 - hp.beta1) * gi;
        v[i] = hp.beta2 * v[i] + (1.0 - hp.beta2) * gi * gi;
        let mhat = m[i] / hp.bias1;
        let vhat = v[i] / hp.bias2;
        x[i] -= hp.lr * mhat / (vhat.sqrt() + hp.eps);
    }
}

/// Fused-GEMM epilogue: add the row-broadcast bias and apply the activation
/// over rows of length `n`.
#[inline]
fn bias_act_rows(out: &mut [f32], bias: Option<&[f32]>, n: usize, act: Activation) {
    match bias {
        Some(b) => {
            debug_assert_eq!(b.len(), n);
            for row in out.chunks_mut(n.max(1)) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o = act.apply(*o + bv);
                }
            }
        }
        None => {
            if act != Activation::Identity {
                for o in out.iter_mut() {
                    *o = act.apply(*o);
                }
            }
        }
    }
}

/// One batch entry of the fused softmax×matmul: row-softmax `scores[m,k]`
/// into `soft`, then `out[m,n] += soft·v[k,n]`. The accumulation over `k` is
/// ascending, matching both GEMM kernels, so results are bitwise equal to
/// the composed ops.
#[inline]
fn softmax_matmul_block(
    scores: &[f32],
    v: &[f32],
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        let srow = &mut soft[r * k..(r + 1) * k];
        srow.copy_from_slice(&scores[r * k..(r + 1) * k]);
        softmax_one_lane(srow);
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, &w) in srow.iter().enumerate() {
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the fused outer-product attention: score row `i` is
/// `(a[i]/τ)·c[j]` built straight in its `soft` row, softmaxed, then
/// `out[i,:] += soft_row·v` with ascending-`k` accumulation. Three passes per
/// row instead of the composed path's five: the row max rides along with the
/// score generation and the normalisation rides along with the contraction.
/// Hoisting the `/τ` out of the inner loop trades millions of per-element
/// divisions for one per row (agrees with the composed mul-then-div ordering
/// to float rounding, within the 1e-5 parity budget).
#[inline]
fn outer_attention_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        let srow = &mut soft[r * k..(r + 1) * k];
        let ars = a[r] / tau;
        let mut mx = f32::NEG_INFINITY;
        for (s, &cj) in srow.iter_mut().zip(c) {
            let sc = ars * cj;
            *s = sc;
            mx = mx.max(sc);
        }
        let mut z = 0.0;
        for s in srow.iter_mut() {
            let e = crate::tensor::fast_exp(*s - mx);
            *s = e;
            z += e;
        }
        let inv_z = 1.0 / z;
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, s) in srow.iter_mut().enumerate() {
            *s *= inv_z;
            let w = *s;
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only softmax×matmul: per row the softmax
/// lands in the caller's `k`-float `row` scratch (reused across rows) and is
/// contracted ascending-`k`, matching [`softmax_matmul_block`] bit-for-bit.
#[inline]
fn softmax_matmul_fwd_block(
    scores: &[f32],
    v: &[f32],
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        row.copy_from_slice(&scores[r * k..(r + 1) * k]);
        softmax_one_lane(row);
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, &w) in row.iter().enumerate() {
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only outer-product attention: the same
/// three passes as [`outer_attention_block`] with the softmax confined to the
/// caller's reused `k`-float `row` scratch.
#[allow(clippy::too_many_arguments)]
#[inline]
fn outer_attention_fwd_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(row.len(), k, "scratch must span the attention lane");
    for r in 0..m {
        let ars = a[r] / tau;
        let mut mx = f32::NEG_INFINITY;
        for (s, &cj) in row.iter_mut().zip(c) {
            let sc = ars * cj;
            *s = sc;
            mx = mx.max(sc);
        }
        let mut z = 0.0;
        for s in row.iter_mut() {
            let e = crate::tensor::fast_exp(*s - mx);
            *s = e;
            z += e;
        }
        let inv_z = 1.0 / z;
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, s) in row.iter_mut().enumerate() {
            *s *= inv_z;
            let w = *s;
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only outer attention, specialised for the
/// TCA case `n == 1` and laid out column-major so the *rows* become SIMD
/// lanes. Every per-row reduction (running max, softmax normaliser, weighted
/// contraction) advances in ascending-`j` lock-step across all rows, i.e. in
/// exactly the order [`outer_attention_block`] walks each row — the result is
/// bit-identical to the taped kernel — but each pass is a contiguous
/// element-wise loop over `m`-float row-lanes that the compiler vectorises
/// (the row-serial form is latency-bound on its per-row accumulator chains
/// and its branchy scalar `exp`). Only reachable from tape-free inference;
/// the taped kernel keeps the row layout its backward pass reads.
///
/// `u` is a `[k, m]` column-major scratch holding scores then exponentials;
/// `lanes` is `3·m` floats of per-row state (`a/τ` | running max | softmax
/// normaliser, the last reused for its reciprocal).
fn outer_attention_fwd_col_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    u: &mut [f32],
    lanes: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
) {
    debug_assert_eq!(u.len(), m * k, "column scratch must span the score block");
    debug_assert_eq!(lanes.len(), 3 * m, "lane scratch holds three m-vectors");
    let (ars, rest) = lanes.split_at_mut(m);
    let (mx, z) = rest.split_at_mut(m);
    for (s, &ar) in ars.iter_mut().zip(a) {
        *s = ar / tau;
    }
    mx.fill(f32::NEG_INFINITY);
    z.fill(0.0);
    // scores + running row max, ascending j
    for (j, &cj) in c.iter().enumerate() {
        let col = &mut u[j * m..(j + 1) * m];
        for ((s, &ar), m_r) in col.iter_mut().zip(ars.iter()).zip(mx.iter_mut()) {
            let sc = ar * cj;
            *s = sc;
            *m_r = m_r.max(sc);
        }
    }
    // exponentials + normaliser, ascending j per row
    for j in 0..k {
        let col = &mut u[j * m..(j + 1) * m];
        for ((s, &m_r), z_r) in col.iter_mut().zip(mx.iter()).zip(z.iter_mut()) {
            let e = crate::tensor::fast_exp_lane(*s - m_r);
            *s = e;
            *z_r += e;
        }
    }
    for z_r in z.iter_mut() {
        *z_r = 1.0 / *z_r;
    }
    // normalised weight times v, ascending j per row
    for (j, &vj) in v.iter().enumerate() {
        let col = &u[j * m..(j + 1) * m];
        for ((o, &e), &inv_z) in out.iter_mut().zip(col).zip(z.iter()) {
            *o += e * inv_z * vj;
        }
    }
}

/// One batch entry of the outer-attention backward; returns this entry's
/// contribution to the τ gradient. `scratch` is a caller-provided `k`-float
/// buffer: per row it first holds `∂L/∂soft`, then is transformed in place
/// into the softmax-backward `∂L/∂u` (u = scaled scores) for the final
/// reductions onto `ga`, `gc`, and τ.
#[allow(clippy::too_many_arguments)]
#[inline]
fn outer_attention_backward_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    soft: &[f32],
    gout: &[f32],
    tau: f32,
    ga: &mut [f32],
    gc: &mut [f32],
    gv: &mut [f32],
    scratch: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> f32 {
    let inv = 1.0 / tau;
    let mut gtau = 0.0f32;
    for r in 0..m {
        let srow = &soft[r * k..(r + 1) * k];
        let grow = &gout[r * n..(r + 1) * n];
        // gsoft_row[j] = gout_row · v[j,:]; gv[j,:] += soft_row[j] * gout_row
        let mut dot = 0.0f32;
        for j in 0..k {
            let vrow = &v[j * n..(j + 1) * n];
            let gvrow = &mut gv[j * n..(j + 1) * n];
            let w = srow[j];
            let mut acc = 0.0f32;
            for ((gv_o, &go), &vx) in gvrow.iter_mut().zip(grow).zip(vrow) {
                acc += go * vx;
                *gv_o += w * go;
            }
            scratch[j] = acc;
            dot += acc * w;
        }
        // softmax backward: ∂L/∂u = (gsoft − Σ gsoft⊙soft) ⊙ soft
        let ar = a[r];
        let ar_inv = ar * inv;
        let mut row_c_dot = 0.0f32;
        for j in 0..k {
            let gs = (scratch[j] - dot) * srow[j];
            row_c_dot += gs * c[j];
            gc[j] += gs * ar_inv;
        }
        ga[r] += row_c_dot * inv;
        // u = a·c/τ ⇒ ∂u/∂τ = −a·c/τ²
        gtau -= ar * row_c_dot * inv * inv;
    }
    gtau
}

// --------------------------------------------------------------------------
// ScalarBackend
// --------------------------------------------------------------------------

/// Reference single-threaded backend: the seed repo's original loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        crate::tensor::matmul_kernel(a, b, out, m, k, n);
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        if lane == 0 {
            return;
        }
        for l in data.chunks_mut(lane) {
            softmax_one_lane(l);
        }
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        if lane == 0 {
            return;
        }
        for l in data.chunks_mut(lane) {
            layer_norm_one_lane(l, eps);
        }
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        if lane == 0 {
            return;
        }
        for ((xs, gs), os) in x.chunks(lane).zip(g.chunks(lane)).zip(out.chunks_mut(lane)) {
            layer_norm_backward_one_lane(xs, gs, os, eps);
        }
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        body(data);
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        body(src, dst);
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        body(a, b, dst);
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        xs.iter().sum()
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        xs.iter().zip(ys).map(|(a, b)| a * b).sum()
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        adam_chunk(x, g, m, v, hp);
    }
}

// --------------------------------------------------------------------------
// ParallelBackend
// --------------------------------------------------------------------------

/// Minimum elements before elementwise work is fanned out to threads.
const PAR_MIN_ELEMS: usize = 16 * 1024;
/// Minimum multiply-adds before a GEMM is fanned out to threads.
const PAR_MIN_FLOPS: usize = 64 * 1024;
/// Rows per GEMM work-stealing panel.
const PANEL_ROWS: usize = 32;
/// k-dimension cache block: `KC * n` floats of `b` stay hot in L1/L2 while a
/// panel of `a` rows streams past.
const KC: usize = 256;
/// Elementwise chunk grain (floats) handed to each stolen task.
const GRAIN: usize = 32 * 1024;
/// Minimum elements before the *lane* kernels (softmax / layer-norm) fan
/// out. These are memory-bound few-pass kernels, so the scoped-thread spawn
/// cost is only recovered on much larger buffers than the generic
/// elementwise threshold — 512×512 buffers regressed to 0.935x under the old
/// [`PAR_MIN_ELEMS`] guard.
const PAR_MIN_LANE_ELEMS: usize = 512 * 1024;
/// Fixed reduction block so blocked sums are deterministic for any thread
/// count.
const SUM_BLOCK: usize = 4096;

/// Threads to use: `CAME_THREADS` override, else `available_parallelism`.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(s) = std::env::var("CAME_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Work-stealing task pool: spawns scoped workers that pull tasks off a
/// shared queue until it drains. Falls back to a plain loop for one thread or
/// a single task. Task order of *execution* is nondeterministic but each task
/// owns its output exclusively, so results are deterministic.
fn steal_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    let nt = num_threads().min(tasks.len());
    if nt <= 1 {
        for t in tasks {
            f(t);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..nt {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                match next {
                    Some(t) => f(t),
                    None => break,
                }
            });
        }
    });
}

/// Run `f` over `tasks` through the *active* backend's execution policy:
/// sequential under [`ScalarBackend`], work-stealing threads under
/// [`ParallelBackend`]. This is the hook the upper layers (filtered ranking,
/// per-query scoring) use to shard coarse-grained work without depending on
/// `std::thread` details.
pub fn run_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    match kind() {
        BackendKind::Scalar => {
            for t in tasks {
                f(t);
            }
        }
        BackendKind::Parallel => steal_tasks(tasks, f),
    }
}

/// Register-tiled accumulating GEMM block: processes 4 output rows at a time
/// (4 independent accumulator streams, `b` row traffic quartered) with the
/// k loop blocked at [`KC`]. The per-element accumulation order over `k` is
/// ascending — identical to the scalar kernel — so results are bitwise equal
/// on finite inputs.
fn gemm_tile(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let rows = &mut out[i * n..(i + 4) * n];
            let (r0, rest) = rows.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let (a0, a1, a2) = (&a[i * k..], &a[(i + 1) * k..], &a[(i + 2) * k..]);
            let a3 = &a[(i + 3) * k..];
            for p in kb..kend {
                let bro = &b[p * n..(p + 1) * n];
                let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                for j in 0..n {
                    let bv = bro[j];
                    r0[j] += x0 * bv;
                    r1[j] += x1 * bv;
                    r2[j] += x2 * bv;
                    r3[j] += x3 * bv;
                }
            }
            i += 4;
        }
        while i < m {
            let row = &mut out[i * n..(i + 1) * n];
            for p in kb..kend {
                let x = a[i * k + p];
                let bro = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(bro) {
                    *o += x * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

/// Min-work guard for the rowwise lane kernels: require both a large buffer
/// and enough rows to give every thread at least two, otherwise fall through
/// to the scalar loop.
fn lane_work_parallel(len: usize, lane: usize) -> bool {
    len >= PAR_MIN_LANE_ELEMS && num_threads() > 1 && len / lane.max(1) >= 2 * num_threads()
}

/// Split equal-length buffers into lockstep chunk tuples of at most `grain`
/// elements, aligned to `lane` boundaries when `lane > 0`.
fn grain_for(total: usize, lane: usize) -> usize {
    let lane = lane.max(1);
    let g = (GRAIN / lane).max(1) * lane;
    g.min(total.max(1))
}

/// Cache-blocked multithreaded backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelBackend;

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m * n == 0 || k == 0 {
            return; // nothing to accumulate
        }
        if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 || m <= PANEL_ROWS {
            gemm_tile(a, b, out, m, k, n);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(PANEL_ROWS * n).enumerate().collect();
        steal_tasks(tasks, |(pi, panel)| {
            let i0 = pi * PANEL_ROWS;
            let rows = panel.len() / n;
            gemm_tile(&a[i0 * k..(i0 + rows) * k], b, panel, rows, k, n);
        });
    }

    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch == 0 || m * n == 0 || k == 0 {
            return;
        }
        if batch * m * n * k < PAR_MIN_FLOPS || num_threads() == 1 {
            for i in 0..batch {
                gemm_tile(
                    &a[i * m * k..(i + 1) * m * k],
                    &b[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, panel)| {
            gemm_tile(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                panel,
                m,
                k,
                n,
            );
        });
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        if lane == 0 || data.is_empty() {
            return;
        }
        if !lane_work_parallel(data.len(), lane) {
            for l in data.chunks_mut(lane) {
                softmax_one_lane(l);
            }
            return;
        }
        let g = grain_for(data.len(), lane);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            for l in chunk.chunks_mut(lane) {
                softmax_one_lane(l);
            }
        });
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        if lane == 0 || data.is_empty() {
            return;
        }
        if !lane_work_parallel(data.len(), lane) {
            for l in data.chunks_mut(lane) {
                layer_norm_one_lane(l, eps);
            }
            return;
        }
        let g = grain_for(data.len(), lane);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            for l in chunk.chunks_mut(lane) {
                layer_norm_one_lane(l, eps);
            }
        });
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        if lane == 0 || x.is_empty() {
            return;
        }
        let run = |xs: &[f32], gs: &[f32], os: &mut [f32]| {
            for ((xl, gl), ol) in xs
                .chunks(lane)
                .zip(gs.chunks(lane))
                .zip(os.chunks_mut(lane))
            {
                layer_norm_backward_one_lane(xl, gl, ol, eps);
            }
        };
        if !lane_work_parallel(x.len(), lane) {
            run(x, g, out);
            return;
        }
        let gr = grain_for(x.len(), lane);
        let tasks: Vec<((&[f32], &[f32]), &mut [f32])> = x
            .chunks(gr)
            .zip(g.chunks(gr))
            .zip(out.chunks_mut(gr))
            .collect();
        steal_tasks(tasks, |((xs, gs), os)| run(xs, gs, os));
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        if data.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(data);
            return;
        }
        let g = grain_for(data.len(), 1);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            body(chunk)
        });
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        debug_assert_eq!(src.len(), dst.len());
        if src.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(src, dst);
            return;
        }
        let g = grain_for(src.len(), 1);
        let tasks: Vec<(&[f32], &mut [f32])> = src.chunks(g).zip(dst.chunks_mut(g)).collect();
        steal_tasks(tasks, |(s, d)| body(s, d));
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        debug_assert_eq!(a.len(), dst.len());
        debug_assert_eq!(b.len(), dst.len());
        if a.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(a, b, dst);
            return;
        }
        let g = grain_for(a.len(), 1);
        let tasks: Vec<((&[f32], &[f32]), &mut [f32])> = a
            .chunks(g)
            .zip(b.chunks(g))
            .zip(dst.chunks_mut(g))
            .collect();
        steal_tasks(tasks, |((x, y), d)| body(x, y, d));
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            // fixed-block fold even on one thread: result must not depend on
            // where the size threshold lands
            return xs.chunks(SUM_BLOCK).map(|c| c.iter().sum::<f32>()).sum();
        }
        let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
        let tasks: Vec<(&[f32], &mut f32)> =
            xs.chunks(SUM_BLOCK).zip(partials.iter_mut()).collect();
        steal_tasks(tasks, |(c, slot)| *slot = c.iter().sum::<f32>());
        partials.iter().sum()
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        debug_assert_eq!(xs.len(), ys.len());
        let block = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            return xs
                .chunks(SUM_BLOCK)
                .zip(ys.chunks(SUM_BLOCK))
                .map(|(a, b)| block(a, b))
                .sum();
        }
        let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
        let tasks: Vec<((&[f32], &[f32]), &mut f32)> = xs
            .chunks(SUM_BLOCK)
            .zip(ys.chunks(SUM_BLOCK))
            .zip(partials.iter_mut())
            .collect();
        steal_tasks(tasks, |((a, b), slot)| *slot = block(a, b));
        partials.iter().sum()
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        if x.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            adam_chunk(x, g, m, v, hp);
            return;
        }
        let gr = grain_for(x.len(), 1);
        let tasks: Vec<(((&mut [f32], &[f32]), &mut [f32]), &mut [f32])> = x
            .chunks_mut(gr)
            .zip(g.chunks(gr))
            .zip(m.chunks_mut(gr))
            .zip(v.chunks_mut(gr))
            .collect();
        steal_tasks(tasks, |(((xs, gs), ms), vs)| adam_chunk(xs, gs, ms, vs, hp));
    }

    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        if m * n == 0 {
            return;
        }
        if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 || m <= PANEL_ROWS {
            gemm_tile(a, b, out, m, k, n);
            bias_act_rows(out, bias, n, act);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(PANEL_ROWS * n).enumerate().collect();
        steal_tasks(tasks, |(pi, panel)| {
            let i0 = pi * PANEL_ROWS;
            let rows = panel.len() / n;
            gemm_tile(&a[i0 * k..(i0 + rows) * k], b, panel, rows, k, n);
            // epilogue while the panel is still cache-hot
            bias_act_rows(panel, bias, n, act);
        });
    }

    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        let seq = |soft: &mut [f32], out: &mut [f32]| {
            for i in 0..batch {
                softmax_matmul_block(
                    &scores[i * m * k..(i + 1) * m * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &mut soft[i * m * k..(i + 1) * m * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        };
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            seq(soft, out);
            return;
        }
        let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
            .chunks_mut(m * k)
            .enumerate()
            .zip(out.chunks_mut(m * n))
            .collect();
        steal_tasks(tasks, |((i, s), o)| {
            softmax_matmul_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                s,
                o,
                m,
                k,
                n,
            );
        });
    }

    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            for i in 0..batch {
                outer_attention_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k * n..(i + 1) * k * n],
                    tau,
                    &mut soft[i * m * k..(i + 1) * m * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            return;
        }
        let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
            .chunks_mut(m * k)
            .enumerate()
            .zip(out.chunks_mut(m * n))
            .collect();
        steal_tasks(tasks, |((i, s), o)| {
            outer_attention_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                s,
                o,
                m,
                k,
                n,
            );
        });
    }

    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            let mut row = crate::pool::alloc_uninit(k);
            for i in 0..batch {
                softmax_matmul_fwd_block(
                    &scores[i * m * k..(i + 1) * m * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &mut row,
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            crate::pool::recycle(row);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, o)| {
            let mut row = crate::pool::alloc_uninit(k);
            softmax_matmul_fwd_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut row,
                o,
                m,
                k,
                n,
            );
            crate::pool::recycle(row);
        });
    }

    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            Backend::outer_attention_fwd(&ScalarBackend, a, c, v, tau, out, batch, m, k, n);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, o)| {
            if n == 1 {
                let mut u = crate::pool::alloc_uninit(m * k);
                let mut lanes = crate::pool::alloc_uninit(3 * m);
                outer_attention_fwd_col_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k..(i + 1) * k],
                    tau,
                    &mut u,
                    &mut lanes,
                    o,
                    m,
                    k,
                );
                crate::pool::recycle(lanes);
                crate::pool::recycle(u);
                return;
            }
            let mut row = crate::pool::alloc_uninit(k);
            outer_attention_fwd_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut row,
                o,
                m,
                k,
                n,
            );
            crate::pool::recycle(row);
        });
    }

    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        if batch * m * k == 0 {
            return 0.0;
        }
        let seq = batch == 1 || batch * m * k * (n + 2) < PAR_MIN_FLOPS || num_threads() == 1;
        if seq {
            let mut scratch = crate::pool::alloc_uninit(k);
            let mut gtau = 0.0f32;
            for i in 0..batch {
                gtau += outer_attention_backward_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &soft[i * m * k..(i + 1) * m * k],
                    &gout[i * m * n..(i + 1) * m * n],
                    tau,
                    &mut ga[i * m..(i + 1) * m],
                    &mut gc[i * k..(i + 1) * k],
                    &mut gv[i * k * n..(i + 1) * k * n],
                    &mut scratch,
                    m,
                    k,
                    n,
                );
            }
            crate::pool::recycle(scratch);
            return gtau;
        }
        // per-batch gradient slices are disjoint; τ partials land in
        // per-entry slots so the final fold is deterministic
        let mut gtau_parts = vec![0.0f32; batch];
        let tasks: Vec<((((usize, &mut [f32]), &mut [f32]), &mut [f32]), &mut f32)> = ga
            .chunks_mut(m)
            .enumerate()
            .zip(gc.chunks_mut(k))
            .zip(gv.chunks_mut(k * n))
            .zip(gtau_parts.iter_mut())
            .collect();
        steal_tasks(tasks, |((((i, ga_i), gc_i), gv_i), slot)| {
            let mut scratch = crate::pool::alloc_uninit(k);
            *slot = outer_attention_backward_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                &soft[i * m * k..(i + 1) * m * k],
                &gout[i * m * n..(i + 1) * m * n],
                tau,
                ga_i,
                gc_i,
                gv_i,
                &mut scratch,
                m,
                k,
                n,
            );
            crate::pool::recycle(scratch);
        });
        gtau_parts.iter().sum()
    }
}

// --------------------------------------------------------------------------
// global selection
// --------------------------------------------------------------------------

static SCALAR: ScalarBackend = ScalarBackend;
static PARALLEL: ParallelBackend = ParallelBackend;

const KIND_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(KIND_UNSET);

fn kind_from_env() -> BackendKind {
    match std::env::var("CAME_BACKEND") {
        Ok(s) => BackendKind::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "[came-tensor] unknown CAME_BACKEND={s:?} (expected \"scalar\" or \
                 \"parallel\"); using parallel"
            );
            BackendKind::Parallel
        }),
        Err(_) => BackendKind::Parallel,
    }
}

/// Select the process-wide backend programmatically (overrides any earlier
/// choice, including `CAME_BACKEND`).
pub fn set_backend(kind: BackendKind) {
    ACTIVE.store(kind as u8, Ordering::SeqCst);
}

/// Re-read `CAME_BACKEND` and make it the active backend (`parallel` when the
/// variable is unset or unrecognised). Binaries call this at startup so the
/// environment wins over any backend a library default left behind.
pub fn init_from_env() -> BackendKind {
    let k = kind_from_env();
    set_backend(k);
    k
}

/// The active [`BackendKind`], initialising from `CAME_BACKEND` on first use.
pub fn kind() -> BackendKind {
    match ACTIVE.load(Ordering::SeqCst) {
        0 => BackendKind::Scalar,
        1 => BackendKind::Parallel,
        _ => init_from_env(),
    }
}

/// The active backend implementation.
///
/// When observability is on ([`came_obs::enabled`]), dispatch goes through a
/// [`TimedBackend`] wrapper that records per-kernel call counts and wall ns
/// into `kernel.*` histograms; otherwise the raw backend is returned and the
/// only cost is one relaxed atomic load.
pub fn active() -> &'static dyn Backend {
    let k = kind();
    if came_obs::enabled() {
        match k {
            BackendKind::Scalar => &TIMED_SCALAR,
            BackendKind::Parallel => &TIMED_PARALLEL,
        }
    } else {
        of(k)
    }
}

/// A specific backend implementation by kind (used by benches and parity
/// tests to address both sides without mutating the global selection).
/// Never wrapped in kernel timing, so parity harnesses measure raw kernels.
pub fn of(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Parallel => &PARALLEL,
    }
}

// --------------------------------------------------------------------------
// kernel-dispatch instrumentation
// --------------------------------------------------------------------------

static TIMED_SCALAR: TimedBackend = TimedBackend { inner: &SCALAR };
static TIMED_PARALLEL: TimedBackend = TimedBackend { inner: &PARALLEL };

/// Decorator that forwards every kernel to `inner` and records the call's
/// wall time into the `kernel.<method>` histogram (count + ns live in the
/// same histogram: `count()` is calls, `sum()` is total ns). Every trait
/// method is overridden — including the ones with default bodies — so
/// composite kernels (`matmul_batched`, the fused attention paths) are timed
/// once at the dispatch boundary rather than once per inner GEMM.
struct TimedBackend {
    inner: &'static dyn Backend,
}

impl TimedBackend {
    #[inline]
    fn timed<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        came_obs::record_ns(name, t0.elapsed().as_nanos() as u64);
        r
    }
}

impl Backend for TimedBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.timed("kernel.matmul", || self.inner.matmul(a, b, out, m, k, n))
    }

    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.matmul_batched", || {
            self.inner.matmul_batched(a, b, out, batch, m, k, n)
        })
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        self.timed("kernel.softmax_lanes", || {
            self.inner.softmax_lanes(data, lane)
        })
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        self.timed("kernel.layer_norm_lanes", || {
            self.inner.layer_norm_lanes(data, lane, eps)
        })
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        self.timed("kernel.layer_norm_backward_lanes", || {
            self.inner.layer_norm_backward_lanes(x, g, out, lane, eps)
        })
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        self.timed("kernel.run1", || self.inner.run1(data, body))
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        self.timed("kernel.run2", || self.inner.run2(src, dst, body))
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        self.timed("kernel.run3", || self.inner.run3(a, b, dst, body))
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        self.timed("kernel.sum", || self.inner.sum(xs))
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        self.timed("kernel.dot", || self.inner.dot(xs, ys))
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        self.timed("kernel.adam_update", || {
            self.inner.adam_update(x, g, m, v, hp)
        })
    }

    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        self.timed("kernel.gemm_bias_act", || {
            self.inner.gemm_bias_act(a, b, bias, out, m, k, n, act)
        })
    }

    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.softmax_matmul", || {
            self.inner
                .softmax_matmul(scores, v, soft, out, batch, m, k, n)
        })
    }

    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.outer_attention", || {
            self.inner
                .outer_attention(a, c, v, tau, soft, out, batch, m, k, n)
        })
    }

    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.softmax_matmul_fwd", || {
            self.inner
                .softmax_matmul_fwd(scores, v, out, batch, m, k, n)
        })
    }

    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.outer_attention_fwd", || {
            self.inner
                .outer_attention_fwd(a, c, v, tau, out, batch, m, k, n)
        })
    }

    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        self.timed("kernel.outer_attention_backward", || {
            self.inner
                .outer_attention_backward(a, c, v, soft, gout, tau, ga, gc, gv, batch, m, k, n)
        })
    }
}

// Fusion switch: u8::MAX = uninitialised (read CAME_FUSION once).
static FUSION: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether [`crate::graph::Graph`] routes `gemm_bias_act` / `softmax_matmul`
/// through the fused kernels (default) or falls back to the composed unfused
/// ops. `CAME_FUSION=0` disables at launch; the micro-bench flips this to
/// measure fused vs unfused step times.
pub fn fusion_enabled() -> bool {
    match FUSION.load(Ordering::SeqCst) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("CAME_FUSION").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            set_fusion(on);
            on
        }
    }
}

/// Enable or disable kernel fusion process-wide (see [`fusion_enabled`]).
pub fn set_fusion(on: bool) {
    FUSION.store(on as u8, Ordering::SeqCst);
}

// Tape-free inference switch: u8::MAX = uninitialised (read CAME_INFER once).
static INFER: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether [`crate::graph::Graph::inference`] runs tape-free (default): no op
/// payloads recorded, no softmax retention, forward-only fused kernels.
/// `CAME_INFER=0` at launch falls back to the taped inference graph; the
/// micro-bench flips this to A/B the two modes.
pub fn infer_tape_free() -> bool {
    match INFER.load(Ordering::SeqCst) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("CAME_INFER").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            set_infer_tape_free(on);
            on
        }
    }
}

/// Enable or disable tape-free inference process-wide (see
/// [`infer_tape_free`]).
pub fn set_infer_tape_free(on: bool) {
    INFER.store(on as u8, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
        (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_tile_matches_reference_on_odd_shapes() {
        let mut rng = Prng::new(0);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (13, 17, 9), (65, 33, 130)] {
            let a = randv(m * k, &mut rng);
            let b = randv(k * n, &mut rng);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm_tile(&a, &b, &mut got, m, k, n);
            crate::tensor::matmul_kernel(&a, &b, &mut want, m, k, n);
            assert_close(&got, &want, 1e-6, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_matmul_matches_scalar_above_thread_threshold() {
        let mut rng = Prng::new(1);
        let (m, k, n) = (70, 40, 50); // > PAR_MIN_FLOPS, m > PANEL_ROWS
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut got = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        ParallelBackend.matmul(&a, &b, &mut got, m, k, n);
        ScalarBackend.matmul(&a, &b, &mut want, m, k, n);
        assert_close(&got, &want, 1e-5, "par matmul");
    }

    #[test]
    fn empty_dims_are_noops() {
        ParallelBackend.matmul(&[], &[], &mut [], 0, 3, 0);
        let mut out = vec![1.0, 2.0];
        // k == 0: accumulate nothing, out untouched
        ParallelBackend.matmul(&[], &[], &mut out, 1, 0, 2);
        assert_eq!(out, vec![1.0, 2.0]);
        ParallelBackend.softmax_lanes(&mut [], 4);
        ScalarBackend.softmax_lanes(&mut [], 0);
    }

    #[test]
    fn blocked_sum_deterministic_and_accurate() {
        let mut rng = Prng::new(2);
        let xs = randv(100_000, &mut rng);
        let a = ParallelBackend.sum(&xs);
        let b = ParallelBackend.sum(&xs);
        assert_eq!(a, b, "sum must be deterministic");
        let want: f64 = xs.iter().map(|&v| v as f64).sum();
        assert!((a as f64 - want).abs() < 0.05, "{a} vs {want}");
    }

    #[test]
    fn steal_tasks_covers_every_task_exactly_once() {
        let mut flags = vec![0u8; 257];
        let tasks: Vec<(usize, &mut u8)> = flags.iter_mut().enumerate().collect();
        steal_tasks(tasks, |(_i, f)| *f += 1);
        assert!(flags.iter().all(|&f| f == 1));
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(BackendKind::parse("Scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse("PARALLEL"), Some(BackendKind::Parallel));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!("par".parse::<BackendKind>(), Ok(BackendKind::Parallel));
        assert_eq!(BackendKind::Parallel.name(), "parallel");
    }

    #[test]
    fn timed_backend_records_kernel_metrics_and_matches_raw() {
        let _guard = crate::obs_test_guard();
        let mut rng = Prng::new(99);
        let (m, k, n) = (7, 5, 6);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut raw = vec![0.0; m * n];
        SCALAR.matmul(&a, &b, &mut raw, m, k, n);

        let calls_before = came_obs::registry().histogram("kernel.matmul").count();
        came_obs::set_enabled(true);
        let timed: &dyn Backend = &TIMED_SCALAR;
        assert_eq!(timed.name(), "scalar");
        let mut out = vec![0.0; m * n];
        timed.matmul(&a, &b, &mut out, m, k, n);
        let s = timed.sum(&out);
        came_obs::set_enabled(false);

        assert_eq!(out, raw, "timing wrapper must not change results");
        assert!((s - SCALAR.sum(&raw)).abs() < 1e-6);
        let h = came_obs::registry().histogram("kernel.matmul");
        assert!(h.count() > calls_before, "kernel call not recorded");
        assert!(h.sum() > 0, "kernel ns not recorded");
    }
}
