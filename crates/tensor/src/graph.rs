//! Reverse-mode automatic differentiation.
//!
//! The engine is define-by-run: each training step builds a fresh [`Graph`]
//! of [`Node`]s, computes forward values eagerly, and [`Graph::backward`]
//! walks the tape in reverse accumulating gradients. Model parameters live
//! outside the graph in a [`crate::nn::ParamStore`]; `backward` scatters
//! parameter gradients straight into the store so the optimiser can step.

use std::cell::RefCell;

use crate::backend::Activation;
use crate::conv;
use crate::nn::{ParamId, ParamStore};
use crate::pool::IdBuf;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`]. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Elementwise unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryKind {
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Elementwise square.
    Square,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
}

#[derive(Clone, Debug)]
enum Op {
    /// Constant input; may still receive a gradient (retrievable via
    /// [`Graph::grad`]) but has no parents.
    Input,
    /// A parameter leaf: gradient is scattered into the [`ParamStore`].
    Param(ParamId),
    /// Row gather from an embedding table parameter.
    Embedding {
        table: ParamId,
        ids: IdBuf,
    },
    /// Scatter-add of rows: `out[ids[i]] += x[i]` over `n` output rows
    /// (message aggregation in graph neural networks).
    ScatterSum {
        x: Var,
        ids: IdBuf,
    },
    /// Row gather from a *computed* 2-D node: `out[i] = x[ids[i]]`.
    Gather {
        x: Var,
        ids: IdBuf,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Matmul(Var, Var),
    /// Fused `act(x·w + b)` computed by the backend in one pass.
    GemmBiasAct {
        x: Var,
        w: Var,
        b: Option<Var>,
        act: Activation,
    },
    /// Fused row-softmax × value product. `soft` keeps the softmax output
    /// for the backward pass without materialising it as a tape node.
    SoftmaxMatmul {
        scores: Var,
        v: Var,
        soft: Tensor,
    },
    /// Fully fused scaled-outer-product attention
    /// `softmax_rows(a ⊗ c / τ) · v`: neither the score matrix nor the
    /// softmax become tape nodes — only the softmax survives in `soft` for
    /// the backward pass.
    OuterAttention {
        a: Var,
        c: Var,
        v: Var,
        tau: Var,
        soft: Tensor,
    },
    Unary {
        x: Var,
        kind: UnaryKind,
    },
    /// `scale * x + shift` was applied elementwise; only the scale matters
    /// for the backward pass.
    Affine {
        x: Var,
        scale: f32,
    },
    Softmax {
        x: Var,
        axis: usize,
    },
    SumAxis {
        x: Var,
        axis: usize,
        keepdim: bool,
    },
    SumAll {
        x: Var,
    },
    MeanAll {
        x: Var,
    },
    Reshape {
        x: Var,
    },
    Transpose {
        x: Var,
        a: usize,
        b: usize,
    },
    Concat {
        xs: Vec<Var>,
        axis: usize,
    },
    Narrow {
        x: Var,
        axis: usize,
        start: usize,
    },
    Conv2d {
        x: Var,
        w: Var,
        b: Option<Var>,
    },
    /// Layer normalisation over the last axis, no affine parameters.
    LayerNorm {
        x: Var,
        eps: f32,
    },
    /// Dropout; the saved mask already includes the `1/keep` scale.
    Dropout {
        x: Var,
        mask: Tensor,
    },
    /// Mean binary cross-entropy against fixed (multi-hot) targets, applied
    /// to raw logits for numerical stability. Optional per-element weights
    /// (e.g. a 0/1 mask for sampled negatives) rescale each term; the loss is
    /// normalised by the total weight.
    BceWithLogits {
        logits: Var,
        targets: Tensor,
        weights: Option<Tensor>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A single-use autodiff tape.
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
    training: bool,
    /// When false the graph is a pure forward evaluator: node values are
    /// still kept (later ops read their parents by [`Var`] index) but every
    /// op is recorded as a parentless [`Op::Input`], so no id buffers,
    /// target clones, or softmax scratch survive and `backward` is illegal.
    record: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Fresh empty graph in training mode.
    pub fn new() -> Self {
        Graph {
            nodes: RefCell::new(Vec::new()),
            grads: RefCell::new(Vec::new()),
            training: true,
            record: true,
        }
    }

    /// Fresh graph in inference mode: dropout becomes identity and — unless
    /// [`crate::backend::infer_tape_free`] is switched off via `CAME_INFER=0`
    /// — the tape is not recorded (forward values only, no backward).
    pub fn inference() -> Self {
        Graph {
            training: false,
            record: !crate::backend::infer_tape_free(),
            ..Self::new()
        }
    }

    /// Whether dropout and other train-only behaviour is active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Whether this graph records the backward tape ([`Graph::backward`]
    /// panics when false).
    pub fn records_tape(&self) -> bool {
        self.record
    }

    /// Clear the tape so the graph can be reused for the next step. Dropped
    /// node values and gradients park their buffers in the thread-local
    /// [`crate::pool`], so the next step's allocations become pool hits.
    /// All [`Var`] handles from before the reset are invalidated.
    pub fn reset(&mut self) {
        self.nodes.borrow_mut().clear();
        self.grads.borrow_mut().clear();
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        debug_assert!(
            !value.has_non_finite(),
            "non-finite values produced by {op:?}"
        );
        let op = if self.record { op } else { Op::Input };
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Build `op` only on a recording graph; tape-free graphs store a
    /// parentless [`Op::Input`] instead, skipping the payload construction
    /// (id-buffer copies, target clones) entirely.
    #[inline]
    fn op_if_recording(&self, op: impl FnOnce() -> Op) -> Op {
        if self.record {
            op()
        } else {
            Op::Input
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if no nodes have been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> Shape {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// Clone of a node's forward value. Prefer [`Graph::with_value`] on hot
    /// paths that only need to read the tensor.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Borrow a node's forward value without cloning it. The closure must
    /// not create nodes on this graph (the tape is borrowed for its
    /// duration); build any derived nodes outside the closure.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.0].value)
    }

    /// Gradient of the last [`Graph::backward`] loss w.r.t. node `v`
    /// (zeros if the node did not participate).
    pub fn grad(&self, v: Var) -> Tensor {
        let grads = self.grads.borrow();
        match grads.get(v.0).and_then(|g| g.clone()) {
            Some(g) => g,
            None => Tensor::zeros(self.shape(v)),
        }
    }

    // ----- leaves --------------------------------------------------------

    /// Insert a constant tensor.
    pub fn input(&self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Insert a scalar constant.
    pub fn constant(&self, v: f32) -> Var {
        self.input(Tensor::scalar(v))
    }

    /// Bring a parameter into the graph (clones its current value).
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Gather rows `ids` from a 2-D embedding-table parameter; result is
    /// `[ids.len(), d]`.
    pub fn embedding(&self, store: &ParamStore, table: ParamId, ids: &[u32]) -> Var {
        let t = store.value(table);
        assert_eq!(t.shape().ndim(), 2, "embedding table must be 2-D");
        let (n, d) = (t.shape().at(0), t.shape().at(1));
        // every output row is copied below, so the buffer may start stale
        let mut out = Tensor::uninit(Shape::d2(ids.len(), d));
        for (i, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < n, "embedding id {id} out of table size {n}");
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(&t.data()[id * d..(id + 1) * d]);
        }
        self.push(
            out,
            self.op_if_recording(|| Op::Embedding {
                table,
                ids: IdBuf::from_slice(ids),
            }),
        )
    }

    /// Scatter-add rows of `x: [E, d]` into an `[n, d]` output:
    /// `out[ids[i], :] += x[i, :]`. The aggregation step of message-passing
    /// GNN layers (CompGCN).
    ///
    /// # Panics
    /// Panics if `x` is not 2-D, `ids.len() != E`, or an id is `>= n`.
    pub fn scatter_sum(&self, x: Var, ids: &[u32], n: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let t = &nodes[x.0].value;
            assert_eq!(t.shape().ndim(), 2, "scatter_sum input must be 2-D");
            let (e, d) = (t.shape().at(0), t.shape().at(1));
            assert_eq!(ids.len(), e, "scatter_sum ids length mismatch");
            let mut out = Tensor::zeros(Shape::d2(n, d));
            for (row, &id) in ids.iter().enumerate() {
                assert!((id as usize) < n, "scatter id {id} out of {n}");
                let dst = &mut out.data_mut()[id as usize * d..(id as usize + 1) * d];
                let src = &t.data()[row * d..(row + 1) * d];
                for (a, b) in dst.iter_mut().zip(src) {
                    *a += b;
                }
            }
            out
        };
        self.push(
            v,
            self.op_if_recording(|| Op::ScatterSum {
                x,
                ids: IdBuf::from_slice(ids),
            }),
        )
    }

    /// Gather rows of a computed 2-D value: `out[i, :] = x[ids[i], :]`.
    /// (For parameter tables prefer [`Graph::embedding`], which skips
    /// materialising the full table on the tape.)
    ///
    /// # Panics
    /// Panics if `x` is not 2-D or an id is out of range.
    pub fn gather(&self, x: Var, ids: &[u32]) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let t = &nodes[x.0].value;
            assert_eq!(t.shape().ndim(), 2, "gather input must be 2-D");
            let (n, d) = (t.shape().at(0), t.shape().at(1));
            // every output row is copied below, so the buffer may start stale
            let mut out = Tensor::uninit(Shape::d2(ids.len(), d));
            for (row, &id) in ids.iter().enumerate() {
                assert!((id as usize) < n, "gather id {id} out of {n}");
                out.data_mut()[row * d..(row + 1) * d]
                    .copy_from_slice(&t.data()[id as usize * d..(id as usize + 1) * d]);
            }
            out
        };
        self.push(
            v,
            self.op_if_recording(|| Op::Gather {
                x,
                ids: IdBuf::from_slice(ids),
            }),
        )
    }

    // ----- binary elementwise (broadcasting) ------------------------------

    /// Elementwise sum with broadcasting.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0]
                .value
                .zip_broadcast(&nodes[b.0].value, |x, y| x + y)
        };
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0]
                .value
                .zip_broadcast(&nodes[b.0].value, |x, y| x - y)
        };
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product with broadcasting.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0]
                .value
                .zip_broadcast(&nodes[b.0].value, |x, y| x * y)
        };
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0]
                .value
                .zip_broadcast(&nodes[b.0].value, |x, y| x / y)
        };
        self.push(v, Op::Div(a, b))
    }

    // ----- unary ----------------------------------------------------------

    fn unary(&self, x: Var, kind: UnaryKind) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let t = &nodes[x.0].value;
            match kind {
                UnaryKind::Sigmoid => t.map(sigmoid),
                UnaryKind::Tanh => t.map(f32::tanh),
                UnaryKind::Relu => t.map(|v| v.max(0.0)),
                UnaryKind::Exp => t.map(f32::exp),
                UnaryKind::Ln => t.map(f32::ln),
                UnaryKind::Sqrt => t.map(f32::sqrt),
                UnaryKind::Abs => t.map(f32::abs),
                UnaryKind::Neg => t.map(|v| -v),
                UnaryKind::Square => t.map(|v| v * v),
                UnaryKind::Sin => t.map(f32::sin),
                UnaryKind::Cos => t.map(f32::cos),
            }
        };
        self.push(v, Op::Unary { x, kind })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Relu)
    }

    /// Elementwise exponential.
    pub fn exp(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Abs)
    }

    /// Elementwise negation.
    pub fn neg(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Neg)
    }

    /// Elementwise square.
    pub fn square(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Square)
    }

    /// Elementwise sine.
    pub fn sin(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Sin)
    }

    /// Elementwise cosine.
    pub fn cos(&self, x: Var) -> Var {
        self.unary(x, UnaryKind::Cos)
    }

    /// `scale * x + shift` with scalar constants.
    pub fn affine(&self, x: Var, scale: f32, shift: f32) -> Var {
        let v = self.nodes.borrow()[x.0].value.map(|v| scale * v + shift);
        self.push(v, Op::Affine { x, scale })
    }

    /// Multiply by a scalar constant.
    pub fn scale(&self, x: Var, s: f32) -> Var {
        self.affine(x, s, 0.0)
    }

    // ----- structural -----------------------------------------------------

    /// Reshape to an equal-element-count shape.
    pub fn reshape(&self, x: Var, shape: Shape) -> Var {
        let v = self.nodes.borrow()[x.0].value.reshape(shape);
        self.push(v, Op::Reshape { x })
    }

    /// Swap two axes.
    pub fn transpose(&self, x: Var, a: usize, b: usize) -> Var {
        let v = self.nodes.borrow()[x.0].value.transpose(a, b);
        self.push(v, Op::Transpose { x, a, b })
    }

    /// Concatenate along `axis`.
    pub fn concat(&self, xs: &[Var], axis: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let parts: Vec<&Tensor> = xs.iter().map(|v| &nodes[v.0].value).collect();
            Tensor::concat(&parts, axis)
        };
        self.push(
            v,
            self.op_if_recording(|| Op::Concat {
                xs: xs.to_vec(),
                axis,
            }),
        )
    }

    /// Slice `len` entries from `start` along `axis`.
    pub fn narrow(&self, x: Var, axis: usize, start: usize, len: usize) -> Var {
        let v = self.nodes.borrow()[x.0].value.narrow(axis, start, len);
        self.push(v, Op::Narrow { x, axis, start })
    }

    // ----- linear algebra ---------------------------------------------------

    /// Matrix multiply (see [`Tensor::matmul`] for supported rank pairs).
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.matmul(&nodes[b.0].value)
        };
        self.push(v, Op::Matmul(a, b))
    }

    /// Softmax along `axis`.
    pub fn softmax(&self, x: Var, axis: usize) -> Var {
        let v = self.nodes.borrow()[x.0].value.softmax_axis(axis);
        self.push(v, Op::Softmax { x, axis })
    }

    /// Fused `act(x·w + b)`: GEMM, bias add, and activation in one backend
    /// pass (one tape node instead of three). `x` is `[m, k]` or `[B, m, k]`,
    /// `w` is `[k, n]`, and `b` — when present — has `n` elements. Falls back
    /// to the composed unfused ops when [`crate::backend::fusion_enabled`]
    /// is off; both paths produce bit-identical values and gradients.
    pub fn gemm_bias_act(&self, x: Var, w: Var, b: Option<Var>, act: Activation) -> Var {
        if !crate::backend::fusion_enabled() {
            let y = self.matmul(x, w);
            let y = match b {
                Some(bv) => self.add(y, bv),
                None => y,
            };
            return match act {
                Activation::Identity => y,
                Activation::Sigmoid => self.sigmoid(y),
                Activation::Tanh => self.tanh(y),
                Activation::Relu => self.relu(y),
            };
        }
        let v = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.0].value;
            let wv = &nodes[w.0].value;
            assert_eq!(wv.shape().ndim(), 2, "gemm_bias_act weight must be 2-D");
            let (k, n) = (wv.shape().at(0), wv.shape().at(1));
            let out_shape = match xv.shape().ndim() {
                2 => {
                    assert_eq!(xv.shape().at(1), k, "gemm_bias_act inner dim mismatch");
                    Shape::d2(xv.shape().at(0), n)
                }
                3 => {
                    assert_eq!(xv.shape().at(2), k, "gemm_bias_act inner dim mismatch");
                    Shape::d3(xv.shape().at(0), xv.shape().at(1), n)
                }
                _ => panic!("gemm_bias_act input must be 2-D or 3-D"),
            };
            let m = if k == 0 { 0 } else { xv.numel() / k };
            let bias = b.map(|bv| &nodes[bv.0].value);
            if let Some(bt) = bias {
                assert_eq!(bt.numel(), n, "gemm_bias_act bias must have n elements");
            }
            let mut out = Tensor::zeros(out_shape);
            crate::backend::active().gemm_bias_act(
                xv.data(),
                wv.data(),
                bias.map(|t| t.data()),
                out.data_mut(),
                m,
                k,
                n,
                act,
            );
            out
        };
        self.push(v, Op::GemmBiasAct { x, w, b, act })
    }

    /// Fused attention application `softmax(scores, axis=2) · v` for 3-D
    /// `scores: [B, m, k]` and `v: [B, k, n]`. The softmax output never
    /// materialises as a tape node — the backend writes it into pooled
    /// scratch saved for the backward pass. Falls back to composed
    /// softmax + matmul when [`crate::backend::fusion_enabled`] is off;
    /// both paths produce bit-identical values and gradients.
    pub fn softmax_matmul(&self, scores: Var, v: Var) -> Var {
        if !crate::backend::fusion_enabled() {
            let soft = self.softmax(scores, 2);
            return self.matmul(soft, v);
        }
        let (out, soft) = {
            let nodes = self.nodes.borrow();
            let sv = &nodes[scores.0].value;
            let vv = &nodes[v.0].value;
            assert_eq!(sv.shape().ndim(), 3, "softmax_matmul scores must be 3-D");
            assert_eq!(vv.shape().ndim(), 3, "softmax_matmul values must be 3-D");
            let (batch, m, k) = (sv.shape().at(0), sv.shape().at(1), sv.shape().at(2));
            assert_eq!(vv.shape().at(0), batch, "softmax_matmul batch mismatch");
            assert_eq!(vv.shape().at(1), k, "softmax_matmul inner dim mismatch");
            let n = vv.shape().at(2);
            let mut out = Tensor::zeros(Shape::d3(batch, m, n));
            if !self.record {
                // tape-free: the softmax lives in a recycled per-row scratch
                crate::backend::active().softmax_matmul_fwd(
                    sv.data(),
                    vv.data(),
                    out.data_mut(),
                    batch,
                    m,
                    k,
                    n,
                );
                (out, None)
            } else {
                // every soft row is written by the kernel before use
                let mut soft = Tensor::uninit(sv.shape());
                crate::backend::active().softmax_matmul(
                    sv.data(),
                    vv.data(),
                    soft.data_mut(),
                    out.data_mut(),
                    batch,
                    m,
                    k,
                    n,
                );
                (out, Some(soft))
            }
        };
        match soft {
            Some(soft) => self.push(out, Op::SoftmaxMatmul { scores, v, soft }),
            None => self.push(out, Op::Input),
        }
    }

    /// Fully fused TCA attention term `softmax_rows(a ⊗ c / τ) · v` for
    /// `a: [B, m]`, `c: [B, k]`, `v: [B, k, n]` and a scalar temperature
    /// node `tau`. The `[B, m, k]` outer-product score matrix is built row
    /// by row inside the kernel and never materialises; gradients flow to
    /// all four inputs, including the learnable `τ`. Falls back to the
    /// composed outer-product → divide → softmax → matmul chain when
    /// [`crate::backend::fusion_enabled`] is off; the two paths agree to
    /// float rounding (the kernel hoists the `/τ` out of the inner loop),
    /// within the 1e-5 budget `tests/fused_ops.rs` pins.
    pub fn outer_attention(&self, a: Var, c: Var, v: Var, tau: Var) -> Var {
        if !crate::backend::fusion_enabled() {
            let (b, m) = {
                let s = self.shape(a);
                (s.at(0), s.at(1))
            };
            let k = self.shape(c).at(1);
            let col = self.reshape(a, Shape::d3(b, m, 1));
            let row = self.reshape(c, Shape::d3(b, 1, k));
            let scores = self.div(self.mul(col, row), tau);
            return self.softmax_matmul(scores, v);
        }
        let (out, soft) = {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.0].value;
            let cv = &nodes[c.0].value;
            let vv = &nodes[v.0].value;
            let tv = &nodes[tau.0].value;
            assert_eq!(av.shape().ndim(), 2, "outer_attention a must be 2-D");
            assert_eq!(cv.shape().ndim(), 2, "outer_attention c must be 2-D");
            assert_eq!(vv.shape().ndim(), 3, "outer_attention v must be 3-D");
            assert_eq!(tv.numel(), 1, "outer_attention tau must be scalar");
            let (batch, m) = (av.shape().at(0), av.shape().at(1));
            let k = cv.shape().at(1);
            assert_eq!(cv.shape().at(0), batch, "outer_attention batch mismatch");
            assert_eq!(vv.shape().at(0), batch, "outer_attention batch mismatch");
            assert_eq!(vv.shape().at(1), k, "outer_attention inner dim mismatch");
            let n = vv.shape().at(2);
            let mut out = Tensor::zeros(Shape::d3(batch, m, n));
            if !self.record {
                // tape-free: the softmax lives in a recycled per-row scratch
                crate::backend::active().outer_attention_fwd(
                    av.data(),
                    cv.data(),
                    vv.data(),
                    tv.data()[0],
                    out.data_mut(),
                    batch,
                    m,
                    k,
                    n,
                );
                (out, None)
            } else {
                // every soft row is written by the kernel before use
                let mut soft = Tensor::uninit(Shape::d3(batch, m, k));
                crate::backend::active().outer_attention(
                    av.data(),
                    cv.data(),
                    vv.data(),
                    tv.data()[0],
                    soft.data_mut(),
                    out.data_mut(),
                    batch,
                    m,
                    k,
                    n,
                );
                (out, Some(soft))
            }
        };
        match soft {
            Some(soft) => self.push(out, Op::OuterAttention { a, c, v, tau, soft }),
            None => self.push(out, Op::Input),
        }
    }

    // ----- reductions -------------------------------------------------------

    /// Sum along an axis.
    pub fn sum_axis(&self, x: Var, axis: usize, keepdim: bool) -> Var {
        let v = self.nodes.borrow()[x.0].value.sum_axis(axis, keepdim);
        self.push(v, Op::SumAxis { x, axis, keepdim })
    }

    /// Sum of all elements (scalar node).
    pub fn sum_all(&self, x: Var) -> Var {
        let v = Tensor::scalar(self.nodes.borrow()[x.0].value.sum());
        self.push(v, Op::SumAll { x })
    }

    /// Mean of all elements (scalar node).
    pub fn mean_all(&self, x: Var) -> Var {
        let v = Tensor::scalar(self.nodes.borrow()[x.0].value.mean());
        self.push(v, Op::MeanAll { x })
    }

    // ----- neural-net specific ------------------------------------------------

    /// Valid (unpadded) stride-1 2-D convolution. `x: [B,C,H,W]`,
    /// `w: [F,C,kh,kw]`, optional bias `[F]`.
    pub fn conv2d(&self, x: Var, w: Var, b: Option<Var>) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            conv::conv2d_forward(
                &nodes[x.0].value,
                &nodes[w.0].value,
                b.map(|bv| nodes[bv.0].value.clone()).as_ref(),
            )
        };
        self.push(v, Op::Conv2d { x, w, b })
    }

    /// Layer normalisation over the last axis (no affine parameters).
    pub fn layer_norm(&self, x: Var, eps: f32) -> Var {
        let v = layer_norm_forward(&self.nodes.borrow()[x.0].value, eps);
        self.push(v, Op::LayerNorm { x, eps })
    }

    /// Inverted dropout with keep-probability `1 - p`. Identity in inference
    /// graphs or when `p == 0`.
    pub fn dropout(&self, x: Var, p: f32, rng: &mut crate::rng::Prng) -> Var {
        if !self.training || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let shape = self.shape(x);
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        // every element is assigned below
        let mut mask = Tensor::uninit(shape);
        for m in mask.data_mut() {
            *m = if rng.chance(keep as f64) { scale } else { 0.0 };
        }
        let v = {
            let nodes = self.nodes.borrow();
            nodes[x.0].value.zip_broadcast(&mask, |a, b| a * b)
        };
        self.push(v, Op::Dropout { x, mask })
    }

    /// Mean binary cross-entropy with logits against fixed targets of the
    /// same shape. Numerically stable: never materialises `sigmoid(z)` inside
    /// a logarithm.
    pub fn bce_with_logits(&self, logits: Var, targets: &Tensor) -> Var {
        self.bce_impl(logits, targets, None)
    }

    /// Weighted binary cross-entropy with logits: each element's loss is
    /// multiplied by `weights` and the total is normalised by `sum(weights)`.
    /// A 0/1 mask implements the paper's 1-to-k sampled negative scoring.
    ///
    /// # Panics
    /// Panics if all weights are zero or shapes mismatch.
    pub fn bce_with_logits_weighted(&self, logits: Var, targets: &Tensor, weights: &Tensor) -> Var {
        self.bce_impl(logits, targets, Some(weights.clone()))
    }

    fn bce_impl(&self, logits: Var, targets: &Tensor, weights: Option<Tensor>) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let z = &nodes[logits.0].value;
            assert_eq!(z.shape(), targets.shape(), "bce target shape mismatch");
            if let Some(w) = &weights {
                assert_eq!(z.shape(), w.shape(), "bce weight shape mismatch");
            }
            let be = crate::backend::active();
            // elementwise loss, then a weighted (dot) or plain (sum) fold;
            // the scratch is fully overwritten, so a stale pooled buffer is fine
            let mut elem = crate::pool::alloc_uninit(z.numel());
            be.run3(z.data(), targets.data(), &mut elem, &|zs, ys, dst| {
                for ((o, &zi), &yi) in dst.iter_mut().zip(zs).zip(ys) {
                    *o = zi.max(0.0) - zi * yi + (-zi.abs()).exp().ln_1p();
                }
            });
            let (total, denom) = match &weights {
                Some(w) => (be.dot(&elem, w.data()), be.sum(w.data())),
                None => (be.sum(&elem), z.numel() as f32),
            };
            crate::pool::recycle(elem);
            assert!(denom > 0.0, "bce weights sum to zero");
            Tensor::scalar(total / denom)
        };
        self.push(
            v,
            self.op_if_recording(|| Op::BceWithLogits {
                logits,
                targets: targets.clone(),
                weights,
            }),
        )
    }

    // ----- backward ------------------------------------------------------------

    /// Reverse pass from scalar `loss`. Parameter gradients accumulate into
    /// `store`; other node gradients are retrievable via [`Graph::grad`].
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar node, or if the graph was built
    /// tape-free (see [`Graph::inference`]).
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert!(
            self.record,
            "backward on a tape-free inference graph; use Graph::new() (or \
             set CAME_INFER=0 / came_tensor::set_infer_tape_free(false))"
        );
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.0].value.numel(),
            1,
            "backward must start from a scalar loss"
        );
        // Reuse the grads storage across backward calls; Tensors dropped by
        // clear() park their buffers in the pool for this pass to reclaim.
        let mut grads = self.grads.borrow_mut();
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &nodes[i];
            match &node.op {
                Op::Input => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Param(pid) => {
                    store.grad_mut(*pid).add_assign(&g);
                }
                Op::Embedding { table, ids } => {
                    let d = node.value.shape().at(1);
                    let gt = store.grad_mut(*table);
                    for (row, &id) in ids.iter().enumerate() {
                        let dst = &mut gt.data_mut()[id as usize * d..(id as usize + 1) * d];
                        let src = &g.data()[row * d..(row + 1) * d];
                        for (a, b) in dst.iter_mut().zip(src) {
                            *a += b;
                        }
                    }
                }
                Op::ScatterSum { x, ids } => {
                    // gradient gathers back the scattered rows
                    let d = node.value.shape().at(1);
                    let mut gx = Tensor::zeros(nodes[x.0].value.shape());
                    for (row, &id) in ids.iter().enumerate() {
                        let src = &g.data()[id as usize * d..(id as usize + 1) * d];
                        gx.data_mut()[row * d..(row + 1) * d].copy_from_slice(src);
                    }
                    accum(&mut grads, *x, gx);
                }
                Op::Gather { x, ids } => {
                    let d = node.value.shape().at(1);
                    let mut gx = Tensor::zeros(nodes[x.0].value.shape());
                    for (row, &id) in ids.iter().enumerate() {
                        let dst = &mut gx.data_mut()[id as usize * d..(id as usize + 1) * d];
                        let src = &g.data()[row * d..(row + 1) * d];
                        for (a, b) in dst.iter_mut().zip(src) {
                            *a += b;
                        }
                    }
                    accum(&mut grads, *x, gx);
                }
                Op::Add(a, b) => {
                    accum(&mut grads, *a, g.sum_to(nodes[a.0].value.shape()));
                    accum(&mut grads, *b, g.sum_to(nodes[b.0].value.shape()));
                }
                Op::Sub(a, b) => {
                    accum(&mut grads, *a, g.sum_to(nodes[a.0].value.shape()));
                    accum(
                        &mut grads,
                        *b,
                        g.map(|v| -v).sum_to(nodes[b.0].value.shape()),
                    );
                }
                Op::Mul(a, b) => {
                    let ga = g.zip_broadcast(&nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip_broadcast(&nodes[a.0].value, |x, y| x * y);
                    accum(&mut grads, *a, ga.sum_to(nodes[a.0].value.shape()));
                    accum(&mut grads, *b, gb.sum_to(nodes[b.0].value.shape()));
                }
                Op::Div(a, b) => {
                    let bv = &nodes[b.0].value;
                    let ga = g.zip_broadcast(bv, |x, y| x / y);
                    // db = -g * a / b^2
                    let gb = g
                        .zip_broadcast(&nodes[a.0].value, |x, y| x * y)
                        .zip_broadcast(bv, |x, y| -x / (y * y));
                    accum(&mut grads, *a, ga.sum_to(nodes[a.0].value.shape()));
                    accum(&mut grads, *b, gb.sum_to(nodes[b.0].value.shape()));
                }
                Op::Matmul(a, b) => {
                    let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
                    let (ga, gb) = matmul_backward(av, bv, &g);
                    accum(&mut grads, *a, ga);
                    accum(&mut grads, *b, gb);
                }
                Op::GemmBiasAct { x, w, b, act } => {
                    // activation backward via the saved post-activation value,
                    // then the plain matmul/bias backward on the pre-act grad
                    let y = &node.value;
                    let gz = match act {
                        Activation::Identity => g.clone(),
                        Activation::Sigmoid => g.zip_broadcast(y, |go, y| go * y * (1.0 - y)),
                        Activation::Tanh => g.zip_broadcast(y, |go, y| go * (1.0 - y * y)),
                        Activation::Relu => {
                            // y > 0 iff pre-activation > 0
                            g.zip_broadcast(y, |go, y| if y > 0.0 { go } else { 0.0 })
                        }
                    };
                    if let Some(bv) = b {
                        accum(&mut grads, *bv, gz.sum_to(nodes[bv.0].value.shape()));
                    }
                    let (gx, gw) = matmul_backward(&nodes[x.0].value, &nodes[w.0].value, &gz);
                    accum(&mut grads, *x, gx);
                    accum(&mut grads, *w, gw);
                }
                Op::SoftmaxMatmul { scores, v, soft } => {
                    // identical to composed softmax(axis=2) + matmul backward,
                    // reading the softmax output from the saved scratch
                    let vv = &nodes[v.0].value;
                    let gv = soft.transpose(1, 2).matmul(&g);
                    let gsoft = g.matmul(&vv.transpose(1, 2));
                    let gy = gsoft.zip_broadcast(soft, |a, b| a * b);
                    let s = gy.sum_axis(2, true);
                    let gs = gsoft
                        .zip_broadcast(&s, |a, b| a - b)
                        .zip_broadcast(soft, |a, b| a * b);
                    accum(&mut grads, *scores, gs);
                    accum(&mut grads, *v, gv);
                }
                Op::OuterAttention { a, c, v, tau, soft } => {
                    let av = &nodes[a.0].value;
                    let cv = &nodes[c.0].value;
                    let vv = &nodes[v.0].value;
                    let (batch, m) = (av.shape().at(0), av.shape().at(1));
                    let k = cv.shape().at(1);
                    let n = vv.shape().at(2);
                    let mut ga = Tensor::zeros(av.shape());
                    let mut gc = Tensor::zeros(cv.shape());
                    let mut gv = Tensor::zeros(vv.shape());
                    let gtau = crate::backend::active().outer_attention_backward(
                        av.data(),
                        cv.data(),
                        vv.data(),
                        soft.data(),
                        g.data(),
                        nodes[tau.0].value.data()[0],
                        ga.data_mut(),
                        gc.data_mut(),
                        gv.data_mut(),
                        batch,
                        m,
                        k,
                        n,
                    );
                    accum(&mut grads, *a, ga);
                    accum(&mut grads, *c, gc);
                    accum(&mut grads, *v, gv);
                    accum(
                        &mut grads,
                        *tau,
                        Tensor::full(nodes[tau.0].value.shape(), gtau),
                    );
                }
                Op::Unary { x, kind } => {
                    let xv = &nodes[x.0].value;
                    let yv = &node.value;
                    let gx = match kind {
                        UnaryKind::Sigmoid => g.zip_broadcast(yv, |go, y| go * y * (1.0 - y)),
                        UnaryKind::Tanh => g.zip_broadcast(yv, |go, y| go * (1.0 - y * y)),
                        UnaryKind::Relu => {
                            g.zip_broadcast(xv, |go, x| if x > 0.0 { go } else { 0.0 })
                        }
                        UnaryKind::Exp => g.zip_broadcast(yv, |go, y| go * y),
                        UnaryKind::Ln => g.zip_broadcast(xv, |go, x| go / x),
                        UnaryKind::Sqrt => g.zip_broadcast(yv, |go, y| go * 0.5 / y),
                        UnaryKind::Abs => g.zip_broadcast(xv, |go, x| go * x.signum()),
                        UnaryKind::Neg => g.map(|v| -v),
                        UnaryKind::Square => g.zip_broadcast(xv, |go, x| go * 2.0 * x),
                        UnaryKind::Sin => g.zip_broadcast(xv, |go, x| go * x.cos()),
                        UnaryKind::Cos => g.zip_broadcast(xv, |go, x| -go * x.sin()),
                    };
                    accum(&mut grads, *x, gx);
                }
                Op::Affine { x, scale } => {
                    accum(&mut grads, *x, g.map(|v| v * scale));
                }
                Op::Softmax { x, axis } => {
                    // dx = y * (g - sum(g*y, axis))
                    let y = &node.value;
                    let gy = g.zip_broadcast(y, |a, b| a * b);
                    let s = gy.sum_axis(*axis, true);
                    let gx = g
                        .zip_broadcast(&s, |a, b| a - b)
                        .zip_broadcast(y, |a, b| a * b);
                    accum(&mut grads, *x, gx);
                }
                Op::SumAxis { x, axis, keepdim } => {
                    let xs = nodes[x.0].value.shape();
                    let gk = if *keepdim {
                        g.clone()
                    } else {
                        g.reshape(xs.reduce(*axis, true))
                    };
                    let gx = gk.zip_broadcast(&Tensor::zeros(xs), |a, _| a);
                    accum(&mut grads, *x, gx);
                }
                Op::SumAll { x } => {
                    let gx = Tensor::full(nodes[x.0].value.shape(), g.item());
                    accum(&mut grads, *x, gx);
                }
                Op::MeanAll { x } => {
                    let n = nodes[x.0].value.numel() as f32;
                    let gx = Tensor::full(nodes[x.0].value.shape(), g.item() / n);
                    accum(&mut grads, *x, gx);
                }
                Op::Reshape { x } => {
                    accum(&mut grads, *x, g.reshape(nodes[x.0].value.shape()));
                }
                Op::Transpose { x, a, b } => {
                    accum(&mut grads, *x, g.transpose(*a, *b));
                }
                Op::Concat { xs, axis } => {
                    let mut start = 0;
                    for part in xs {
                        let len = nodes[part.0].value.shape().at(*axis);
                        accum(&mut grads, *part, g.narrow(*axis, start, len));
                        start += len;
                    }
                }
                Op::Narrow { x, axis, start } => {
                    let mut gx = Tensor::zeros(nodes[x.0].value.shape());
                    gx.narrow_add_assign(*axis, *start, &g);
                    accum(&mut grads, *x, gx);
                }
                Op::Conv2d { x, w, b } => {
                    let (gx, gw, gb) =
                        conv::conv2d_backward(&nodes[x.0].value, &nodes[w.0].value, &g);
                    accum(&mut grads, *x, gx);
                    accum(&mut grads, *w, gw);
                    if let Some(bv) = b {
                        accum(&mut grads, *bv, gb);
                    }
                }
                Op::LayerNorm { x, eps } => {
                    let gx = layer_norm_backward(&nodes[x.0].value, &g, *eps);
                    accum(&mut grads, *x, gx);
                }
                Op::Dropout { x, mask } => {
                    accum(&mut grads, *x, g.zip_broadcast(mask, |a, b| a * b));
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    weights,
                } => {
                    let z = &nodes[logits.0].value;
                    let denom = weights
                        .as_ref()
                        .map_or(z.numel() as f32, |w| w.data().iter().sum());
                    let scale = g.item() / denom;
                    let mut gz = z.zip_broadcast(targets, move |z, y| scale * (sigmoid(z) - y));
                    if let Some(w) = weights {
                        gz = gz.zip_broadcast(w, |a, b| a * b);
                    }
                    accum(&mut grads, *logits, gz);
                }
            }
        }
    }
}

fn accum(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(acc) => acc.add_assign(&g),
        slot => *slot = Some(g),
    }
}

/// Logistic sigmoid (numerically stable for large |x|).
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn matmul_backward(a: &Tensor, b: &Tensor, g: &Tensor) -> (Tensor, Tensor) {
    match (a.shape().ndim(), b.shape().ndim()) {
        (2, 2) => {
            let ga = g.matmul(&b.transpose(0, 1));
            let gb = a.transpose(0, 1).matmul(g);
            (ga, gb)
        }
        (3, 3) => {
            let ga = g.matmul(&b.transpose(1, 2));
            let gb = a.transpose(1, 2).matmul(g);
            (ga, gb)
        }
        (3, 2) => {
            // a: [B,m,k], b: [k,n], g: [B,m,n]
            let (bsz, m, k) = (a.shape().at(0), a.shape().at(1), a.shape().at(2));
            let n = b.shape().at(1);
            let ga = g.matmul(&b.transpose(0, 1)); // [B,m,n] x [n,k]
            let a2 = a.reshape(Shape::d2(bsz * m, k));
            let g2 = g.reshape(Shape::d2(bsz * m, n));
            let gb = a2.transpose(0, 1).matmul(&g2);
            (ga, gb)
        }
        _ => unreachable!("forward rejected these ranks"),
    }
}

fn layer_norm_forward(x: &Tensor, eps: f32) -> Tensor {
    let shape = x.shape();
    let d = shape.at(shape.ndim() - 1);
    let mut out = x.clone();
    crate::backend::active().layer_norm_lanes(out.data_mut(), d, eps);
    out
}

fn layer_norm_backward(x: &Tensor, g: &Tensor, eps: f32) -> Tensor {
    let shape = x.shape();
    let d = shape.at(shape.ndim() - 1);
    let mut out = Tensor::zeros(shape);
    crate::backend::active().layer_norm_backward_lanes(x.data(), g.data(), out.data_mut(), d, eps);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamStore;
    use crate::rng::Prng;

    /// Central-difference numeric gradient of `f` w.r.t. one input tensor.
    fn numeric_grad(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
        let mut g = Tensor::zeros(x.shape());
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    /// Generic gradient check: builds the graph twice, once for autograd and
    /// per-perturbation for numeric differentiation.
    fn grad_check(build: impl Fn(&Graph, Var) -> Var, x: Tensor, tol: f32, what: &str) {
        let g = Graph::new();
        let xv = g.input(x.clone());
        let y = build(&g, xv);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        let auto = g.grad(xv);
        let num = numeric_grad(
            |t| {
                let g2 = Graph::new();
                let xv2 = g2.input(t.clone());
                let y2 = build(&g2, xv2);
                g2.value(g2.sum_all(y2)).item()
            },
            &x,
            1e-2,
        );
        assert_close(&auto, &num, tol, what);
    }

    #[test]
    fn grad_sigmoid() {
        let mut rng = Prng::new(0);
        grad_check(
            |g, x| g.sigmoid(x),
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "sigmoid",
        );
    }

    #[test]
    fn grad_tanh_exp_sqrt_abs() {
        let mut rng = Prng::new(1);
        grad_check(
            |g, x| g.tanh(x),
            Tensor::randn(Shape::d1(6), 1.0, &mut rng),
            2e-2,
            "tanh",
        );
        grad_check(
            |g, x| g.exp(x),
            Tensor::randn(Shape::d1(6), 0.5, &mut rng),
            2e-2,
            "exp",
        );
        grad_check(
            |g, x| g.sqrt(x),
            Tensor::rand_uniform(Shape::d1(6), 0.5, 2.0, &mut rng),
            2e-2,
            "sqrt",
        );
        grad_check(
            |g, x| g.abs(x),
            Tensor::rand_uniform(Shape::d1(6), 0.5, 2.0, &mut rng),
            2e-2,
            "abs",
        );
    }

    #[test]
    fn grad_sin_cos() {
        let mut rng = Prng::new(20);
        grad_check(
            |g, x| g.sin(x),
            Tensor::randn(Shape::d1(8), 1.0, &mut rng),
            2e-2,
            "sin",
        );
        grad_check(
            |g, x| g.cos(x),
            Tensor::randn(Shape::d1(8), 1.0, &mut rng),
            2e-2,
            "cos",
        );
    }

    #[test]
    fn grad_matmul_2d() {
        let mut rng = Prng::new(2);
        let w = Tensor::randn(Shape::d2(4, 5), 1.0, &mut rng);
        let wc = w.clone();
        grad_check(
            move |g, x| {
                let wv = g.input(wc.clone());
                g.matmul(x, wv)
            },
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "matmul-left",
        );
        let a = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let av = g.input(a.clone());
                g.matmul(av, x)
            },
            w,
            2e-2,
            "matmul-right",
        );
    }

    #[test]
    fn grad_matmul_batched() {
        let mut rng = Prng::new(3);
        let b = Tensor::randn(Shape::d3(2, 4, 3), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let bv = g.input(b.clone());
                g.matmul(x, bv)
            },
            Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng),
            2e-2,
            "bmm-left",
        );
        let a = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let av = g.input(a.clone());
                g.matmul(av, x)
            },
            Tensor::randn(Shape::d3(2, 4, 3), 1.0, &mut rng),
            2e-2,
            "bmm-right",
        );
    }

    #[test]
    fn grad_matmul_broadcast_weight() {
        let mut rng = Prng::new(4);
        let w = Tensor::randn(Shape::d2(4, 5), 1.0, &mut rng);
        let wc = w.clone();
        grad_check(
            move |g, x| {
                let wv = g.input(wc.clone());
                g.matmul(x, wv)
            },
            Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng),
            2e-2,
            "bmm-shared-left",
        );
        let a = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let av = g.input(a.clone());
                g.matmul(av, x)
            },
            w,
            2e-2,
            "bmm-shared-right",
        );
    }

    #[test]
    fn grad_softmax() {
        let mut rng = Prng::new(5);
        let probe = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        let pc = probe.clone();
        grad_check(
            move |g, x| {
                let s = g.softmax(x, 1);
                let p = g.input(pc.clone());
                g.mul(s, p)
            },
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            3e-2,
            "softmax-rows",
        );
        let probe2 = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let s = g.softmax(x, 1);
                let p = g.input(probe2.clone());
                g.mul(s, p)
            },
            Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng),
            3e-2,
            "softmax-axis1-3d",
        );
    }

    #[test]
    fn grad_broadcast_ops() {
        let mut rng = Prng::new(6);
        let v = Tensor::randn(Shape::d1(4), 1.0, &mut rng);
        let vc = v.clone();
        grad_check(
            move |g, x| {
                let vv = g.input(vc.clone());
                g.mul(x, vv)
            },
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "mul-broadcast-big",
        );
        let a = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let av = g.input(a.clone());
                g.mul(av, x)
            },
            v,
            2e-2,
            "mul-broadcast-small",
        );
    }

    #[test]
    fn grad_div() {
        let mut rng = Prng::new(7);
        let b = Tensor::rand_uniform(Shape::d2(3, 4), 0.5, 2.0, &mut rng);
        let bc = b.clone();
        grad_check(
            move |g, x| {
                let bv = g.input(bc.clone());
                g.div(x, bv)
            },
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "div-num",
        );
        let a = Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let av = g.input(a.clone());
                g.div(av, x)
            },
            b,
            3e-2,
            "div-den",
        );
    }

    #[test]
    fn grad_structural_ops() {
        let mut rng = Prng::new(8);
        grad_check(
            |g, x| {
                let r = g.reshape(x, Shape::d2(2, 6));
                g.transpose(r, 0, 1)
            },
            Tensor::randn(Shape::d3(2, 2, 3), 1.0, &mut rng),
            2e-2,
            "reshape-transpose",
        );
        grad_check(
            |g, x| {
                let a = g.narrow(x, 1, 0, 2);
                let b = g.narrow(x, 1, 2, 2);
                g.concat(&[&[b, a][..]].concat(), 1)
            },
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "narrow-concat",
        );
    }

    #[test]
    fn grad_layer_norm() {
        let mut rng = Prng::new(9);
        let probe = Tensor::randn(Shape::d2(3, 8), 1.0, &mut rng);
        grad_check(
            move |g, x| {
                let y = g.layer_norm(x, 1e-5);
                let p = g.input(probe.clone());
                g.mul(y, p)
            },
            Tensor::randn(Shape::d2(3, 8), 1.0, &mut rng),
            5e-2,
            "layer-norm",
        );
    }

    #[test]
    fn grad_sum_ops() {
        let mut rng = Prng::new(10);
        grad_check(
            |g, x| g.sum_axis(x, 1, false),
            Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng),
            2e-2,
            "sum-axis",
        );
        grad_check(
            |g, x| g.mean_all(x),
            Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng),
            2e-2,
            "mean-all",
        );
    }

    #[test]
    fn grad_bce_with_logits() {
        let mut rng = Prng::new(11);
        let mut targets = Tensor::zeros(Shape::d2(3, 5));
        for t in targets.data_mut() {
            *t = if rng.chance(0.3) { 1.0 } else { 0.0 };
        }
        let x = Tensor::randn(Shape::d2(3, 5), 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.input(x.clone());
        let loss = g.bce_with_logits(xv, &targets);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        let auto = g.grad(xv);
        let tc = targets.clone();
        let num = numeric_grad(
            |t| {
                let g2 = Graph::new();
                let xv2 = g2.input(t.clone());
                g2.value(g2.bce_with_logits(xv2, &tc)).item()
            },
            &x,
            1e-2,
        );
        assert_close(&auto, &num, 2e-2, "bce");
    }

    #[test]
    fn bce_matches_naive_formula() {
        let g = Graph::new();
        let z = g.input(Tensor::from_slice(&[0.3, -1.2, 2.0, 0.0]));
        let y = Tensor::from_slice(&[1.0, 0.0, 1.0, 0.0]);
        let loss = g.value(g.bce_with_logits(z, &y)).item();
        let naive: f32 = [0.3f32, -1.2, 2.0, 0.0]
            .iter()
            .zip([1.0f32, 0.0, 1.0, 0.0])
            .map(|(&z, y)| {
                let p = sigmoid(z);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum::<f32>()
            / 4.0;
        assert!((loss - naive).abs() < 1e-5, "{loss} vs {naive}");
    }

    #[test]
    fn param_gradients_accumulate_in_store() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_slice(&[2.0, 3.0]));
        let g = Graph::new();
        let wv = g.param(&store, w);
        let y = g.mul(wv, wv); // y = w^2, dy/dw = 2w
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        assert_eq!(store.grad(w).data(), &[4.0, 6.0]);
    }

    #[test]
    fn embedding_gather_and_scatter() {
        let mut store = ParamStore::new();
        let table = store.add(
            "emb",
            Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        let g = Graph::new();
        let e = g.embedding(&store, table, &[2, 0, 2]);
        assert_eq!(g.value(e).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = g.sum_all(e);
        g.backward(loss, &mut store);
        // row 2 used twice, row 0 once, row 1 never
        assert_eq!(store.grad(table).data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_sum_forward_and_backward() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(
            Shape::d2(3, 2),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        let y = g.scatter_sum(x, &[1, 1, 0], 3);
        assert_eq!(g.value(y).data(), &[5.0, 6.0, 4.0, 6.0, 0.0, 0.0]);
        // weight row 0 of output by 10, others by 1 => grads gather weights
        let probe = g.input(Tensor::from_vec(
            Shape::d2(3, 2),
            vec![10.0, 10.0, 1.0, 1.0, 1.0, 1.0],
        ));
        let loss = g.sum_all(g.mul(y, probe));
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        assert_eq!(g.grad(x).data(), &[1.0, 1.0, 1.0, 1.0, 10.0, 10.0]);
    }

    #[test]
    fn gather_forward_and_backward() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(
            Shape::d2(3, 2),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        let y = g.gather(x, &[2, 0, 2]);
        assert_eq!(g.value(y).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        assert_eq!(g.grad(x).data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn dropout_identity_at_inference() {
        let g = Graph::inference();
        let x = g.input(Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let mut rng = Prng::new(0);
        let y = g.dropout(x, 0.5, &mut rng);
        assert_eq!(g.value(y).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let g = Graph::new();
        let x = g.input(Tensor::ones(Shape::d1(10_000)));
        let mut rng = Prng::new(1);
        let y = g.dropout(x, 0.3, &mut rng);
        let m = g.value(y).mean();
        assert!((m - 1.0).abs() < 0.05, "dropout mean {m}");
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // z = x*x + x  => dz/dx = 2x + 1
        let g = Graph::new();
        let x = g.input(Tensor::from_slice(&[3.0]));
        let sq = g.mul(x, x);
        let z = g.add(sq, x);
        let loss = g.sum_all(z);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        assert_eq!(g.grad(x).data(), &[7.0]);
    }

    #[test]
    fn grad_layer_norm_shift_invariant_zero() {
        // LayerNorm output is invariant to adding a constant, so the gradient
        // of sum(ln(x)) w.r.t. a constant shift must be ~0 in each lane.
        let mut rng = Prng::new(12);
        let x = Tensor::randn(Shape::d2(2, 6), 1.0, &mut rng);
        let g = Graph::new();
        let xv = g.input(x);
        let y = g.layer_norm(xv, 1e-5);
        let loss = g.sum_all(y);
        let mut store = ParamStore::new();
        g.backward(loss, &mut store);
        let gx = g.grad(xv);
        for lane in gx.data().chunks(6) {
            let s: f32 = lane.iter().sum();
            assert!(s.abs() < 1e-4, "lane grad sum {s}");
        }
    }
}
