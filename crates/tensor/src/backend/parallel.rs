//! Cache-blocked, multithreaded backend plus the scoped-thread work-stealing
//! machinery the SIMD backend reuses for its own fan-out.
//!
//! GEMM is register-tiled (4 output rows per pass) with the k loop blocked at
//! [`KC`]; within each output element the accumulation order is identical to
//! the scalar kernel, so GEMM results match the reference bit-for-bit.
//! Blocked reductions (`sum`/`dot`) use the fixed [`SUM_BLOCK`] grouping so
//! they are deterministic for any thread count and bit-equal to the scalar
//! backend.

use super::{
    adam_chunk, bias_act_rows, check_q8_shapes, dot_block, gemm_q8_strip,
    layer_norm_backward_one_lane, layer_norm_one_lane, outer_attention_backward_block,
    outer_attention_block, outer_attention_fwd_block, outer_attention_fwd_col_block,
    softmax_matmul_block, softmax_matmul_fwd_block, softmax_one_lane, sum_block, Activation,
    AdamHp, Backend, BackendKind, ScalarBackend, SUM_BLOCK,
};
use std::sync::{Mutex, OnceLock};

/// Minimum elements before elementwise work is fanned out to threads.
pub(crate) const PAR_MIN_ELEMS: usize = 16 * 1024;
/// Minimum multiply-adds before a GEMM is fanned out to threads.
pub(crate) const PAR_MIN_FLOPS: usize = 64 * 1024;
/// Rows per GEMM work-stealing panel.
pub(crate) const PANEL_ROWS: usize = 32;
/// k-dimension cache block: `KC * n` floats of `b` stay hot in L1/L2 while a
/// panel of `a` rows streams past.
const KC: usize = 256;
/// Elementwise chunk grain (floats) handed to each stolen task.
const GRAIN: usize = 32 * 1024;
/// Minimum elements before the *lane* kernels (softmax / layer-norm) fan
/// out. These are memory-bound few-pass kernels, so the scoped-thread spawn
/// cost is only recovered on much larger buffers than the generic
/// elementwise threshold — 512×512 buffers regressed to 0.935x under the old
/// [`PAR_MIN_ELEMS`] guard.
pub(crate) const PAR_MIN_LANE_ELEMS: usize = 512 * 1024;

/// Threads to use: `CAME_THREADS` override, else `available_parallelism`.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(s) = std::env::var("CAME_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Work-stealing task pool: spawns scoped workers that pull tasks off a
/// shared queue until it drains. Falls back to a plain loop for one thread or
/// a single task. Task order of *execution* is nondeterministic but each task
/// owns its output exclusively, so results are deterministic.
pub(crate) fn steal_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    let nt = num_threads().min(tasks.len());
    if nt <= 1 {
        for t in tasks {
            f(t);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..nt {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                match next {
                    Some(t) => f(t),
                    None => break,
                }
            });
        }
    });
}

/// Run `f` over `tasks` through the *active* backend's execution policy:
/// sequential under [`ScalarBackend`], work-stealing threads under the
/// parallel and SIMD backends. This is the hook the upper layers (filtered
/// ranking, per-query scoring) use to shard coarse-grained work without
/// depending on `std::thread` details.
pub fn run_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    match super::kind() {
        BackendKind::Scalar => {
            for t in tasks {
                f(t);
            }
        }
        BackendKind::Parallel | BackendKind::Simd => steal_tasks(tasks, f),
    }
}

/// [`run_tasks`] with a min-work guard: stays sequential unless the total
/// work (caller-estimated, in elements touched) clears the same crossover
/// threshold the lane kernels use. Spawning scoped threads costs tens of
/// microseconds; batches of small tasks (e.g. filtered ranking over a few
/// hundred candidates per triple) regressed to 0.935x when fanned out
/// unconditionally.
pub fn run_tasks_min_work<T: Send>(tasks: Vec<T>, total_work: usize, f: impl Fn(T) + Sync) {
    if total_work < PAR_MIN_LANE_ELEMS {
        for t in tasks {
            f(t);
        }
        return;
    }
    run_tasks(tasks, f);
}

/// Register-tiled accumulating GEMM block: processes 4 output rows at a time
/// (4 independent accumulator streams, `b` row traffic quartered) with the
/// k loop blocked at [`KC`]. The per-element accumulation order over `k` is
/// ascending — identical to the scalar kernel — so results are bitwise equal
/// on finite inputs.
pub(crate) fn gemm_tile(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let rows = &mut out[i * n..(i + 4) * n];
            let (r0, rest) = rows.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            let (a0, a1, a2) = (&a[i * k..], &a[(i + 1) * k..], &a[(i + 2) * k..]);
            let a3 = &a[(i + 3) * k..];
            for p in kb..kend {
                let bro = &b[p * n..(p + 1) * n];
                let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                for j in 0..n {
                    let bv = bro[j];
                    r0[j] += x0 * bv;
                    r1[j] += x1 * bv;
                    r2[j] += x2 * bv;
                    r3[j] += x3 * bv;
                }
            }
            i += 4;
        }
        while i < m {
            let row = &mut out[i * n..(i + 1) * n];
            for p in kb..kend {
                let x = a[i * k + p];
                let bro = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(bro) {
                    *o += x * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

/// Min-work guard for the rowwise lane kernels: require both a large buffer
/// and enough rows to give every thread at least two, otherwise fall through
/// to the scalar loop.
pub(crate) fn lane_work_parallel(len: usize, lane: usize) -> bool {
    len >= PAR_MIN_LANE_ELEMS && num_threads() > 1 && len / lane.max(1) >= 2 * num_threads()
}

/// Split equal-length buffers into lockstep chunk tuples of at most `grain`
/// elements, aligned to `lane` boundaries when `lane > 0`.
pub(crate) fn grain_for(total: usize, lane: usize) -> usize {
    let lane = lane.max(1);
    let g = (GRAIN / lane).max(1) * lane;
    g.min(total.max(1))
}

/// Output-strip width for the fused q8 GEMM work-stealing decomposition:
/// roughly [`GRAIN`] multiply-adds per stolen task, never narrower than a
/// GEMM panel. Shared with the SIMD backend so both fan out identically.
pub(crate) fn q8_strip_for(k: usize) -> usize {
    (GRAIN / k.max(1)).max(PANEL_ROWS)
}

/// Cache-blocked multithreaded backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelBackend;

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m * n == 0 || k == 0 {
            return; // nothing to accumulate
        }
        if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 || m <= PANEL_ROWS {
            gemm_tile(a, b, out, m, k, n);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(PANEL_ROWS * n).enumerate().collect();
        steal_tasks(tasks, |(pi, panel)| {
            let i0 = pi * PANEL_ROWS;
            let rows = panel.len() / n;
            gemm_tile(&a[i0 * k..(i0 + rows) * k], b, panel, rows, k, n);
        });
    }

    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch == 0 || m * n == 0 || k == 0 {
            return;
        }
        if batch * m * n * k < PAR_MIN_FLOPS || num_threads() == 1 {
            for i in 0..batch {
                gemm_tile(
                    &a[i * m * k..(i + 1) * m * k],
                    &b[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, panel)| {
            gemm_tile(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                panel,
                m,
                k,
                n,
            );
        });
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        if lane == 0 || data.is_empty() {
            return;
        }
        if !lane_work_parallel(data.len(), lane) {
            for l in data.chunks_mut(lane) {
                softmax_one_lane(l);
            }
            return;
        }
        let g = grain_for(data.len(), lane);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            for l in chunk.chunks_mut(lane) {
                softmax_one_lane(l);
            }
        });
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        if lane == 0 || data.is_empty() {
            return;
        }
        if !lane_work_parallel(data.len(), lane) {
            for l in data.chunks_mut(lane) {
                layer_norm_one_lane(l, eps);
            }
            return;
        }
        let g = grain_for(data.len(), lane);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            for l in chunk.chunks_mut(lane) {
                layer_norm_one_lane(l, eps);
            }
        });
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        if lane == 0 || x.is_empty() {
            return;
        }
        let run = |xs: &[f32], gs: &[f32], os: &mut [f32]| {
            for ((xl, gl), ol) in xs
                .chunks(lane)
                .zip(gs.chunks(lane))
                .zip(os.chunks_mut(lane))
            {
                layer_norm_backward_one_lane(xl, gl, ol, eps);
            }
        };
        if !lane_work_parallel(x.len(), lane) {
            run(x, g, out);
            return;
        }
        let gr = grain_for(x.len(), lane);
        let tasks: Vec<((&[f32], &[f32]), &mut [f32])> = x
            .chunks(gr)
            .zip(g.chunks(gr))
            .zip(out.chunks_mut(gr))
            .collect();
        steal_tasks(tasks, |((xs, gs), os)| run(xs, gs, os));
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        if data.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(data);
            return;
        }
        let g = grain_for(data.len(), 1);
        steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
            body(chunk)
        });
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        debug_assert_eq!(src.len(), dst.len());
        if src.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(src, dst);
            return;
        }
        let g = grain_for(src.len(), 1);
        let tasks: Vec<(&[f32], &mut [f32])> = src.chunks(g).zip(dst.chunks_mut(g)).collect();
        steal_tasks(tasks, |(s, d)| body(s, d));
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        debug_assert_eq!(a.len(), dst.len());
        debug_assert_eq!(b.len(), dst.len());
        if a.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            body(a, b, dst);
            return;
        }
        let g = grain_for(a.len(), 1);
        let tasks: Vec<((&[f32], &[f32]), &mut [f32])> = a
            .chunks(g)
            .zip(b.chunks(g))
            .zip(dst.chunks_mut(g))
            .collect();
        steal_tasks(tasks, |((x, y), d)| body(x, y, d));
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            // fixed-block fold even on one thread: result must not depend on
            // where the size threshold lands
            return xs.chunks(SUM_BLOCK).map(sum_block).sum();
        }
        let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
        let tasks: Vec<(&[f32], &mut f32)> =
            xs.chunks(SUM_BLOCK).zip(partials.iter_mut()).collect();
        steal_tasks(tasks, |(c, slot)| *slot = sum_block(c));
        partials.iter().sum()
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        debug_assert_eq!(xs.len(), ys.len());
        if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            return xs
                .chunks(SUM_BLOCK)
                .zip(ys.chunks(SUM_BLOCK))
                .map(|(a, b)| dot_block(a, b))
                .sum();
        }
        let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
        let tasks: Vec<((&[f32], &[f32]), &mut f32)> = xs
            .chunks(SUM_BLOCK)
            .zip(ys.chunks(SUM_BLOCK))
            .zip(partials.iter_mut())
            .collect();
        steal_tasks(tasks, |((a, b), slot)| *slot = dot_block(a, b));
        partials.iter().sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_q8_f32(
        &self,
        a: &[f32],
        a_sums: &[f32],
        codes: &[u8],
        scales: &[f32],
        mins: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check_q8_shapes(a, a_sums, codes, scales, mins, out, m, k, n);
        if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                gemm_q8_strip(arow, a_sums[i], codes, scales, mins, orow, k);
            }
            return;
        }
        // One task per (query row × candidate strip): each output element
        // still consumes its full k extent in the shared scalar order, so the
        // decomposition cannot change any bit of the result.
        let strip = q8_strip_for(k);
        let tasks: Vec<(usize, usize, &mut [f32])> = out
            .chunks_mut(n)
            .enumerate()
            .flat_map(|(i, orow)| {
                orow.chunks_mut(strip)
                    .enumerate()
                    .map(move |(s, oseg)| (i, s * strip, oseg))
            })
            .collect();
        steal_tasks(tasks, |(i, j0, oseg)| {
            let arow = &a[i * k..(i + 1) * k];
            let w = oseg.len();
            gemm_q8_strip(
                arow,
                a_sums[i],
                &codes[j0 * k..(j0 + w) * k],
                &scales[j0..j0 + w],
                &mins[j0..j0 + w],
                oseg,
                k,
            );
        });
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        if x.len() < PAR_MIN_ELEMS || num_threads() == 1 {
            adam_chunk(x, g, m, v, hp);
            return;
        }
        let gr = grain_for(x.len(), 1);
        let tasks: Vec<(((&mut [f32], &[f32]), &mut [f32]), &mut [f32])> = x
            .chunks_mut(gr)
            .zip(g.chunks(gr))
            .zip(m.chunks_mut(gr))
            .zip(v.chunks_mut(gr))
            .collect();
        steal_tasks(tasks, |(((xs, gs), ms), vs)| adam_chunk(xs, gs, ms, vs, hp));
    }

    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        if m * n == 0 {
            return;
        }
        if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 || m <= PANEL_ROWS {
            gemm_tile(a, b, out, m, k, n);
            bias_act_rows(out, bias, n, act);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(PANEL_ROWS * n).enumerate().collect();
        steal_tasks(tasks, |(pi, panel)| {
            let i0 = pi * PANEL_ROWS;
            let rows = panel.len() / n;
            gemm_tile(&a[i0 * k..(i0 + rows) * k], b, panel, rows, k, n);
            // epilogue while the panel is still cache-hot
            bias_act_rows(panel, bias, n, act);
        });
    }

    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        let seq = |soft: &mut [f32], out: &mut [f32]| {
            for i in 0..batch {
                softmax_matmul_block(
                    &scores[i * m * k..(i + 1) * m * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &mut soft[i * m * k..(i + 1) * m * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        };
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            seq(soft, out);
            return;
        }
        let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
            .chunks_mut(m * k)
            .enumerate()
            .zip(out.chunks_mut(m * n))
            .collect();
        steal_tasks(tasks, |((i, s), o)| {
            softmax_matmul_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                s,
                o,
                m,
                k,
                n,
            );
        });
    }

    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            for i in 0..batch {
                outer_attention_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k * n..(i + 1) * k * n],
                    tau,
                    &mut soft[i * m * k..(i + 1) * m * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            return;
        }
        let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
            .chunks_mut(m * k)
            .enumerate()
            .zip(out.chunks_mut(m * n))
            .collect();
        steal_tasks(tasks, |((i, s), o)| {
            outer_attention_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                s,
                o,
                m,
                k,
                n,
            );
        });
    }

    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            let mut row = crate::pool::alloc_uninit(k);
            for i in 0..batch {
                softmax_matmul_fwd_block(
                    &scores[i * m * k..(i + 1) * m * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &mut row,
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            crate::pool::recycle(row);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, o)| {
            let mut row = crate::pool::alloc_uninit(k);
            softmax_matmul_fwd_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut row,
                o,
                m,
                k,
                n,
            );
            crate::pool::recycle(row);
        });
    }

    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1 {
            Backend::outer_attention_fwd(&ScalarBackend, a, c, v, tau, out, batch, m, k, n);
            return;
        }
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
        steal_tasks(tasks, |(i, o)| {
            if n == 1 {
                let mut u = crate::pool::alloc_uninit(m * k);
                let mut lanes = crate::pool::alloc_uninit(3 * m);
                outer_attention_fwd_col_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k..(i + 1) * k],
                    tau,
                    &mut u,
                    &mut lanes,
                    o,
                    m,
                    k,
                );
                crate::pool::recycle(lanes);
                crate::pool::recycle(u);
                return;
            }
            let mut row = crate::pool::alloc_uninit(k);
            outer_attention_fwd_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut row,
                o,
                m,
                k,
                n,
            );
            crate::pool::recycle(row);
        });
    }

    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        if batch * m * k == 0 {
            return 0.0;
        }
        let seq = batch == 1 || batch * m * k * (n + 2) < PAR_MIN_FLOPS || num_threads() == 1;
        if seq {
            let mut scratch = crate::pool::alloc_uninit(k);
            let mut gtau = 0.0f32;
            for i in 0..batch {
                gtau += outer_attention_backward_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k * n..(i + 1) * k * n],
                    &soft[i * m * k..(i + 1) * m * k],
                    &gout[i * m * n..(i + 1) * m * n],
                    tau,
                    &mut ga[i * m..(i + 1) * m],
                    &mut gc[i * k..(i + 1) * k],
                    &mut gv[i * k * n..(i + 1) * k * n],
                    &mut scratch,
                    m,
                    k,
                    n,
                );
            }
            crate::pool::recycle(scratch);
            return gtau;
        }
        // per-batch gradient slices are disjoint; τ partials land in
        // per-entry slots so the final fold is deterministic
        let mut gtau_parts = vec![0.0f32; batch];
        let tasks: Vec<((((usize, &mut [f32]), &mut [f32]), &mut [f32]), &mut f32)> = ga
            .chunks_mut(m)
            .enumerate()
            .zip(gc.chunks_mut(k))
            .zip(gv.chunks_mut(k * n))
            .zip(gtau_parts.iter_mut())
            .collect();
        steal_tasks(tasks, |((((i, ga_i), gc_i), gv_i), slot)| {
            let mut scratch = crate::pool::alloc_uninit(k);
            *slot = outer_attention_backward_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                &soft[i * m * k..(i + 1) * m * k],
                &gout[i * m * n..(i + 1) * m * n],
                tau,
                ga_i,
                gc_i,
                gv_i,
                &mut scratch,
                m,
                k,
                n,
            );
            crate::pool::recycle(scratch);
        });
        gtau_parts.iter().sum()
    }
}
