//! x86_64 vector kernels: one generic implementation per kernel,
//! monomorphised over an [`Isa`] (AVX2+FMA with 8-float lanes, SSE2 with 4),
//! then wrapped in `#[target_feature]` entry points per ISA so the compiler
//! may emit the wide instructions while the crate itself stays buildable for
//! any x86_64 baseline.
//!
//! # Safety argument
//!
//! Every `unsafe` in this module is one of three shapes:
//!
//! 1. **Intrinsic calls.** All `core::arch` intrinsics used here are safe on
//!    any CPU that *has* the instruction; the only precondition is feature
//!    availability. The entry points are only reachable through
//!    [`super::level`], which gates them behind `is_x86_feature_detected!`,
//!    so the precondition holds on every path.
//! 2. **Raw slice pointers.** Kernels walk `as_ptr()`/`as_mut_ptr()` with
//!    manual indices. Every loop is bounded by `i + W <= len` (vector body)
//!    or `i < len` (scalar tail) against the *slice's own* length, checked
//!    `debug_assert!`s tie multi-slice kernels' lengths together, and all
//!    loads/stores are the unaligned variants, so no access can leave the
//!    allocation and no alignment precondition exists.
//! 3. **`#[target_feature]` entry wrappers.** Declared `unsafe fn`; callers
//!    (the dispatch layer in `simd/mod.rs`) discharge the obligation by
//!    checking [`super::level`] first.
//!
//! Aligned loads (`loada`) are used only on the GEMM's packed B panels,
//! whose backing store is a 64-byte-aligned [`crate::pool::AlignedBuf`] and
//! whose row stride (`2·W` floats = 64 bytes for AVX2, 32 for SSE2) keeps
//! every panel row on an alignment boundary.
//!
//! # Parity
//!
//! The vector `exp` ([`vexp`]) performs the *same* operation sequence as the
//! scalar [`crate::tensor::fast_exp_lane`] — multiply/add polynomial (never
//! FMA, which would fuse roundings), truncation-based floor, `(i+127)<<23`
//! ldexp, select-based saturation — so it is bit-identical per element for
//! every finite input, and NaN propagates through the clamp (NaN is the
//! second operand of the min/max chain, which x86 min/max returns). Only
//! reduction *groupings* differ from the scalar backend (striped vector
//! accumulators inside a lane or [`SUM_BLOCK`]), which is covered by the
//! 1e-5 parity tolerance and stated in the backend summation contract.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::backend::{AdamHp, SUM_BLOCK};
use crate::tensor::fast_exp_lane;
use core::arch::x86_64::*;

/// One vector instruction set: the minimal op surface the generic kernels
/// need. All methods are `unsafe fn` (feature precondition) and
/// `#[inline(always)]` so they fold into the `#[target_feature]` wrappers.
pub(crate) trait Isa: Copy {
    /// Float vector register type.
    type V: Copy;
    /// Integer vector register type (same width).
    type VI: Copy;
    /// Lanes per vector.
    const W: usize;

    unsafe fn zero() -> Self::V;
    unsafe fn splat(x: f32) -> Self::V;
    unsafe fn loadu(p: *const f32) -> Self::V;
    /// Aligned load: `p` must be aligned to the vector width. Only used on
    /// packed GEMM panels backed by [`crate::pool::AlignedBuf`].
    unsafe fn loada(p: *const f32) -> Self::V;
    unsafe fn storeu(p: *mut f32, v: Self::V);
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn sub(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn div(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn sqrt(a: Self::V) -> Self::V;
    /// `a*b + c`. A true fused multiply-add on AVX2+FMA, `mul`+`add` on SSE2.
    /// Never used where bit-compatibility with a scalar kernel is required.
    unsafe fn fmadd(a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// x86 `maxps` semantics: returns the second operand when either is NaN.
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
    /// x86 `minps` semantics: returns the second operand when either is NaN.
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V;
    /// All-ones mask where `a > b` (ordered: NaN compares false).
    unsafe fn cmp_gt(a: Self::V, b: Self::V) -> Self::V;
    /// Per-lane `mask ? a : b`.
    unsafe fn select(mask: Self::V, a: Self::V, b: Self::V) -> Self::V;
    /// Truncating float→int conversion (`cvttps`).
    unsafe fn cvtt(v: Self::V) -> Self::VI;
    /// Int→float conversion.
    unsafe fn itof(v: Self::VI) -> Self::V;
    unsafe fn addi(a: Self::VI, b: Self::VI) -> Self::VI;
    unsafe fn splati(x: i32) -> Self::VI;
    /// Shift each 32-bit lane left by 23 (exponent-field ldexp trick).
    unsafe fn sll23(v: Self::VI) -> Self::VI;
    /// Bit-cast int vector → float vector.
    unsafe fn ibits(v: Self::VI) -> Self::V;
    /// Bit-cast float vector → int vector.
    unsafe fn fbits(v: Self::V) -> Self::VI;
    /// Horizontal sum (fixed shuffle tree — deterministic).
    unsafe fn hsum(v: Self::V) -> f32;
    /// Horizontal max (fixed shuffle tree — deterministic).
    unsafe fn hmax(v: Self::V) -> f32;
    /// Load `W` unsigned byte codes from `p` and widen them to a float
    /// vector (exact: every u8 value is representable in f32). `p` must have
    /// `W` readable bytes; no alignment requirement.
    unsafe fn loadu8(p: *const u8) -> Self::V;
}

/// AVX2 + FMA: 8-float lanes.
#[derive(Clone, Copy)]
pub(crate) struct Avx2;

impl Isa for Avx2 {
    type V = __m256;
    type VI = __m256i;
    const W: usize = 8;

    #[inline(always)]
    unsafe fn zero() -> __m256 {
        _mm256_setzero_ps()
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> __m256 {
        _mm256_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> __m256 {
        _mm256_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn loada(p: *const f32) -> __m256 {
        _mm256_load_ps(p)
    }
    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: __m256) {
        _mm256_storeu_ps(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: __m256, b: __m256) -> __m256 {
        _mm256_add_ps(a, b)
    }
    #[inline(always)]
    unsafe fn sub(a: __m256, b: __m256) -> __m256 {
        _mm256_sub_ps(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: __m256, b: __m256) -> __m256 {
        _mm256_mul_ps(a, b)
    }
    #[inline(always)]
    unsafe fn div(a: __m256, b: __m256) -> __m256 {
        _mm256_div_ps(a, b)
    }
    #[inline(always)]
    unsafe fn sqrt(a: __m256) -> __m256 {
        _mm256_sqrt_ps(a)
    }
    #[inline(always)]
    unsafe fn fmadd(a: __m256, b: __m256, c: __m256) -> __m256 {
        _mm256_fmadd_ps(a, b, c)
    }
    #[inline(always)]
    unsafe fn max(a: __m256, b: __m256) -> __m256 {
        _mm256_max_ps(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m256, b: __m256) -> __m256 {
        _mm256_min_ps(a, b)
    }
    #[inline(always)]
    unsafe fn cmp_gt(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)
    }
    #[inline(always)]
    unsafe fn select(mask: __m256, a: __m256, b: __m256) -> __m256 {
        _mm256_blendv_ps(b, a, mask)
    }
    #[inline(always)]
    unsafe fn cvtt(v: __m256) -> __m256i {
        _mm256_cvttps_epi32(v)
    }
    #[inline(always)]
    unsafe fn itof(v: __m256i) -> __m256 {
        _mm256_cvtepi32_ps(v)
    }
    #[inline(always)]
    unsafe fn addi(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn splati(x: i32) -> __m256i {
        _mm256_set1_epi32(x)
    }
    #[inline(always)]
    unsafe fn sll23(v: __m256i) -> __m256i {
        _mm256_slli_epi32::<23>(v)
    }
    #[inline(always)]
    unsafe fn ibits(v: __m256i) -> __m256 {
        _mm256_castsi256_ps(v)
    }
    #[inline(always)]
    unsafe fn fbits(v: __m256) -> __m256i {
        _mm256_castps_si256(v)
    }
    #[inline(always)]
    unsafe fn hsum(v: __m256) -> f32 {
        let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(s)
    }
    #[inline(always)]
    unsafe fn hmax(v: __m256) -> f32 {
        let s = _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(s)
    }
    #[inline(always)]
    unsafe fn loadu8(p: *const u8) -> __m256 {
        // 8 bytes → 8 u32 lanes → 8 f32 lanes
        let bytes = _mm_loadl_epi64(p as *const __m128i);
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes))
    }
}

/// SSE2 (x86_64 baseline): 4-float lanes, no FMA, select via bit ops.
#[derive(Clone, Copy)]
pub(crate) struct Sse2;

impl Isa for Sse2 {
    type V = __m128;
    type VI = __m128i;
    const W: usize = 4;

    #[inline(always)]
    unsafe fn zero() -> __m128 {
        _mm_setzero_ps()
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> __m128 {
        _mm_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const f32) -> __m128 {
        _mm_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn loada(p: *const f32) -> __m128 {
        _mm_load_ps(p)
    }
    #[inline(always)]
    unsafe fn storeu(p: *mut f32, v: __m128) {
        _mm_storeu_ps(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: __m128, b: __m128) -> __m128 {
        _mm_add_ps(a, b)
    }
    #[inline(always)]
    unsafe fn sub(a: __m128, b: __m128) -> __m128 {
        _mm_sub_ps(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: __m128, b: __m128) -> __m128 {
        _mm_mul_ps(a, b)
    }
    #[inline(always)]
    unsafe fn div(a: __m128, b: __m128) -> __m128 {
        _mm_div_ps(a, b)
    }
    #[inline(always)]
    unsafe fn sqrt(a: __m128) -> __m128 {
        _mm_sqrt_ps(a)
    }
    #[inline(always)]
    unsafe fn fmadd(a: __m128, b: __m128, c: __m128) -> __m128 {
        _mm_add_ps(_mm_mul_ps(a, b), c)
    }
    #[inline(always)]
    unsafe fn max(a: __m128, b: __m128) -> __m128 {
        _mm_max_ps(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m128, b: __m128) -> __m128 {
        _mm_min_ps(a, b)
    }
    #[inline(always)]
    unsafe fn cmp_gt(a: __m128, b: __m128) -> __m128 {
        _mm_cmpgt_ps(a, b)
    }
    #[inline(always)]
    unsafe fn select(mask: __m128, a: __m128, b: __m128) -> __m128 {
        _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b))
    }
    #[inline(always)]
    unsafe fn cvtt(v: __m128) -> __m128i {
        _mm_cvttps_epi32(v)
    }
    #[inline(always)]
    unsafe fn itof(v: __m128i) -> __m128 {
        _mm_cvtepi32_ps(v)
    }
    #[inline(always)]
    unsafe fn addi(a: __m128i, b: __m128i) -> __m128i {
        _mm_add_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn splati(x: i32) -> __m128i {
        _mm_set1_epi32(x)
    }
    #[inline(always)]
    unsafe fn sll23(v: __m128i) -> __m128i {
        _mm_slli_epi32::<23>(v)
    }
    #[inline(always)]
    unsafe fn ibits(v: __m128i) -> __m128 {
        _mm_castsi128_ps(v)
    }
    #[inline(always)]
    unsafe fn fbits(v: __m128) -> __m128i {
        _mm_castps_si128(v)
    }
    #[inline(always)]
    unsafe fn hsum(v: __m128) -> f32 {
        let s = _mm_add_ps(v, _mm_movehl_ps(v, v));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(s)
    }
    #[inline(always)]
    unsafe fn hmax(v: __m128) -> f32 {
        let s = _mm_max_ps(v, _mm_movehl_ps(v, v));
        let s = _mm_max_ss(s, _mm_shuffle_ps::<0b01>(s, s));
        _mm_cvtss_f32(s)
    }
    #[inline(always)]
    unsafe fn loadu8(p: *const u8) -> __m128 {
        // SSE2 has no cvtepu8 (SSE4.1): widen 4 bytes by unpacking with
        // zeros (u8 → u16 → u32), then convert. The u32 values fit in i32,
        // so the signed conversion is exact.
        let v = _mm_cvtsi32_si128((p as *const i32).read_unaligned());
        let z = _mm_setzero_si128();
        let w16 = _mm_unpacklo_epi8(v, z);
        let w32 = _mm_unpacklo_epi16(w16, z);
        _mm_cvtepi32_ps(w32)
    }
}

// --------------------------------------------------------------------------
// vectorized exp — bit-identical to `fast_exp_lane` per element
// --------------------------------------------------------------------------

/// Vector [`crate::tensor::fast_exp`]: same operation sequence as the scalar
/// `fast_exp_lane` (multiply+add polynomial — deliberately *not* FMA, which
/// would change rounding — truncation floor, `(i+127)<<23` ldexp, select
/// saturation), so every finite lane is bit-identical to the scalar result
/// and NaN lanes stay NaN (the clamp's min/max return their second — NaN —
/// operand; the ordered compares below return false on NaN so neither
/// saturation select fires).
#[inline(always)]
unsafe fn vexp<I: Isa>(x: I::V) -> I::V {
    let y = I::mul(x, I::splat(std::f32::consts::LOG2_E));
    let yc = I::max(I::splat(-126.0), I::min(I::splat(127.0), y));
    let t = I::cvtt(yc);
    // floor via truncation: subtract 1 where truncation rounded up
    let gt = I::cmp_gt(I::itof(t), yc);
    let i = I::addi(t, I::fbits(gt)); // mask is -1 where gt
    let f = I::sub(yc, I::itof(i));
    // Taylor coefficients of 2^f, degree 6 — identical constants and
    // mul/add association as the scalar kernel
    let p = I::add(I::splat(0.001_333_55), I::mul(I::splat(0.000_154_04), f));
    let p = I::add(I::splat(0.009_618_13), I::mul(p, f));
    let p = I::add(I::splat(0.055_504_11), I::mul(p, f));
    let p = I::add(I::splat(0.240_226_51), I::mul(p, f));
    let p = I::add(I::splat(0.693_147_18), I::mul(p, f));
    let p = I::add(I::splat(1.0), I::mul(p, f));
    let scale = I::ibits(I::sll23(I::addi(i, I::splati(127))));
    let r = I::mul(scale, p);
    let r = I::select(I::cmp_gt(y, I::splat(127.0)), I::splat(f32::MAX), r);
    I::select(I::cmp_gt(I::splat(-126.0), y), I::zero(), r)
}

/// Elementwise `fast_exp` over a slice (vector body + `fast_exp_lane` tail).
/// Exposed so tests can assert vexp/scalar bit-compatibility directly.
#[inline(always)]
unsafe fn exp_slice_g<I: Isa>(data: &mut [f32]) {
    let p = data.as_mut_ptr();
    let l = data.len();
    let mut i = 0;
    while i + I::W <= l {
        I::storeu(p.add(i), vexp::<I>(I::loadu(p.add(i))));
        i += I::W;
    }
    while i < l {
        *p.add(i) = fast_exp_lane(*p.add(i));
        i += 1;
    }
}

// --------------------------------------------------------------------------
// lane kernels
// --------------------------------------------------------------------------

/// Vector max of a slice with `f32::max` tail semantics. A lane containing
/// NaN may or may not report NaN here; either way the exp pass poisons the
/// whole lane exactly as the scalar kernel does (see module docs).
#[inline(always)]
unsafe fn vmax_slice<I: Isa>(p: *const f32, l: usize) -> f32 {
    let mut vm = I::splat(f32::NEG_INFINITY);
    let mut i = 0;
    while i + I::W <= l {
        vm = I::max(vm, I::loadu(p.add(i)));
        i += I::W;
    }
    let mut mx = I::hmax(vm);
    while i < l {
        mx = mx.max(*p.add(i));
        i += 1;
    }
    mx
}

/// In-place softmax over one lane: vector max, bit-compatible vector exp with
/// a riding normaliser, then one scale pass.
#[inline(always)]
unsafe fn softmax_lane_v<I: Isa>(lane: &mut [f32]) {
    let l = lane.len();
    let p = lane.as_mut_ptr();
    let mx = vmax_slice::<I>(p, l);
    let vmx = I::splat(mx);
    let mut vz = I::zero();
    let mut i = 0;
    while i + I::W <= l {
        let e = vexp::<I>(I::sub(I::loadu(p.add(i)), vmx));
        I::storeu(p.add(i), e);
        vz = I::add(vz, e);
        i += I::W;
    }
    let mut z = I::hsum(vz);
    while i < l {
        let e = fast_exp_lane(*p.add(i) - mx);
        *p.add(i) = e;
        z += e;
        i += 1;
    }
    let inv = 1.0 / z;
    let vinv = I::splat(inv);
    let mut i = 0;
    while i + I::W <= l {
        I::storeu(p.add(i), I::mul(I::loadu(p.add(i)), vinv));
        i += I::W;
    }
    while i < l {
        *p.add(i) *= inv;
        i += 1;
    }
}

#[inline(always)]
unsafe fn softmax_lanes_g<I: Isa>(data: &mut [f32], lane: usize) {
    for l in data.chunks_mut(lane) {
        softmax_lane_v::<I>(l);
    }
}

/// Striped vector sum of a slice (scalar tail added after the fold).
#[inline(always)]
unsafe fn vsum_slice<I: Isa>(p: *const f32, l: usize) -> f32 {
    let mut acc = I::zero();
    let mut i = 0;
    while i + I::W <= l {
        acc = I::add(acc, I::loadu(p.add(i)));
        i += I::W;
    }
    let mut s = I::hsum(acc);
    while i < l {
        s += *p.add(i);
        i += 1;
    }
    s
}

#[inline(always)]
unsafe fn layer_norm_lane_v<I: Isa>(lane: &mut [f32], eps: f32) {
    let l = lane.len();
    let p = lane.as_mut_ptr();
    let d = l as f32;
    let mean = vsum_slice::<I>(p, l) / d;
    let vmean = I::splat(mean);
    let mut vacc = I::zero();
    let mut i = 0;
    while i + I::W <= l {
        let c = I::sub(I::loadu(p.add(i)), vmean);
        vacc = I::add(vacc, I::mul(c, c));
        i += I::W;
    }
    let mut var = I::hsum(vacc);
    while i < l {
        let c = *p.add(i) - mean;
        var += c * c;
        i += 1;
    }
    var /= d;
    let inv = 1.0 / (var + eps).sqrt();
    let vinv = I::splat(inv);
    let mut i = 0;
    while i + I::W <= l {
        I::storeu(p.add(i), I::mul(I::sub(I::loadu(p.add(i)), vmean), vinv));
        i += I::W;
    }
    while i < l {
        *p.add(i) = (*p.add(i) - mean) * inv;
        i += 1;
    }
}

#[inline(always)]
unsafe fn layer_norm_lanes_g<I: Isa>(data: &mut [f32], lane: usize, eps: f32) {
    for l in data.chunks_mut(lane) {
        layer_norm_lane_v::<I>(l, eps);
    }
}

#[inline(always)]
unsafe fn layer_norm_backward_lane_v<I: Isa>(xs: &[f32], gs: &[f32], os: &mut [f32], eps: f32) {
    let l = xs.len();
    debug_assert_eq!(gs.len(), l);
    debug_assert_eq!(os.len(), l);
    let xp = xs.as_ptr();
    let gp = gs.as_ptr();
    let op = os.as_mut_ptr();
    let d = l as f32;
    let mean = vsum_slice::<I>(xp, l) / d;
    let vmean = I::splat(mean);
    let mut vacc = I::zero();
    let mut i = 0;
    while i + I::W <= l {
        let c = I::sub(I::loadu(xp.add(i)), vmean);
        vacc = I::add(vacc, I::mul(c, c));
        i += I::W;
    }
    let mut var = I::hsum(vacc);
    while i < l {
        let c = *xp.add(i) - mean;
        var += c * c;
        i += 1;
    }
    var /= d;
    let inv = 1.0 / (var + eps).sqrt();
    let vinv = I::splat(inv);
    // g_mean and gy_mean in one pass
    let mut vg = I::zero();
    let mut vgy = I::zero();
    let mut i = 0;
    while i + I::W <= l {
        let g = I::loadu(gp.add(i));
        vg = I::add(vg, g);
        let y = I::mul(I::sub(I::loadu(xp.add(i)), vmean), vinv);
        vgy = I::add(vgy, I::mul(g, y));
        i += I::W;
    }
    let mut g_mean = I::hsum(vg);
    let mut gy_mean = I::hsum(vgy);
    while i < l {
        let g = *gp.add(i);
        g_mean += g;
        gy_mean += g * (*xp.add(i) - mean) * inv;
        i += 1;
    }
    g_mean /= d;
    gy_mean /= d;
    let vgm = I::splat(g_mean);
    let vgym = I::splat(gy_mean);
    let mut i = 0;
    while i + I::W <= l {
        let y = I::mul(I::sub(I::loadu(xp.add(i)), vmean), vinv);
        let o = I::mul(
            vinv,
            I::sub(I::sub(I::loadu(gp.add(i)), vgm), I::mul(y, vgym)),
        );
        I::storeu(op.add(i), o);
        i += I::W;
    }
    while i < l {
        let y = (*xp.add(i) - mean) * inv;
        *op.add(i) = inv * (*gp.add(i) - g_mean - y * gy_mean);
        i += 1;
    }
}

#[inline(always)]
unsafe fn layer_norm_backward_lanes_g<I: Isa>(
    x: &[f32],
    g: &[f32],
    out: &mut [f32],
    lane: usize,
    eps: f32,
) {
    for ((xl, gl), ol) in x.chunks(lane).zip(g.chunks(lane)).zip(out.chunks_mut(lane)) {
        layer_norm_backward_lane_v::<I>(xl, gl, ol, eps);
    }
}

// --------------------------------------------------------------------------
// reductions and Adam
// --------------------------------------------------------------------------

/// One contract block ([`SUM_BLOCK`] elements max), four striped accumulators.
#[inline(always)]
unsafe fn sum_block_v<I: Isa>(c: &[f32]) -> f32 {
    let p = c.as_ptr();
    let l = c.len();
    let (mut a0, mut a1, mut a2, mut a3) = (I::zero(), I::zero(), I::zero(), I::zero());
    let mut i = 0;
    while i + 4 * I::W <= l {
        a0 = I::add(a0, I::loadu(p.add(i)));
        a1 = I::add(a1, I::loadu(p.add(i + I::W)));
        a2 = I::add(a2, I::loadu(p.add(i + 2 * I::W)));
        a3 = I::add(a3, I::loadu(p.add(i + 3 * I::W)));
        i += 4 * I::W;
    }
    let mut acc = I::add(I::add(a0, a1), I::add(a2, a3));
    while i + I::W <= l {
        acc = I::add(acc, I::loadu(p.add(i)));
        i += I::W;
    }
    let mut s = I::hsum(acc);
    while i < l {
        s += *p.add(i);
        i += 1;
    }
    s
}

#[inline(always)]
unsafe fn dot_block_v<I: Isa>(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let l = a.len();
    let (mut a0, mut a1, mut a2, mut a3) = (I::zero(), I::zero(), I::zero(), I::zero());
    let mut i = 0;
    while i + 4 * I::W <= l {
        a0 = I::fmadd(I::loadu(ap.add(i)), I::loadu(bp.add(i)), a0);
        a1 = I::fmadd(I::loadu(ap.add(i + I::W)), I::loadu(bp.add(i + I::W)), a1);
        a2 = I::fmadd(
            I::loadu(ap.add(i + 2 * I::W)),
            I::loadu(bp.add(i + 2 * I::W)),
            a2,
        );
        a3 = I::fmadd(
            I::loadu(ap.add(i + 3 * I::W)),
            I::loadu(bp.add(i + 3 * I::W)),
            a3,
        );
        i += 4 * I::W;
    }
    let mut acc = I::add(I::add(a0, a1), I::add(a2, a3));
    while i + I::W <= l {
        acc = I::fmadd(I::loadu(ap.add(i)), I::loadu(bp.add(i)), acc);
        i += I::W;
    }
    let mut s = I::hsum(acc);
    while i < l {
        s += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    s
}

/// Full-contract sum: fixed [`SUM_BLOCK`] grouping, vector reduce per block.
#[inline(always)]
unsafe fn sum_blocks_g<I: Isa>(xs: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for c in xs.chunks(SUM_BLOCK) {
        s += sum_block_v::<I>(c);
    }
    s
}

#[inline(always)]
unsafe fn dot_blocks_g<I: Isa>(xs: &[f32], ys: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for (a, b) in xs.chunks(SUM_BLOCK).zip(ys.chunks(SUM_BLOCK)) {
        s += dot_block_v::<I>(a, b);
    }
    s
}

/// Raw fused-dequant dot ([`crate::backend::Backend::dot_q8`]): the u8 codes
/// are widened to f32 in registers ([`Isa::loadu8`], exact) and accumulated
/// with the same four-stripe FMA pattern as [`dot_block_v`] — covered by the
/// reassociation tolerance, never used where bit-compatibility with the
/// scalar kernel is required.
#[inline(always)]
unsafe fn dot_q8_v<I: Isa>(a: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(a.len(), codes.len());
    let ap = a.as_ptr();
    let cp = codes.as_ptr();
    let l = a.len();
    let (mut a0, mut a1, mut a2, mut a3) = (I::zero(), I::zero(), I::zero(), I::zero());
    let mut i = 0;
    while i + 4 * I::W <= l {
        a0 = I::fmadd(I::loadu(ap.add(i)), I::loadu8(cp.add(i)), a0);
        a1 = I::fmadd(I::loadu(ap.add(i + I::W)), I::loadu8(cp.add(i + I::W)), a1);
        a2 = I::fmadd(
            I::loadu(ap.add(i + 2 * I::W)),
            I::loadu8(cp.add(i + 2 * I::W)),
            a2,
        );
        a3 = I::fmadd(
            I::loadu(ap.add(i + 3 * I::W)),
            I::loadu8(cp.add(i + 3 * I::W)),
            a3,
        );
        i += 4 * I::W;
    }
    let mut acc = I::add(I::add(a0, a1), I::add(a2, a3));
    while i + I::W <= l {
        acc = I::fmadd(I::loadu(ap.add(i)), I::loadu8(cp.add(i)), acc);
        i += I::W;
    }
    let mut s = I::hsum(acc);
    while i < l {
        s += *ap.add(i) * *cp.add(i) as f32;
        i += 1;
    }
    s
}

/// One [`crate::backend::Backend::gemm_q8_f32`] output strip: one query row
/// (element sum `a_sum`) against `out.len()` quantized rows (`codes`
/// row-major `[out.len(), k]`), per-row affine applied in the epilogue. Each
/// output element consumes its full `k` extent, so strips computed on
/// different threads can never interleave accumulation.
#[inline(always)]
unsafe fn gemm_q8_strip_g<I: Isa>(
    arow: &[f32],
    a_sum: f32,
    codes: &[u8],
    scales: &[f32],
    mins: &[f32],
    out: &mut [f32],
    k: usize,
) {
    debug_assert_eq!(arow.len(), k);
    debug_assert_eq!(codes.len(), out.len() * k);
    debug_assert_eq!(scales.len(), out.len());
    debug_assert_eq!(mins.len(), out.len());
    for (j, o) in out.iter_mut().enumerate() {
        let d = dot_q8_v::<I>(arow, codes.get_unchecked(j * k..(j + 1) * k));
        *o = mins[j] * a_sum + scales[j] * d;
    }
}

#[inline(always)]
unsafe fn adam_g<I: Isa>(x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
    let l = x.len();
    debug_assert_eq!(g.len(), l);
    debug_assert_eq!(m.len(), l);
    debug_assert_eq!(v.len(), l);
    let xp = x.as_mut_ptr();
    let gp = g.as_ptr();
    let mp = m.as_mut_ptr();
    let vp = v.as_mut_ptr();
    let vb1 = I::splat(hp.beta1);
    let vb2 = I::splat(hp.beta2);
    let vomb1 = I::splat(1.0 - hp.beta1);
    let vomb2 = I::splat(1.0 - hp.beta2);
    let vwd = I::splat(hp.weight_decay);
    let vib1 = I::splat(1.0 / hp.bias1);
    let vib2 = I::splat(1.0 / hp.bias2);
    let vlr = I::splat(hp.lr);
    let veps = I::splat(hp.eps);
    let mut i = 0;
    while i + I::W <= l {
        let xv = I::loadu(xp.add(i));
        let gi = I::fmadd(vwd, xv, I::loadu(gp.add(i)));
        let mv = I::fmadd(vb1, I::loadu(mp.add(i)), I::mul(vomb1, gi));
        let vv = I::fmadd(vb2, I::loadu(vp.add(i)), I::mul(vomb2, I::mul(gi, gi)));
        I::storeu(mp.add(i), mv);
        I::storeu(vp.add(i), vv);
        let mhat = I::mul(mv, vib1);
        let vhat = I::mul(vv, vib2);
        // `sqrtps`/`divps` look like the bottleneck but are not: they issue
        // to the divide unit, which runs concurrently with the FMA ports
        // carrying the rest of the loop. A 12-bit rsqrt/rcp estimate plus
        // Newton-Raphson refinement was measured *slower* here (the NR
        // chain competes with the surrounding arithmetic for the FMA
        // ports), so the denominator stays exact — and bit-closest to the
        // scalar kernel. At the 1M-element benchmark size the loop is
        // DRAM-bound either way (7 streams of 4 MB against a ~37 GB/s
        // single-core streaming floor).
        let step = I::div(I::mul(vlr, mhat), I::add(I::sqrt(vhat), veps));
        I::storeu(xp.add(i), I::sub(xv, step));
        i += I::W;
    }
    while i < l {
        let gi = *gp.add(i) + hp.weight_decay * *xp.add(i);
        let mv = hp.beta1 * *mp.add(i) + (1.0 - hp.beta1) * gi;
        let vv = hp.beta2 * *vp.add(i) + (1.0 - hp.beta2) * gi * gi;
        *mp.add(i) = mv;
        *vp.add(i) = vv;
        let mhat = mv / hp.bias1;
        let vhat = vv / hp.bias2;
        *xp.add(i) -= hp.lr * mhat / (vhat.sqrt() + hp.eps);
        i += 1;
    }
}

// --------------------------------------------------------------------------
// GEMM: register-blocked micro-kernel over (optionally packed) B panels
// --------------------------------------------------------------------------

/// `MR x (2·W)` register micro-kernel: the C tile lives in `MR*2`
/// accumulator registers across the whole `kc` loop; each step broadcasts
/// one A element per row and FMAs two B vectors. `ALIGNED` selects aligned
/// B loads (valid only for packed panels).
#[inline(always)]
unsafe fn micro_kern<I: Isa, const MR: usize, const ALIGNED: bool>(
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
    kc: usize,
) {
    let mut acc = [[I::zero(); 2]; MR];
    for r in 0..MR {
        acc[r][0] = I::loadu(c.add(r * ldc));
        acc[r][1] = I::loadu(c.add(r * ldc + I::W));
    }
    let mut p = 0;
    while p < kc {
        let (b0, b1) = if ALIGNED {
            (I::loada(b.add(p * ldb)), I::loada(b.add(p * ldb + I::W)))
        } else {
            (I::loadu(b.add(p * ldb)), I::loadu(b.add(p * ldb + I::W)))
        };
        for r in 0..MR {
            let av = I::splat(*a.add(r * lda + p));
            acc[r][0] = I::fmadd(av, b0, acc[r][0]);
            acc[r][1] = I::fmadd(av, b1, acc[r][1]);
        }
        p += 1;
    }
    for r in 0..MR {
        I::storeu(c.add(r * ldc), acc[r][0]);
        I::storeu(c.add(r * ldc + I::W), acc[r][1]);
    }
}

/// Run the micro-kernel at the configured row blocking `mr` (const-dispatch
/// so each variant keeps its accumulators in registers).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn run_micro<I: Isa, const ALIGNED: bool>(
    mr: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
    kc: usize,
) {
    match mr {
        1 => micro_kern::<I, 1, ALIGNED>(a, lda, b, ldb, c, ldc, kc),
        2 => micro_kern::<I, 2, ALIGNED>(a, lda, b, ldb, c, ldc, kc),
        6 => micro_kern::<I, 6, ALIGNED>(a, lda, b, ldb, c, ldc, kc),
        _ => micro_kern::<I, 4, ALIGNED>(a, lda, b, ldb, c, ldc, kc),
    }
}

/// `out[m,n] += a[m,k]·b[k,n]` with ascending-`k` accumulation per element
/// (`kb` blocks ascending, `p` ascending inside each block and inside the
/// micro-kernel). `pack` must hold at least `kc_cfg * 2 * I::W` floats of
/// 64-byte-aligned scratch; B panels are packed when the row-block reuse
/// (`m`) justifies the copy. Column tail (`n % (2W)`) and row tails fall
/// back to scalar/MR=1 paths. Caller guarantees `n >= 2*I::W`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn matmul_g<I: Isa>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    mr: usize,
    kc_cfg: usize,
    pack: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let tw = 2 * I::W;
    debug_assert!(n >= tw);
    debug_assert!(pack.len() >= kc_cfg * tw);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = out.as_mut_ptr();
    // pack only when several row blocks reuse the panel
    let do_pack = m >= 4 * mr;
    let mut kb = 0;
    while kb < k {
        let kc = kc_cfg.min(k - kb);
        let mut j0 = 0;
        while j0 + tw <= n {
            let (pb, ldb) = if do_pack {
                let dst = pack.as_mut_ptr();
                for p in 0..kc {
                    std::ptr::copy_nonoverlapping(bp.add((kb + p) * n + j0), dst.add(p * tw), tw);
                }
                (pack.as_ptr(), tw)
            } else {
                (bp.add(kb * n + j0) as *const f32, n)
            };
            let mut i0 = 0;
            while i0 + mr <= m {
                let av = ap.add(i0 * k + kb);
                let cv = cp.add(i0 * n + j0);
                if do_pack {
                    run_micro::<I, true>(mr, av, k, pb, ldb, cv, n, kc);
                } else {
                    run_micro::<I, false>(mr, av, k, pb, ldb, cv, n, kc);
                }
                i0 += mr;
            }
            while i0 < m {
                let av = ap.add(i0 * k + kb);
                let cv = cp.add(i0 * n + j0);
                if do_pack {
                    run_micro::<I, true>(1, av, k, pb, ldb, cv, n, kc);
                } else {
                    run_micro::<I, false>(1, av, k, pb, ldb, cv, n, kc);
                }
                i0 += 1;
            }
            j0 += tw;
        }
        if j0 < n {
            // scalar column tail, same ascending-k order
            for i in 0..m {
                for p in kb..kb + kc {
                    let av = *ap.add(i * k + p);
                    if av == 0.0 {
                        continue;
                    }
                    for j in j0..n {
                        *cp.add(i * n + j) += av * *bp.add(p * n + j);
                    }
                }
            }
        }
        kb += kc;
    }
}

// --------------------------------------------------------------------------
// fused attention rows (shared by taped and tape-free entry points)
// --------------------------------------------------------------------------

/// Contract one softmaxed row into the output row: `orow += srow · v[k,n]`,
/// vectorized over `n` when wide enough, scalar otherwise; `n == 1` takes a
/// vector dot over `k`.
#[inline(always)]
unsafe fn contract_row<I: Isa>(srow: &[f32], v: &[f32], orow: &mut [f32], k: usize, n: usize) {
    let sp = srow.as_ptr();
    if n == 1 {
        let vp = v.as_ptr();
        let mut acc = I::zero();
        let mut i = 0;
        while i + I::W <= k {
            acc = I::fmadd(I::loadu(sp.add(i)), I::loadu(vp.add(i)), acc);
            i += I::W;
        }
        let mut o = I::hsum(acc);
        while i < k {
            o += *sp.add(i) * *vp.add(i);
            i += 1;
        }
        orow[0] += o;
        return;
    }
    let op = orow.as_mut_ptr();
    if n >= I::W {
        for j in 0..k {
            let vw = I::splat(*sp.add(j));
            let vrow = v.as_ptr().add(j * n);
            let mut t = 0;
            while t + I::W <= n {
                I::storeu(
                    op.add(t),
                    I::fmadd(vw, I::loadu(vrow.add(t)), I::loadu(op.add(t))),
                );
                t += I::W;
            }
            while t < n {
                *op.add(t) += *sp.add(j) * *vrow.add(t);
                t += 1;
            }
        }
    } else {
        for j in 0..k {
            let w = *sp.add(j);
            let vrow = &v[j * n..(j + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One outer-attention row: build scores `ars·c[j]` into `srow` with a riding
/// vector max, exponentiate (bit-compatible vexp) with a riding normaliser,
/// normalise `srow` in place, and contract into `orow`. Taped and tape-free
/// entry points both run exactly this function — the only difference is
/// whether `srow` is a persistent buffer row or reused scratch — so taped and
/// tape-free results are bit-identical under this backend by construction.
#[inline(always)]
unsafe fn oa_row<I: Isa>(
    ars: f32,
    c: &[f32],
    v: &[f32],
    srow: &mut [f32],
    orow: &mut [f32],
    k: usize,
    n: usize,
) {
    debug_assert_eq!(srow.len(), k);
    debug_assert_eq!(c.len(), k);
    let sp = srow.as_mut_ptr();
    let cjp = c.as_ptr();
    let va = I::splat(ars);
    let mut vm = I::splat(f32::NEG_INFINITY);
    let mut i = 0;
    while i + I::W <= k {
        let sc = I::mul(va, I::loadu(cjp.add(i)));
        I::storeu(sp.add(i), sc);
        vm = I::max(vm, sc);
        i += I::W;
    }
    let mut mx = I::hmax(vm);
    while i < k {
        let sc = ars * *cjp.add(i);
        *sp.add(i) = sc;
        mx = mx.max(sc);
        i += 1;
    }
    let vmx = I::splat(mx);
    let mut vz = I::zero();
    let mut i = 0;
    while i + I::W <= k {
        let e = vexp::<I>(I::sub(I::loadu(sp.add(i)), vmx));
        I::storeu(sp.add(i), e);
        vz = I::add(vz, e);
        i += I::W;
    }
    let mut z = I::hsum(vz);
    while i < k {
        let e = fast_exp_lane(*sp.add(i) - mx);
        *sp.add(i) = e;
        z += e;
        i += 1;
    }
    let inv_z = 1.0 / z;
    let vinv = I::splat(inv_z);
    let mut i = 0;
    while i + I::W <= k {
        I::storeu(sp.add(i), I::mul(I::loadu(sp.add(i)), vinv));
        i += I::W;
    }
    while i < k {
        *sp.add(i) *= inv_z;
        i += 1;
    }
    contract_row::<I>(srow, v, orow, k, n);
}

/// One batch entry of the fused outer attention (taped: `soft` persists).
#[inline(always)]
unsafe fn outer_attention_block_g<I: Isa>(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        oa_row::<I>(
            a[r] / tau,
            c,
            v,
            &mut soft[r * k..(r + 1) * k],
            &mut out[r * n..(r + 1) * n],
            k,
            n,
        );
    }
}

/// One batch entry of the forward-only outer attention: same [`oa_row`] with
/// `row` scratch in place of a persistent softmax row (bit-identical).
#[inline(always)]
unsafe fn outer_attention_fwd_block_g<I: Isa>(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        oa_row::<I>(a[r] / tau, c, v, row, &mut out[r * n..(r + 1) * n], k, n);
    }
}

/// One softmax×matmul row: copy the scores row into `srow`, softmax it with
/// the vector lane kernel, contract. Shared by taped and tape-free entries.
#[inline(always)]
unsafe fn sm_row<I: Isa>(
    scores_row: &[f32],
    v: &[f32],
    srow: &mut [f32],
    orow: &mut [f32],
    k: usize,
    n: usize,
) {
    srow.copy_from_slice(scores_row);
    softmax_lane_v::<I>(srow);
    contract_row::<I>(srow, v, orow, k, n);
}

/// One batch entry of the fused softmax×matmul (taped).
#[inline(always)]
unsafe fn softmax_matmul_block_g<I: Isa>(
    scores: &[f32],
    v: &[f32],
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        sm_row::<I>(
            &scores[r * k..(r + 1) * k],
            v,
            &mut soft[r * k..(r + 1) * k],
            &mut out[r * n..(r + 1) * n],
            k,
            n,
        );
    }
}

/// One batch entry of the forward-only softmax×matmul (scratch `row`).
#[inline(always)]
unsafe fn softmax_matmul_fwd_block_g<I: Isa>(
    scores: &[f32],
    v: &[f32],
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        sm_row::<I>(
            &scores[r * k..(r + 1) * k],
            v,
            row,
            &mut out[r * n..(r + 1) * n],
            k,
            n,
        );
    }
}

/// One batch entry of the outer-attention backward, specialised for the TCA
/// hot case `n == 1` (the dispatch layer guards this); returns the entry's
/// τ-gradient contribution. Same math as the scalar
/// `outer_attention_backward_block` with both `k`-loops vectorized.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn outer_attention_backward_block1_g<I: Isa>(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    soft: &[f32],
    gout: &[f32],
    tau: f32,
    ga: &mut [f32],
    gc: &mut [f32],
    gv: &mut [f32],
    scratch: &mut [f32],
    m: usize,
    k: usize,
) -> f32 {
    debug_assert_eq!(v.len(), k);
    debug_assert_eq!(gv.len(), k);
    debug_assert_eq!(gc.len(), k);
    debug_assert!(scratch.len() >= k);
    let inv = 1.0 / tau;
    let cp = c.as_ptr();
    let vp = v.as_ptr();
    let gvp = gv.as_mut_ptr();
    let gcp = gc.as_mut_ptr();
    let scp = scratch.as_mut_ptr();
    let mut gtau = 0.0f32;
    for r in 0..m {
        let srow = &soft[r * k..(r + 1) * k];
        let sp = srow.as_ptr();
        let go = gout[r];
        let vgo = I::splat(go);
        // pass 1: gsoft = go·v into scratch, gv += soft·go, dot = Σ gsoft⊙soft
        let mut vdot = I::zero();
        let mut i = 0;
        while i + I::W <= k {
            let w = I::loadu(sp.add(i));
            let acc = I::mul(vgo, I::loadu(vp.add(i)));
            I::storeu(scp.add(i), acc);
            I::storeu(gvp.add(i), I::fmadd(w, vgo, I::loadu(gvp.add(i))));
            vdot = I::fmadd(acc, w, vdot);
            i += I::W;
        }
        let mut dot = I::hsum(vdot);
        while i < k {
            let w = *sp.add(i);
            let acc = go * *vp.add(i);
            *scp.add(i) = acc;
            *gvp.add(i) += w * go;
            dot += acc * w;
            i += 1;
        }
        // pass 2: gs = (gsoft − dot)·soft; gc += gs·(a/τ); row_c_dot = Σ gs·c
        let ar = a[r];
        let ar_inv = ar * inv;
        let vd = I::splat(dot);
        let vai = I::splat(ar_inv);
        let mut vrc = I::zero();
        let mut i = 0;
        while i + I::W <= k {
            let gs = I::mul(I::sub(I::loadu(scp.add(i)), vd), I::loadu(sp.add(i)));
            vrc = I::fmadd(gs, I::loadu(cp.add(i)), vrc);
            I::storeu(gcp.add(i), I::fmadd(gs, vai, I::loadu(gcp.add(i))));
            i += I::W;
        }
        let mut row_c_dot = I::hsum(vrc);
        while i < k {
            let gs = (*scp.add(i) - dot) * *sp.add(i);
            row_c_dot += gs * *cp.add(i);
            *gcp.add(i) += gs * ar_inv;
            i += 1;
        }
        ga[r] += row_c_dot * inv;
        gtau -= ar * row_c_dot * inv * inv;
    }
    gtau
}

// --------------------------------------------------------------------------
// #[target_feature] entry points, one module per ISA
// --------------------------------------------------------------------------

macro_rules! isa_entries {
    ($mod_name:ident, $isa:ty, $features:literal) => {
        pub(crate) mod $mod_name {
            use super::*;

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn softmax_lanes(data: &mut [f32], lane: usize) {
                softmax_lanes_g::<$isa>(data, lane)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn layer_norm_lanes(data: &mut [f32], lane: usize, eps: f32) {
                layer_norm_lanes_g::<$isa>(data, lane, eps)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn layer_norm_backward_lanes(
                x: &[f32],
                g: &[f32],
                out: &mut [f32],
                lane: usize,
                eps: f32,
            ) {
                layer_norm_backward_lanes_g::<$isa>(x, g, out, lane, eps)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn adam_update(
                x: &mut [f32],
                g: &[f32],
                m: &mut [f32],
                v: &mut [f32],
                hp: &AdamHp,
            ) {
                adam_g::<$isa>(x, g, m, v, hp)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn sum_blocks(xs: &[f32]) -> f32 {
                sum_blocks_g::<$isa>(xs)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn sum_one_block(xs: &[f32]) -> f32 {
                sum_block_v::<$isa>(xs)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn dot_blocks(xs: &[f32], ys: &[f32]) -> f32 {
                dot_blocks_g::<$isa>(xs, ys)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn dot_one_block(xs: &[f32], ys: &[f32]) -> f32 {
                dot_block_v::<$isa>(xs, ys)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn dot_q8(a: &[f32], codes: &[u8]) -> f32 {
                dot_q8_v::<$isa>(a, codes)
            }

            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $features)]
            pub(crate) unsafe fn gemm_q8_strip(
                arow: &[f32],
                a_sum: f32,
                codes: &[u8],
                scales: &[f32],
                mins: &[f32],
                out: &mut [f32],
                k: usize,
            ) {
                gemm_q8_strip_g::<$isa>(arow, a_sum, codes, scales, mins, out, k)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn exp_slice(data: &mut [f32]) {
                exp_slice_g::<$isa>(data)
            }

            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $features)]
            pub(crate) unsafe fn matmul(
                a: &[f32],
                b: &[f32],
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
                mr: usize,
                kc: usize,
                pack: &mut [f32],
            ) {
                matmul_g::<$isa>(a, b, out, m, k, n, mr, kc, pack)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn softmax_matmul_block(
                scores: &[f32],
                v: &[f32],
                soft: &mut [f32],
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
            ) {
                softmax_matmul_block_g::<$isa>(scores, v, soft, out, m, k, n)
            }

            #[target_feature(enable = $features)]
            pub(crate) unsafe fn softmax_matmul_fwd_block(
                scores: &[f32],
                v: &[f32],
                row: &mut [f32],
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
            ) {
                softmax_matmul_fwd_block_g::<$isa>(scores, v, row, out, m, k, n)
            }

            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $features)]
            pub(crate) unsafe fn outer_attention_block(
                a: &[f32],
                c: &[f32],
                v: &[f32],
                tau: f32,
                soft: &mut [f32],
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
            ) {
                outer_attention_block_g::<$isa>(a, c, v, tau, soft, out, m, k, n)
            }

            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $features)]
            pub(crate) unsafe fn outer_attention_fwd_block(
                a: &[f32],
                c: &[f32],
                v: &[f32],
                tau: f32,
                row: &mut [f32],
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
            ) {
                outer_attention_fwd_block_g::<$isa>(a, c, v, tau, row, out, m, k, n)
            }

            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $features)]
            pub(crate) unsafe fn outer_attention_backward_block1(
                a: &[f32],
                c: &[f32],
                v: &[f32],
                soft: &[f32],
                gout: &[f32],
                tau: f32,
                ga: &mut [f32],
                gc: &mut [f32],
                gv: &mut [f32],
                scratch: &mut [f32],
                m: usize,
                k: usize,
            ) -> f32 {
                outer_attention_backward_block1_g::<$isa>(
                    a, c, v, soft, gout, tau, ga, gc, gv, scratch, m, k,
                )
            }
        }
    };
}

isa_entries!(avx2, Avx2, "avx2,fma");
isa_entries!(sse2, Sse2, "sse2");
