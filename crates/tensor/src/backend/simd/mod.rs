//! Explicit-SIMD backend: `std::arch` x86_64 intrinsics behind runtime
//! feature detection.
//!
//! The instruction set is chosen **once** per process by [`level`]
//! (`is_x86_feature_detected!`): AVX2+FMA where available (8-float vectors,
//! fused multiply-add GEMM), otherwise the x86_64-baseline SSE2 (4-float
//! vectors). Every kernel has one generic implementation in [`x86`]
//! monomorphised per ISA and wrapped in a `#[target_feature]` entry point;
//! dispatch is a two-arm `match` on the cached level, so the detection cost
//! is one atomic load per kernel call. Non-x86_64 targets compile the same
//! crate — the [`x86`] module is cfg'd out, [`supported`] is `false`, and
//! every method delegates to [`ParallelBackend`], as do the few kernels that
//! don't vectorise profitably (narrow GEMMs, the chunked elementwise
//! drivers, attention backward with wide `n`).
//!
//! # Safety
//!
//! All `unsafe` lives in [`x86`]; see its module docs for the full argument.
//! The obligations discharged *here* are the `#[target_feature]` call
//! preconditions: every `dispatch!` arm is guarded by [`supported`] /
//! [`level`], so AVX2 entry points are only reached after
//! `is_x86_feature_detected!("avx2")`/`("fma")` returned true, and SSE2 ones
//! only on x86_64 (where SSE2 is architecturally guaranteed).
//!
//! # Parity
//!
//! The vector `exp` is bit-identical per element to the scalar
//! `fast_exp_lane`, and taped/tape-free attention entries share one row
//! kernel, so tape vs tape-free inference stays bit-identical under this
//! backend. Reductions keep the backend summation contract's fixed
//! [`SUM_BLOCK`] grouping but stripe vector accumulators *inside* a block,
//! so `sum`/`dot` agree with the scalar backend to the 1e-5 parity budget
//! rather than bitwise.
//!
//! # Autotuning
//!
//! The GEMM micro-kernel's row blocking (`MR`) and k-block (`KC`) default to
//! `(4, 256)`, can be pinned with `CAME_SIMD_MR` / `CAME_SIMD_KC`, and can be
//! measured on the host with [`autotune`], which sweeps a small grid on a
//! representative square GEMM and installs the fastest pair process-wide
//! (the micro-bench records the chosen tile in its provenance block).

use super::parallel::ParallelBackend;
use super::{bias_act_rows, Activation, AdamHp, Backend};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use super::parallel::{
    grain_for, lane_work_parallel, num_threads, steal_tasks, PANEL_ROWS, PAR_MIN_ELEMS,
    PAR_MIN_FLOPS,
};
#[cfg(target_arch = "x86_64")]
use super::SUM_BLOCK;

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// The vector instruction level the process dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Level {
    /// AVX2 + FMA: 8-float vectors, fused multiply-add.
    Avx2Fma,
    /// SSE2 (the x86_64 baseline): 4-float vectors.
    Sse2,
    /// No supported vector unit (non-x86_64 builds).
    None,
}

fn detect() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Level::Avx2Fma
        } else {
            Level::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Level::None
    }
}

/// The cached instruction level (detected once per process).
fn level() -> Level {
    static L: OnceLock<Level> = OnceLock::new();
    *L.get_or_init(detect)
}

/// Whether this host has a vector unit the SIMD backend targets. `false`
/// makes [`SimdBackend`] a pure delegate to [`ParallelBackend`] and keeps it
/// out of the auto-selected default.
pub fn supported() -> bool {
    level() != Level::None
}

/// Human-readable name of the detected instruction level
/// (`"avx2+fma"` / `"sse2"` / `"none"`), for bench provenance.
pub fn level_name() -> &'static str {
    match level() {
        Level::Avx2Fma => "avx2+fma",
        Level::Sse2 => "sse2",
        Level::None => "none",
    }
}

/// GEMM column-tile width in floats (two vectors), 0 when unsupported.
#[cfg(target_arch = "x86_64")]
fn tw() -> usize {
    match level() {
        Level::Avx2Fma => 16,
        Level::Sse2 => 8,
        Level::None => 0,
    }
}

/// Call the right `#[target_feature]` entry for the detected level. Only
/// reachable behind a [`supported`] guard, which on x86_64 means the level is
/// Avx2Fma or Sse2 — both architecturally safe to call once detected.
#[cfg(target_arch = "x86_64")]
macro_rules! dispatch {
    ($fn:ident($($arg:expr),* $(,)?)) => {
        match level() {
            Level::Avx2Fma => unsafe { x86::avx2::$fn($($arg),*) },
            _ => unsafe { x86::sse2::$fn($($arg),*) },
        }
    };
}

// --------------------------------------------------------------------------
// GEMM tile configuration
// --------------------------------------------------------------------------

// 0 = uninitialised; first `tile()` call fills from env or defaults.
static TILE_MR: AtomicUsize = AtomicUsize::new(0);
static TILE_KC: AtomicUsize = AtomicUsize::new(0);

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The GEMM micro-kernel tile `(mr, kc)` in effect: `CAME_SIMD_MR` /
/// `CAME_SIMD_KC` when set (mr limited to the compiled variants 1/2/4/6),
/// else `(4, 256)`, unless [`set_tile`] / [`autotune`] installed another.
pub fn tile() -> (usize, usize) {
    let (mr, kc) = (
        TILE_MR.load(Ordering::Relaxed),
        TILE_KC.load(Ordering::Relaxed),
    );
    if mr != 0 && kc != 0 {
        return (mr, kc);
    }
    let mr = env_usize("CAME_SIMD_MR")
        .filter(|m| matches!(m, 1 | 2 | 4 | 6))
        .unwrap_or(4);
    let kc = env_usize("CAME_SIMD_KC").map_or(256, |k| k.clamp(16, 4096));
    set_tile(mr, kc);
    (mr, kc)
}

/// Install a GEMM tile `(mr, kc)` process-wide. `mr` snaps to the nearest
/// compiled variant (1/2/4/6); `kc` is clamped to a sane cache-block range.
pub fn set_tile(mr: usize, kc: usize) {
    let mr = match mr {
        0 | 1 => 1,
        2 | 3 => 2,
        4 | 5 => 4,
        _ => 6,
    };
    TILE_MR.store(mr, Ordering::Relaxed);
    TILE_KC.store(kc.clamp(16, 4096), Ordering::Relaxed);
}

/// Measure the GEMM tile grid on this host (a small `MR x KC` sweep over a
/// representative square product), install the fastest pair via [`set_tile`],
/// and return it. No-op (returns the current tile) when SIMD is unsupported.
pub fn autotune() -> (usize, usize) {
    if !supported() {
        return tile();
    }
    #[cfg(target_arch = "x86_64")]
    {
        const DIM: usize = 192;
        // deterministic pseudo-data; values irrelevant, only timing matters
        let a: Vec<f32> = (0..DIM * DIM)
            .map(|i| (i % 13) as f32 * 0.13 - 0.7)
            .collect();
        let b: Vec<f32> = (0..DIM * DIM)
            .map(|i| (i % 7) as f32 * 0.21 - 0.6)
            .collect();
        let mut out = vec![0.0f32; DIM * DIM];
        let mut best = (4usize, 256usize);
        let mut best_ns = u64::MAX;
        for &mr in &[2usize, 4, 6] {
            for &kc in &[128usize, 256, 512] {
                let mut pack = crate::pool::AlignedBuf::alloc(kc * tw());
                // warm-up, then best-of-3
                out.fill(0.0);
                dispatch!(matmul(&a, &b, &mut out, DIM, DIM, DIM, mr, kc, &mut pack));
                let mut ns = u64::MAX;
                for _ in 0..3 {
                    out.fill(0.0);
                    let t0 = std::time::Instant::now();
                    dispatch!(matmul(&a, &b, &mut out, DIM, DIM, DIM, mr, kc, &mut pack));
                    ns = ns.min(t0.elapsed().as_nanos() as u64);
                }
                if ns < best_ns {
                    best_ns = ns;
                    best = (mr, kc);
                }
            }
        }
        set_tile(best.0, best.1);
        best
    }
    #[cfg(not(target_arch = "x86_64"))]
    tile()
}

/// One-line description of the active SIMD configuration for bench
/// provenance, e.g. `"avx2+fma mr=4 kc=256"`.
pub fn descr() -> String {
    let (mr, kc) = tile();
    format!("{} mr={mr} kc={kc}", level_name())
}

/// Elementwise `fast_exp` over a slice through the vectorized exp (scalar
/// `fast_exp_lane` fallback off x86_64). Bit-identical to mapping
/// `fast_exp_lane`; exposed so tests can assert that directly.
pub fn exp_inplace(data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if supported() {
        dispatch!(exp_slice(data));
        return;
    }
    for v in data.iter_mut() {
        *v = crate::tensor::fast_exp_lane(*v);
    }
}

// --------------------------------------------------------------------------
// the backend
// --------------------------------------------------------------------------

/// Explicit `std::arch` vectorized backend (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimdBackend;

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        if m * n == 0 || k == 0 {
            return; // nothing to accumulate
        }
        // narrow outputs would be all scalar column tail — the blocked
        // parallel kernel handles those shapes better
        #[cfg(target_arch = "x86_64")]
        if supported() && n >= tw() {
            let (mr, kc) = tile();
            if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 || m <= PANEL_ROWS {
                let mut pack = crate::pool::AlignedBuf::alloc(kc * tw());
                dispatch!(matmul(a, b, out, m, k, n, mr, kc, &mut pack));
            } else {
                let tasks: Vec<(usize, &mut [f32])> =
                    out.chunks_mut(PANEL_ROWS * n).enumerate().collect();
                steal_tasks(tasks, |(pi, panel)| {
                    let i0 = pi * PANEL_ROWS;
                    let rows = panel.len() / n;
                    let mut pack = crate::pool::AlignedBuf::alloc(kc * tw());
                    dispatch!(matmul(
                        &a[i0 * k..(i0 + rows) * k],
                        b,
                        panel,
                        rows,
                        k,
                        n,
                        mr,
                        kc,
                        &mut pack
                    ));
                });
            }
            return;
        }
        ParallelBackend.matmul(a, b, out, m, k, n)
    }

    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch == 0 || m * n == 0 || k == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() && n >= tw() {
            let (mr, kc) = tile();
            if batch * m * n * k < PAR_MIN_FLOPS || num_threads() == 1 {
                let mut pack = crate::pool::AlignedBuf::alloc(kc * tw());
                for i in 0..batch {
                    dispatch!(matmul(
                        &a[i * m * k..(i + 1) * m * k],
                        &b[i * k * n..(i + 1) * k * n],
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n,
                        mr,
                        kc,
                        &mut pack
                    ));
                }
            } else {
                let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
                steal_tasks(tasks, |(i, panel)| {
                    let mut pack = crate::pool::AlignedBuf::alloc(kc * tw());
                    dispatch!(matmul(
                        &a[i * m * k..(i + 1) * m * k],
                        &b[i * k * n..(i + 1) * k * n],
                        panel,
                        m,
                        k,
                        n,
                        mr,
                        kc,
                        &mut pack
                    ));
                });
            }
            return;
        }
        ParallelBackend.matmul_batched(a, b, out, batch, m, k, n)
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        if lane == 0 || data.is_empty() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if !lane_work_parallel(data.len(), lane) {
                dispatch!(softmax_lanes(data, lane));
            } else {
                let g = grain_for(data.len(), lane);
                steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
                    dispatch!(softmax_lanes(chunk, lane))
                });
            }
            return;
        }
        ParallelBackend.softmax_lanes(data, lane)
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        if lane == 0 || data.is_empty() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if !lane_work_parallel(data.len(), lane) {
                dispatch!(layer_norm_lanes(data, lane, eps));
            } else {
                let g = grain_for(data.len(), lane);
                steal_tasks(data.chunks_mut(g).collect(), |chunk: &mut [f32]| {
                    dispatch!(layer_norm_lanes(chunk, lane, eps))
                });
            }
            return;
        }
        ParallelBackend.layer_norm_lanes(data, lane, eps)
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        if lane == 0 || x.is_empty() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if !lane_work_parallel(x.len(), lane) {
                dispatch!(layer_norm_backward_lanes(x, g, out, lane, eps));
            } else {
                let gr = grain_for(x.len(), lane);
                let tasks: Vec<((&[f32], &[f32]), &mut [f32])> = x
                    .chunks(gr)
                    .zip(g.chunks(gr))
                    .zip(out.chunks_mut(gr))
                    .collect();
                steal_tasks(tasks, |((xs, gs), os)| {
                    dispatch!(layer_norm_backward_lanes(xs, gs, os, lane, eps))
                });
            }
            return;
        }
        ParallelBackend.layer_norm_backward_lanes(x, g, out, lane, eps)
    }

    // The chunked elementwise drivers execute caller closures — nothing to
    // vectorise at this layer; the parallel backend's threading applies as-is.

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        ParallelBackend.run1(data, body)
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        ParallelBackend.run2(src, dst, body)
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        ParallelBackend.run3(a, b, dst, body)
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
                return dispatch!(sum_blocks(xs));
            }
            let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
            let tasks: Vec<(&[f32], &mut f32)> =
                xs.chunks(SUM_BLOCK).zip(partials.iter_mut()).collect();
            steal_tasks(tasks, |(c, slot)| *slot = dispatch!(sum_one_block(c)));
            return partials.iter().sum();
        }
        ParallelBackend.sum(xs)
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        debug_assert_eq!(xs.len(), ys.len());
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if xs.len() < PAR_MIN_ELEMS || num_threads() == 1 {
                return dispatch!(dot_blocks(xs, ys));
            }
            let mut partials = vec![0.0f32; xs.len().div_ceil(SUM_BLOCK)];
            let tasks: Vec<((&[f32], &[f32]), &mut f32)> = xs
                .chunks(SUM_BLOCK)
                .zip(ys.chunks(SUM_BLOCK))
                .zip(partials.iter_mut())
                .collect();
            steal_tasks(tasks, |((a, b), slot)| {
                *slot = dispatch!(dot_one_block(a, b))
            });
            return partials.iter().sum();
        }
        ParallelBackend.dot(xs, ys)
    }

    fn dot_q8(&self, a: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), codes.len());
        #[cfg(target_arch = "x86_64")]
        if supported() {
            return dispatch!(dot_q8(a, codes));
        }
        ParallelBackend.dot_q8(a, codes)
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_q8_f32(
        &self,
        a: &[f32],
        a_sums: &[f32],
        codes: &[u8],
        scales: &[f32],
        mins: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if supported() {
            super::check_q8_shapes(a, a_sums, codes, scales, mins, out, m, k, n);
            if m * n * k < PAR_MIN_FLOPS || num_threads() == 1 {
                for i in 0..m {
                    dispatch!(gemm_q8_strip(
                        &a[i * k..(i + 1) * k],
                        a_sums[i],
                        codes,
                        scales,
                        mins,
                        &mut out[i * n..(i + 1) * n],
                        k
                    ));
                }
                return;
            }
            // Same (query row × candidate strip) decomposition as the
            // parallel backend; each output element consumes its full k
            // extent so the split is invisible in the result.
            let strip = super::parallel::q8_strip_for(k);
            let tasks: Vec<(usize, usize, &mut [f32])> = out
                .chunks_mut(n)
                .enumerate()
                .flat_map(|(i, orow)| {
                    orow.chunks_mut(strip)
                        .enumerate()
                        .map(move |(s, oseg)| (i, s * strip, oseg))
                })
                .collect();
            steal_tasks(tasks, |(i, j0, oseg)| {
                let w = oseg.len();
                dispatch!(gemm_q8_strip(
                    &a[i * k..(i + 1) * k],
                    a_sums[i],
                    &codes[j0 * k..(j0 + w) * k],
                    &scales[j0..j0 + w],
                    &mins[j0..j0 + w],
                    oseg,
                    k
                ));
            });
            return;
        }
        ParallelBackend.gemm_q8_f32(a, a_sums, codes, scales, mins, out, m, k, n)
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if x.len() < PAR_MIN_ELEMS || num_threads() == 1 {
                dispatch!(adam_update(x, g, m, v, hp));
                return;
            }
            let gr = grain_for(x.len(), 1);
            let tasks: Vec<(((&mut [f32], &[f32]), &mut [f32]), &mut [f32])> = x
                .chunks_mut(gr)
                .zip(g.chunks(gr))
                .zip(m.chunks_mut(gr))
                .zip(v.chunks_mut(gr))
                .collect();
            steal_tasks(tasks, |(((xs, gs), ms), vs)| {
                dispatch!(adam_update(xs, gs, ms, vs, hp))
            });
            return;
        }
        ParallelBackend.adam_update(x, g, m, v, hp)
    }

    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        if m * n == 0 {
            return;
        }
        self.matmul(a, b, out, m, k, n);
        bias_act_rows(out, bias, n, act);
    }

    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1
            {
                for i in 0..batch {
                    dispatch!(softmax_matmul_block(
                        &scores[i * m * k..(i + 1) * m * k],
                        &v[i * k * n..(i + 1) * k * n],
                        &mut soft[i * m * k..(i + 1) * m * k],
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n
                    ));
                }
            } else {
                let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
                    .chunks_mut(m * k)
                    .enumerate()
                    .zip(out.chunks_mut(m * n))
                    .collect();
                steal_tasks(tasks, |((i, s), o)| {
                    dispatch!(softmax_matmul_block(
                        &scores[i * m * k..(i + 1) * m * k],
                        &v[i * k * n..(i + 1) * k * n],
                        s,
                        o,
                        m,
                        k,
                        n
                    ));
                });
            }
            return;
        }
        ParallelBackend.softmax_matmul(scores, v, soft, out, batch, m, k, n)
    }

    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1
            {
                for i in 0..batch {
                    dispatch!(outer_attention_block(
                        &a[i * m..(i + 1) * m],
                        &c[i * k..(i + 1) * k],
                        &v[i * k * n..(i + 1) * k * n],
                        tau,
                        &mut soft[i * m * k..(i + 1) * m * k],
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n
                    ));
                }
            } else {
                let tasks: Vec<((usize, &mut [f32]), &mut [f32])> = soft
                    .chunks_mut(m * k)
                    .enumerate()
                    .zip(out.chunks_mut(m * n))
                    .collect();
                steal_tasks(tasks, |((i, s), o)| {
                    dispatch!(outer_attention_block(
                        &a[i * m..(i + 1) * m],
                        &c[i * k..(i + 1) * k],
                        &v[i * k * n..(i + 1) * k * n],
                        tau,
                        s,
                        o,
                        m,
                        k,
                        n
                    ));
                });
            }
            return;
        }
        ParallelBackend.outer_attention(a, c, v, tau, soft, out, batch, m, k, n)
    }

    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1
            {
                let mut row = crate::pool::alloc_uninit(k);
                for i in 0..batch {
                    dispatch!(softmax_matmul_fwd_block(
                        &scores[i * m * k..(i + 1) * m * k],
                        &v[i * k * n..(i + 1) * k * n],
                        &mut row,
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n
                    ));
                }
                crate::pool::recycle(row);
            } else {
                let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
                steal_tasks(tasks, |(i, o)| {
                    let mut row = crate::pool::alloc_uninit(k);
                    dispatch!(softmax_matmul_fwd_block(
                        &scores[i * m * k..(i + 1) * m * k],
                        &v[i * k * n..(i + 1) * k * n],
                        &mut row,
                        o,
                        m,
                        k,
                        n
                    ));
                    crate::pool::recycle(row);
                });
            }
            return;
        }
        ParallelBackend.softmax_matmul_fwd(scores, v, out, batch, m, k, n)
    }

    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if batch * m * k == 0 {
            return;
        }
        // No column-major n == 1 special case here: the row kernel is already
        // explicitly vectorized and — unlike the autovectorized column walk —
        // shares its code path with the taped kernel, keeping taped and
        // tape-free results bit-identical under this backend.
        #[cfg(target_arch = "x86_64")]
        if supported() {
            if batch == 1 || n == 0 || batch * m * k * (n + 1) < PAR_MIN_FLOPS || num_threads() == 1
            {
                let mut row = crate::pool::alloc_uninit(k);
                for i in 0..batch {
                    dispatch!(outer_attention_fwd_block(
                        &a[i * m..(i + 1) * m],
                        &c[i * k..(i + 1) * k],
                        &v[i * k * n..(i + 1) * k * n],
                        tau,
                        &mut row,
                        &mut out[i * m * n..(i + 1) * m * n],
                        m,
                        k,
                        n
                    ));
                }
                crate::pool::recycle(row);
            } else {
                let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(m * n).enumerate().collect();
                steal_tasks(tasks, |(i, o)| {
                    let mut row = crate::pool::alloc_uninit(k);
                    dispatch!(outer_attention_fwd_block(
                        &a[i * m..(i + 1) * m],
                        &c[i * k..(i + 1) * k],
                        &v[i * k * n..(i + 1) * k * n],
                        tau,
                        &mut row,
                        o,
                        m,
                        k,
                        n
                    ));
                    crate::pool::recycle(row);
                });
            }
            return;
        }
        ParallelBackend.outer_attention_fwd(a, c, v, tau, out, batch, m, k, n)
    }

    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        if batch * m * k == 0 {
            return 0.0;
        }
        // only the TCA hot case n == 1 is vectorized; wider gradients take
        // the scalar-inner-loop parallel path
        #[cfg(target_arch = "x86_64")]
        if supported() && n == 1 {
            if batch == 1 || batch * m * k * 3 < PAR_MIN_FLOPS || num_threads() == 1 {
                let mut scratch = crate::pool::alloc_uninit(k);
                let mut gtau = 0.0f32;
                for i in 0..batch {
                    gtau += dispatch!(outer_attention_backward_block1(
                        &a[i * m..(i + 1) * m],
                        &c[i * k..(i + 1) * k],
                        &v[i * k..(i + 1) * k],
                        &soft[i * m * k..(i + 1) * m * k],
                        &gout[i * m..(i + 1) * m],
                        tau,
                        &mut ga[i * m..(i + 1) * m],
                        &mut gc[i * k..(i + 1) * k],
                        &mut gv[i * k..(i + 1) * k],
                        &mut scratch,
                        m,
                        k
                    ));
                }
                crate::pool::recycle(scratch);
                return gtau;
            }
            // per-batch gradient slices are disjoint; τ partials land in
            // per-entry slots so the final fold is deterministic
            let mut gtau_parts = vec![0.0f32; batch];
            let tasks: Vec<((((usize, &mut [f32]), &mut [f32]), &mut [f32]), &mut f32)> = ga
                .chunks_mut(m)
                .enumerate()
                .zip(gc.chunks_mut(k))
                .zip(gv.chunks_mut(k))
                .zip(gtau_parts.iter_mut())
                .collect();
            steal_tasks(tasks, |((((i, ga_i), gc_i), gv_i), slot)| {
                let mut scratch = crate::pool::alloc_uninit(k);
                *slot = dispatch!(outer_attention_backward_block1(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k..(i + 1) * k],
                    &soft[i * m * k..(i + 1) * m * k],
                    &gout[i * m..(i + 1) * m],
                    tau,
                    ga_i,
                    gc_i,
                    gv_i,
                    &mut scratch,
                    m,
                    k
                ));
                crate::pool::recycle(scratch);
            });
            return gtau_parts.iter().sum();
        }
        ParallelBackend
            .outer_attention_backward(a, c, v, soft, gout, tau, ga, gc, gv, batch, m, k, n)
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::backend::ScalarBackend;
    use crate::rng::Prng;
    use crate::tensor::fast_exp_lane;

    fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
        (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    // The integration parity suite exercises whatever level the host
    // detects (AVX2 on CI). These unit tests reach the SSE2 entries
    // directly — architecturally guaranteed on any x86_64 — so the
    // narrow-vector code paths stay covered on wide-vector hosts.

    #[test]
    fn sse2_entries_match_scalar_reference() {
        let mut rng = Prng::new(11);
        // softmax + layer_norm on an odd lane (tail coverage)
        for &lane in &[1usize, 3, 4, 7, 32, 33] {
            let rows = 5;
            let base = randv(rows * lane, &mut rng);
            let mut got = base.clone();
            let mut want = base.clone();
            unsafe { x86::sse2::softmax_lanes(&mut got, lane) };
            ScalarBackend.softmax_lanes(&mut want, lane);
            assert_close(&got, &want, 1e-5, &format!("sse2 softmax lane {lane}"));
            let mut got = base.clone();
            let mut want = base;
            unsafe { x86::sse2::layer_norm_lanes(&mut got, lane, 1e-5) };
            ScalarBackend.layer_norm_lanes(&mut want, lane, 1e-5);
            assert_close(&got, &want, 1e-5, &format!("sse2 layer_norm lane {lane}"));
        }
        // sum / dot against the scalar contract blocks
        let xs = randv(10_000, &mut rng);
        let ys = randv(10_000, &mut rng);
        let s = unsafe { x86::sse2::sum_blocks(&xs) };
        let d = unsafe { x86::sse2::dot_blocks(&xs, &ys) };
        assert!((s - ScalarBackend.sum(&xs)).abs() < 1e-2, "sse2 sum");
        assert!((d - ScalarBackend.dot(&xs, &ys)).abs() < 1e-2, "sse2 dot");
        // GEMM at each compiled row blocking
        let (m, k, n) = (13, 21, 17);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut want = vec![0.0; m * n];
        ScalarBackend.matmul(&a, &b, &mut want, m, k, n);
        for &mr in &[1usize, 2, 4, 6] {
            let mut got = vec![0.0; m * n];
            let mut pack = crate::pool::AlignedBuf::alloc(64 * 8);
            unsafe { x86::sse2::matmul(&a, &b, &mut got, m, k, n, mr, 64, &mut pack) };
            assert_close(&got, &want, 1e-5, &format!("sse2 gemm mr={mr}"));
        }
    }

    #[test]
    fn sse2_q8_entries_match_scalar_reference() {
        let mut rng = Prng::new(13);
        // dot_q8: lengths straddling the 4-float vector and its 4x unroll
        for &k in &[0usize, 1, 3, 4, 7, 15, 16, 17, 64, 257] {
            let a = randv(k, &mut rng);
            let codes: Vec<u8> = (0..k).map(|i| (i * 37 % 256) as u8).collect();
            let want = ScalarBackend.dot_q8(&a, &codes);
            let got = unsafe { x86::sse2::dot_q8(&a, &codes) };
            assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "sse2 dot_q8 k={k}: {got} vs {want}"
            );
        }
        // one gemm strip: a query row against affine-quantized rows
        let (k, n) = (29, 11);
        let arow = randv(k, &mut rng);
        let a_sum: f32 = arow.iter().sum();
        let codes: Vec<u8> = (0..n * k).map(|i| (i * 53 % 256) as u8).collect();
        let scales: Vec<f32> = (0..n).map(|j| 0.01 + j as f32 * 1e-3).collect();
        let mins = randv(n, &mut rng);
        let mut want = vec![0.0f32; n];
        ScalarBackend.gemm_q8_f32(&arow, &[a_sum], &codes, &scales, &mins, &mut want, 1, k, n);
        let mut got = vec![0.0f32; n];
        unsafe { x86::sse2::gemm_q8_strip(&arow, a_sum, &codes, &scales, &mins, &mut got, k) };
        assert_close(&got, &want, 1e-4, "sse2 gemm_q8_strip");
    }

    #[test]
    fn vector_exp_is_bit_identical_to_fast_exp_lane() {
        // dense grid over the interesting range plus the saturation edges
        let mut xs: Vec<f32> = (-2000..=2000).map(|i| i as f32 * 0.047).collect();
        xs.extend_from_slice(&[
            0.0,
            -0.0,
            87.3,
            -87.3,
            88.0,
            -88.0,
            100.0,
            -100.0,
            1e-30,
            -1e-30,
            f32::MIN_POSITIVE,
        ]);
        let want: Vec<f32> = xs.iter().map(|&x| fast_exp_lane(x)).collect();
        for sse in [false, true] {
            let mut got = xs.clone();
            if sse {
                unsafe { x86::sse2::exp_slice(&mut got) };
            } else {
                if level() != Level::Avx2Fma {
                    continue;
                }
                unsafe { x86::avx2::exp_slice(&mut got) };
            }
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "exp[{i}] (x={}) diverges (sse={sse}): {g} vs {w}",
                    xs[i]
                );
            }
        }
    }

    #[test]
    fn vector_exp_propagates_nan_and_saturates_inf() {
        let mut v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0];
        exp_inplace(&mut v);
        assert!(v[0].is_nan(), "NaN must stay NaN");
        assert_eq!(v[1], f32::MAX, "+inf saturates like fast_exp_lane");
        assert_eq!(v[2], 0.0, "-inf flushes to zero");
        assert_eq!(v[3].to_bits(), fast_exp_lane(1.0).to_bits());
    }

    #[test]
    fn autotune_installs_a_compiled_tile() {
        let (mr, kc) = autotune();
        assert!(matches!(mr, 1 | 2 | 4 | 6), "mr={mr}");
        assert!((16..=4096).contains(&kc), "kc={kc}");
        assert_eq!(tile(), (mr, kc));
        assert!(descr().contains(&format!("mr={mr}")));
    }
}
