//! Reference single-threaded backend: the seed repo's original loops.
//!
//! Bitwise-stable semantics; the oracle every parity test compares against.
//! Reductions follow the fixed-block summation contract documented on
//! [`Backend::sum`](super::Backend::sum), so scalar and parallel results are
//! bit-equal for any thread count.

use super::{
    adam_chunk, dot_block, layer_norm_backward_one_lane, layer_norm_one_lane, softmax_one_lane,
    sum_block, AdamHp, Backend, SUM_BLOCK,
};

/// Reference single-threaded backend: the seed repo's original loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        crate::tensor::matmul_kernel(a, b, out, m, k, n);
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        if lane == 0 {
            return;
        }
        for l in data.chunks_mut(lane) {
            softmax_one_lane(l);
        }
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        if lane == 0 {
            return;
        }
        for l in data.chunks_mut(lane) {
            layer_norm_one_lane(l, eps);
        }
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        if lane == 0 {
            return;
        }
        for ((xs, gs), os) in x.chunks(lane).zip(g.chunks(lane)).zip(out.chunks_mut(lane)) {
            layer_norm_backward_one_lane(xs, gs, os, eps);
        }
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        body(data);
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        body(src, dst);
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        body(a, b, dst);
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        // fixed-block fold (see the summation contract on `Backend::sum`):
        // bit-equal to the parallel backend for any thread count
        xs.chunks(SUM_BLOCK).map(sum_block).sum()
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        debug_assert_eq!(xs.len(), ys.len());
        xs.chunks(SUM_BLOCK)
            .zip(ys.chunks(SUM_BLOCK))
            .map(|(a, b)| dot_block(a, b))
            .sum()
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        adam_chunk(x, g, m, v, hp);
    }
}
