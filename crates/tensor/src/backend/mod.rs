//! Pluggable kernel backends: the dispatch seam for every hot tensor op.
//!
//! All dense kernels the stack spends wall-clock in — GEMM (plain, batched,
//! and the im2col GEMMs inside conv2d), rowwise softmax / layer-norm, and the
//! elementwise map / zip / reduce drivers — are routed through the [`Backend`]
//! trait. Three implementations ship:
//!
//! - [`ScalarBackend`]: the original single-threaded reference loops.
//!   Bitwise-stable semantics; the oracle every parity test compares against.
//! - [`ParallelBackend`]: cache-blocked, register-tiled GEMM plus
//!   `std::thread::scope` row-panel work-stealing sized by
//!   [`std::thread::available_parallelism`]. No external crates. Within each
//!   output element the accumulation order is identical to the scalar kernel,
//!   so GEMM results match the reference bit-for-bit.
//! - [`SimdBackend`]: explicit `std::arch` x86_64 intrinsics (AVX2+FMA or
//!   SSE2, chosen once at runtime via `is_x86_feature_detected!`) for the
//!   kernels that dominate the TCA step; delegates to the parallel backend
//!   on hosts without SIMD support and for the kernels that don't vectorise.
//!   See the [`simd`] module docs for the safety argument.
//!
//! The active backend is a process-wide setting: [`set_backend`] selects one
//! programmatically, the `CAME_BACKEND` environment variable (`scalar` |
//! `parallel` | `simd`) selects one at launch, and the default is `simd` when
//! the host supports it, else `parallel`. Thread count follows
//! `available_parallelism`, overridable with `CAME_THREADS`.
//!
//! Elementwise ops keep their inner loops monomorphised: callers hand the
//! backend a *chunk* closure (`&dyn Fn(&[f32], &mut [f32])`), so the dynamic
//! dispatch cost is paid once per cache-sized chunk, not once per element.
//!
//! # Summation-order contract
//!
//! Floating-point addition is not associative, so reductions (`sum`, `dot`)
//! pin one canonical grouping that every backend follows: the input is cut
//! into fixed [`SUM_BLOCK`]-element blocks at deterministic offsets
//! (`0..4096`, `4096..8192`, …), each block is reduced independently, and the
//! per-block partials are folded left-to-right in block order. The block
//! partition depends only on the input length — never on thread count, chunk
//! grain, or backend — so:
//!
//! - scalar and parallel reductions are **bitwise equal** (both reduce inside
//!   a block in ascending element order);
//! - the simd backend reduces inside a block with striped vector accumulators
//!   (a different intra-block association), which agrees with the scalar
//!   grouping to well within the 1e-5 parity tolerance but not bit-for-bit;
//! - results are reproducible run-to-run on every backend, because no
//!   grouping decision is made dynamically.

use std::sync::atomic::{AtomicU8, Ordering};

mod parallel;
mod scalar;
pub mod simd;

pub(crate) use parallel::q8_strip_for;
pub use parallel::{num_threads, run_tasks, run_tasks_min_work, ParallelBackend};
pub use scalar::ScalarBackend;
pub use simd::SimdBackend;

/// Which backend implementation to dispatch through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Reference single-threaded loops.
    Scalar,
    /// Cache-blocked, multithreaded kernels.
    Parallel,
    /// Explicit `std::arch` vectorized kernels (runtime feature detection,
    /// parallel fallback where unsupported).
    Simd,
}

impl BackendKind {
    /// Parse `"scalar"` / `"parallel"` / `"simd"` (case-insensitive; a few
    /// aliases accepted).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" | "ref" | "reference" => Some(BackendKind::Scalar),
            "parallel" | "par" | "blocked" => Some(BackendKind::Parallel),
            "simd" | "vector" | "avx" => Some(BackendKind::Simd),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Parallel => "parallel",
            BackendKind::Simd => "simd",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::parse(s).ok_or_else(|| format!("unknown backend {s:?}"))
    }
}

/// Adam update hyper-parameters plus the step's bias corrections, packed so
/// the fused optimiser kernel has one argument.
#[derive(Clone, Copy, Debug)]
pub struct AdamHp {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// `1 - beta1^t` for the current step `t`.
    pub bias1: f32,
    /// `1 - beta2^t` for the current step `t`.
    pub bias2: f32,
}

/// Elementwise activation applied by the fused GEMM epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation (plain GEMM + optional bias).
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Apply the activation to one value. Uses the same scalar functions as
    /// the unfused graph ops, so fused and composed results are identical.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => crate::graph::sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }
}

/// The kernel dispatch trait. `out` GEMM buffers are *accumulated into*
/// (`C += A·B`); pass zeros for a plain product. Lane kernels treat their
/// buffer as contiguous rows of length `lane`.
pub trait Backend: Send + Sync {
    /// Canonical backend name.
    fn name(&self) -> &'static str;

    /// `out[m,n] += a[m,k] · b[k,n]`, row-major.
    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Batched `out[i] += a[i] · b[i]` over `batch` independent `[m,k]x[k,n]`
    /// products stored contiguously.
    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..batch {
            self.matmul(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// In-place stabilised softmax over each contiguous lane of length `lane`.
    fn softmax_lanes(&self, data: &mut [f32], lane: usize);

    /// In-place layer normalisation (no affine) over contiguous lanes.
    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32);

    /// Backward of [`Backend::layer_norm_lanes`]: writes `d loss/d x` into
    /// `out` given input `x` and upstream gradient `g`.
    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    );

    /// Elementwise driver over one mutable buffer. `body` is invoked on
    /// cache-sized chunks (the whole buffer under the scalar backend).
    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync));

    /// Elementwise driver `src -> dst` (equal lengths, chunked in lockstep).
    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync));

    /// Elementwise driver `(a, b) -> dst` (equal lengths, chunked in lockstep).
    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    );

    /// Deterministic sum of all elements, following the module-level
    /// summation-order contract (fixed [`SUM_BLOCK`] grouping).
    fn sum(&self, xs: &[f32]) -> f32;

    /// Deterministic dot product (`xs.len() == ys.len()`), following the
    /// module-level summation-order contract.
    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32;

    /// Fused Adam step over one parameter tensor's buffers.
    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp);

    /// Fused `out = act(out + a·b + bias)`: GEMM accumulation followed by a
    /// row-broadcast bias add and elementwise activation in one pass while
    /// the output panel is cache-hot. `bias` has length `n` when present.
    /// With zeroed `out` this equals the composed
    /// `act(matmul(a, b) + bias)` bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        self.matmul(a, b, out, m, k, n);
        bias_act_rows(out, bias, n, act);
    }

    /// Fused attention-weight application: for each of `batch` independent
    /// problems, row-softmax `scores[m,k]` into `soft` and immediately
    /// accumulate `out[m,n] += softmax(scores)·v[k,n]`. The softmax result
    /// lands in the caller-provided `soft` scratch (needed for backward)
    /// instead of becoming a separate tape node. Equals the composed
    /// softmax-then-batched-matmul bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        for i in 0..batch {
            softmax_matmul_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut soft[i * m * k..(i + 1) * m * k],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// Fully fused scaled-outer-product attention, the TCA hot path: for each
    /// batch entry, score row `i` is built on the fly as `a[i]·c[j]/τ`
    /// directly inside `soft`, row-softmaxed in place, and accumulated into
    /// `out[m,n] += soft·v[k,n]`. The `[m,k]` score matrix never exists as a
    /// tensor — only the softmax survives (the backward pass needs it). With
    /// zeroed `out` this agrees with the composed outer-product → divide-by-τ
    /// → softmax → matmul chain to float rounding (the `/τ` is hoisted per
    /// row), within the 1e-5 parity budget.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        for i in 0..batch {
            outer_attention_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut soft[i * m * k..(i + 1) * m * k],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
    }

    /// Forward-only [`Backend::softmax_matmul`]: identical per-row math and
    /// accumulation order, but the softmax lives in a pooled `k`-float row
    /// that is recycled immediately instead of a `[batch,m,k]` tensor the
    /// backward pass would read. Tape-free inference calls this.
    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        let mut row = crate::pool::alloc_uninit(k);
        for i in 0..batch {
            softmax_matmul_fwd_block(
                &scores[i * m * k..(i + 1) * m * k],
                &v[i * k * n..(i + 1) * k * n],
                &mut row,
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(row);
    }

    /// Forward-only [`Backend::outer_attention`]: same fused score build,
    /// softmax, and ascending-`k` contraction, bit-equal to the
    /// tape-recording kernel. The attention case `n == 1` takes the
    /// column-major lane-parallel path ([`outer_attention_fwd_col_block`]);
    /// other shapes reuse the row walk with a pooled `k`-float softmax row.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m * k == 0 {
            return;
        }
        if n == 1 {
            let mut u = crate::pool::alloc_uninit(m * k);
            let mut lanes = crate::pool::alloc_uninit(3 * m);
            for i in 0..batch {
                outer_attention_fwd_col_block(
                    &a[i * m..(i + 1) * m],
                    &c[i * k..(i + 1) * k],
                    &v[i * k..(i + 1) * k],
                    tau,
                    &mut u,
                    &mut lanes,
                    &mut out[i * m..(i + 1) * m],
                    m,
                    k,
                );
            }
            crate::pool::recycle(lanes);
            crate::pool::recycle(u);
            return;
        }
        let mut row = crate::pool::alloc_uninit(k);
        for i in 0..batch {
            outer_attention_fwd_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                tau,
                &mut row,
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(row);
    }

    /// Backward of [`Backend::outer_attention`]: reads the saved row softmax
    /// and the upstream gradient `gout [batch,m,n]`, accumulates into
    /// `ga [batch,m]`, `gc [batch,k]`, `gv [batch,k,n]`, and returns the
    /// scalar gradient wrt `τ`. Needs no `[m,k]`-sized scratch — every row is
    /// reduced in a `k`-float buffer while it is cache-hot.
    #[allow(clippy::too_many_arguments)]
    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        if m * k == 0 {
            return 0.0;
        }
        let mut scratch = crate::pool::alloc_uninit(k);
        let mut gtau = 0.0f32;
        for i in 0..batch {
            gtau += outer_attention_backward_block(
                &a[i * m..(i + 1) * m],
                &c[i * k..(i + 1) * k],
                &v[i * k * n..(i + 1) * k * n],
                &soft[i * m * k..(i + 1) * m * k],
                &gout[i * m * n..(i + 1) * m * n],
                tau,
                &mut ga[i * m..(i + 1) * m],
                &mut gc[i * k..(i + 1) * k],
                &mut gv[i * k * n..(i + 1) * k * n],
                &mut scratch,
                m,
                k,
                n,
            );
        }
        crate::pool::recycle(scratch);
        gtau
    }

    /// Fused-dequant dot product over one quantized row: the *raw* weighted
    /// code sum `Σ_t a[t] · codes[t]` with the u8 codes widened to f32 in
    /// registers — the caller applies the per-row affine
    /// (`min · Σa + scale · dot_q8`) so no dequantized f32 row is ever
    /// materialized. Accumulation is in ascending element order (rows are
    /// embedding-dim sized, far below [`SUM_BLOCK`], so no block grouping);
    /// scalar and parallel backends are bitwise identical, SIMD is allowed
    /// the usual reassociation tolerance.
    ///
    /// # Panics
    /// Panics (debug) if `a.len() != codes.len()`.
    fn dot_q8(&self, a: &[f32], codes: &[u8]) -> f32 {
        dot_q8_block(a, codes)
    }

    /// Fused dequant-scoring GEMM over per-row affine-quantized u8 rows:
    ///
    /// ```text
    /// out[i*n + j] = mins[j] * a_sums[i]
    ///              + scales[j] * Σ_t a[i*k + t] · codes[j*k + t]
    /// ```
    ///
    /// with `a` the row-major `[m, k]` query block, `a_sums[i]` the
    /// precomputed element sum of query row `i`, and `codes` the row-major
    /// `[n, k]` u8 code block with per-row `scales` / `mins`. Every output
    /// element consumes its full `k` extent in one fixed ascending pass, so
    /// scalar and parallel results are bitwise identical regardless of task
    /// decomposition; SIMD gets the reassociation tolerance.
    ///
    /// # Panics
    /// Panics (debug) on slice-length mismatches against `m`/`k`/`n`.
    #[allow(clippy::too_many_arguments)]
    fn gemm_q8_f32(
        &self,
        a: &[f32],
        a_sums: &[f32],
        codes: &[u8],
        scales: &[f32],
        mins: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        check_q8_shapes(a, a_sums, codes, scales, mins, out, m, k, n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            gemm_q8_strip(arow, a_sums[i], codes, scales, mins, orow, k);
        }
    }
}

// --------------------------------------------------------------------------
// shared reduction blocks (the summation-order contract's unit of grouping)
// --------------------------------------------------------------------------

/// Fixed reduction block: reductions group their input into `SUM_BLOCK`-sized
/// blocks at deterministic offsets regardless of backend or thread count (see
/// the module-level summation-order contract).
pub(crate) const SUM_BLOCK: usize = 4096;

/// Reduce one contract block in ascending element order.
#[inline]
pub(crate) fn sum_block(c: &[f32]) -> f32 {
    c.iter().sum()
}

/// Reduce one contract dot-product block in ascending element order.
#[inline]
pub(crate) fn dot_block(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Raw weighted code sum for [`Backend::dot_q8`]: ascending element order,
/// codes widened `u8 → f32` per element. The reference every backend's
/// scalar/parallel path must match bitwise.
#[inline]
pub(crate) fn dot_q8_block(a: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(a.len(), codes.len(), "dot_q8 length mismatch");
    a.iter().zip(codes).map(|(&x, &c)| x * c as f32).sum()
}

/// One output strip of [`Backend::gemm_q8_f32`]: query row `arow` (sum
/// `a_sum`) against quantized rows `codes [strip, k]` with per-row affine
/// `scales` / `mins`, written to `out[j]` in the fixed per-element order the
/// trait documents. Shared by the scalar default and the parallel override so
/// their task decompositions stay bitwise identical.
#[inline]
pub(crate) fn gemm_q8_strip(
    arow: &[f32],
    a_sum: f32,
    codes: &[u8],
    scales: &[f32],
    mins: &[f32],
    out: &mut [f32],
    k: usize,
) {
    for (j, o) in out.iter_mut().enumerate() {
        let crow = &codes[j * k..(j + 1) * k];
        *o = mins[j] * a_sum + scales[j] * dot_q8_block(arow, crow);
    }
}

/// Debug-time shape contract for [`Backend::gemm_q8_f32`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_q8_shapes(
    a: &[f32],
    a_sums: &[f32],
    codes: &[u8],
    scales: &[f32],
    mins: &[f32],
    out: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k, "gemm_q8 a shape");
    debug_assert_eq!(a_sums.len(), m, "gemm_q8 a_sums shape");
    debug_assert_eq!(codes.len(), n * k, "gemm_q8 codes shape");
    debug_assert_eq!(scales.len(), n, "gemm_q8 scales shape");
    debug_assert_eq!(mins.len(), n, "gemm_q8 mins shape");
    debug_assert_eq!(out.len(), m * n, "gemm_q8 out shape");
}

// --------------------------------------------------------------------------
// shared lane kernels (per-lane math identical across backends)
// --------------------------------------------------------------------------

#[inline]
pub(crate) fn softmax_one_lane(lane: &mut [f32]) {
    let mut mx = f32::NEG_INFINITY;
    for &v in lane.iter() {
        mx = mx.max(v);
    }
    let mut z = 0.0;
    for v in lane.iter_mut() {
        let e = crate::tensor::fast_exp(*v - mx);
        *v = e;
        z += e;
    }
    let inv = 1.0 / z;
    for v in lane.iter_mut() {
        *v *= inv;
    }
}

#[inline]
pub(crate) fn layer_norm_one_lane(lane: &mut [f32], eps: f32) {
    let d = lane.len() as f32;
    let mean = lane.iter().sum::<f32>() / d;
    let var = lane.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
    let inv = 1.0 / (var + eps).sqrt();
    for v in lane.iter_mut() {
        *v = (*v - mean) * inv;
    }
}

#[inline]
pub(crate) fn layer_norm_backward_one_lane(xs: &[f32], gs: &[f32], os: &mut [f32], eps: f32) {
    let d = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / d;
    let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
    let inv = 1.0 / (var + eps).sqrt();
    let mut g_mean = 0.0f32;
    let mut gy_mean = 0.0f32;
    for (&g, &x) in gs.iter().zip(xs) {
        g_mean += g;
        gy_mean += g * (x - mean) * inv;
    }
    g_mean /= d;
    gy_mean /= d;
    for ((o, &g), &x) in os.iter_mut().zip(gs).zip(xs) {
        let y = (x - mean) * inv;
        *o = inv * (g - g_mean - y * gy_mean);
    }
}

#[inline]
pub(crate) fn adam_chunk(x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
    for i in 0..x.len() {
        let gi = g[i] + hp.weight_decay * x[i];
        m[i] = hp.beta1 * m[i] + (1.0 - hp.beta1) * gi;
        v[i] = hp.beta2 * v[i] + (1.0 - hp.beta2) * gi * gi;
        let mhat = m[i] / hp.bias1;
        let vhat = v[i] / hp.bias2;
        x[i] -= hp.lr * mhat / (vhat.sqrt() + hp.eps);
    }
}

/// Fused-GEMM epilogue: add the row-broadcast bias and apply the activation
/// over rows of length `n`.
#[inline]
pub(crate) fn bias_act_rows(out: &mut [f32], bias: Option<&[f32]>, n: usize, act: Activation) {
    match bias {
        Some(b) => {
            debug_assert_eq!(b.len(), n);
            for row in out.chunks_mut(n.max(1)) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o = act.apply(*o + bv);
                }
            }
        }
        None => {
            if act != Activation::Identity {
                for o in out.iter_mut() {
                    *o = act.apply(*o);
                }
            }
        }
    }
}

/// One batch entry of the fused softmax×matmul: row-softmax `scores[m,k]`
/// into `soft`, then `out[m,n] += soft·v[k,n]`. The accumulation over `k` is
/// ascending, matching both GEMM kernels, so results are bitwise equal to
/// the composed ops.
#[inline]
pub(crate) fn softmax_matmul_block(
    scores: &[f32],
    v: &[f32],
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        let srow = &mut soft[r * k..(r + 1) * k];
        srow.copy_from_slice(&scores[r * k..(r + 1) * k]);
        softmax_one_lane(srow);
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, &w) in srow.iter().enumerate() {
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the fused outer-product attention: score row `i` is
/// `(a[i]/τ)·c[j]` built straight in its `soft` row, softmaxed, then
/// `out[i,:] += soft_row·v` with ascending-`k` accumulation. Three passes per
/// row instead of the composed path's five: the row max rides along with the
/// score generation and the normalisation rides along with the contraction.
/// Hoisting the `/τ` out of the inner loop trades millions of per-element
/// divisions for one per row (agrees with the composed mul-then-div ordering
/// to float rounding, within the 1e-5 parity budget).
#[inline]
pub(crate) fn outer_attention_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    soft: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        let srow = &mut soft[r * k..(r + 1) * k];
        let ars = a[r] / tau;
        let mut mx = f32::NEG_INFINITY;
        for (s, &cj) in srow.iter_mut().zip(c) {
            let sc = ars * cj;
            *s = sc;
            mx = mx.max(sc);
        }
        let mut z = 0.0;
        for s in srow.iter_mut() {
            let e = crate::tensor::fast_exp(*s - mx);
            *s = e;
            z += e;
        }
        let inv_z = 1.0 / z;
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, s) in srow.iter_mut().enumerate() {
            *s *= inv_z;
            let w = *s;
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only softmax×matmul: per row the softmax
/// lands in the caller's `k`-float `row` scratch (reused across rows) and is
/// contracted ascending-`k`, matching [`softmax_matmul_block`] bit-for-bit.
#[inline]
pub(crate) fn softmax_matmul_fwd_block(
    scores: &[f32],
    v: &[f32],
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for r in 0..m {
        row.copy_from_slice(&scores[r * k..(r + 1) * k]);
        softmax_one_lane(row);
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, &w) in row.iter().enumerate() {
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only outer-product attention: the same
/// three passes as [`outer_attention_block`] with the softmax confined to the
/// caller's reused `k`-float `row` scratch.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn outer_attention_fwd_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    row: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(row.len(), k, "scratch must span the attention lane");
    for r in 0..m {
        let ars = a[r] / tau;
        let mut mx = f32::NEG_INFINITY;
        for (s, &cj) in row.iter_mut().zip(c) {
            let sc = ars * cj;
            *s = sc;
            mx = mx.max(sc);
        }
        let mut z = 0.0;
        for s in row.iter_mut() {
            let e = crate::tensor::fast_exp(*s - mx);
            *s = e;
            z += e;
        }
        let inv_z = 1.0 / z;
        let orow = &mut out[r * n..(r + 1) * n];
        for (p, s) in row.iter_mut().enumerate() {
            *s *= inv_z;
            let w = *s;
            let vrow = &v[p * n..(p + 1) * n];
            for (o, &x) in orow.iter_mut().zip(vrow) {
                *o += w * x;
            }
        }
    }
}

/// One batch entry of the forward-only outer attention, specialised for the
/// TCA case `n == 1` and laid out column-major so the *rows* become SIMD
/// lanes. Every per-row reduction (running max, softmax normaliser, weighted
/// contraction) advances in ascending-`j` lock-step across all rows, i.e. in
/// exactly the order [`outer_attention_block`] walks each row — the result is
/// bit-identical to the taped kernel — but each pass is a contiguous
/// element-wise loop over `m`-float row-lanes that the compiler vectorises
/// (the row-serial form is latency-bound on its per-row accumulator chains
/// and its branchy scalar `exp`). Only reachable from tape-free inference;
/// the taped kernel keeps the row layout its backward pass reads.
///
/// `u` is a `[k, m]` column-major scratch holding scores then exponentials;
/// `lanes` is `3·m` floats of per-row state (`a/τ` | running max | softmax
/// normaliser, the last reused for its reciprocal).
pub(crate) fn outer_attention_fwd_col_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    tau: f32,
    u: &mut [f32],
    lanes: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
) {
    debug_assert_eq!(u.len(), m * k, "column scratch must span the score block");
    debug_assert_eq!(lanes.len(), 3 * m, "lane scratch holds three m-vectors");
    let (ars, rest) = lanes.split_at_mut(m);
    let (mx, z) = rest.split_at_mut(m);
    for (s, &ar) in ars.iter_mut().zip(a) {
        *s = ar / tau;
    }
    mx.fill(f32::NEG_INFINITY);
    z.fill(0.0);
    // scores + running row max, ascending j
    for (j, &cj) in c.iter().enumerate() {
        let col = &mut u[j * m..(j + 1) * m];
        for ((s, &ar), m_r) in col.iter_mut().zip(ars.iter()).zip(mx.iter_mut()) {
            let sc = ar * cj;
            *s = sc;
            *m_r = m_r.max(sc);
        }
    }
    // exponentials + normaliser, ascending j per row
    for j in 0..k {
        let col = &mut u[j * m..(j + 1) * m];
        for ((s, &m_r), z_r) in col.iter_mut().zip(mx.iter()).zip(z.iter_mut()) {
            let e = crate::tensor::fast_exp_lane(*s - m_r);
            *s = e;
            *z_r += e;
        }
    }
    for z_r in z.iter_mut() {
        *z_r = 1.0 / *z_r;
    }
    // normalised weight times v, ascending j per row
    for (j, &vj) in v.iter().enumerate() {
        let col = &u[j * m..(j + 1) * m];
        for ((o, &e), &inv_z) in out.iter_mut().zip(col).zip(z.iter()) {
            *o += e * inv_z * vj;
        }
    }
}

/// One batch entry of the outer-attention backward; returns this entry's
/// contribution to the τ gradient. `scratch` is a caller-provided `k`-float
/// buffer: per row it first holds `∂L/∂soft`, then is transformed in place
/// into the softmax-backward `∂L/∂u` (u = scaled scores) for the final
/// reductions onto `ga`, `gc`, and τ.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn outer_attention_backward_block(
    a: &[f32],
    c: &[f32],
    v: &[f32],
    soft: &[f32],
    gout: &[f32],
    tau: f32,
    ga: &mut [f32],
    gc: &mut [f32],
    gv: &mut [f32],
    scratch: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> f32 {
    let inv = 1.0 / tau;
    let mut gtau = 0.0f32;
    for r in 0..m {
        let srow = &soft[r * k..(r + 1) * k];
        let grow = &gout[r * n..(r + 1) * n];
        // gsoft_row[j] = gout_row · v[j,:]; gv[j,:] += soft_row[j] * gout_row
        let mut dot = 0.0f32;
        for j in 0..k {
            let vrow = &v[j * n..(j + 1) * n];
            let gvrow = &mut gv[j * n..(j + 1) * n];
            let w = srow[j];
            let mut acc = 0.0f32;
            for ((gv_o, &go), &vx) in gvrow.iter_mut().zip(grow).zip(vrow) {
                acc += go * vx;
                *gv_o += w * go;
            }
            scratch[j] = acc;
            dot += acc * w;
        }
        // softmax backward: ∂L/∂u = (gsoft − Σ gsoft⊙soft) ⊙ soft
        let ar = a[r];
        let ar_inv = ar * inv;
        let mut row_c_dot = 0.0f32;
        for j in 0..k {
            let gs = (scratch[j] - dot) * srow[j];
            row_c_dot += gs * c[j];
            gc[j] += gs * ar_inv;
        }
        ga[r] += row_c_dot * inv;
        // u = a·c/τ ⇒ ∂u/∂τ = −a·c/τ²
        gtau -= ar * row_c_dot * inv * inv;
    }
    gtau
}

// --------------------------------------------------------------------------
// global selection
// --------------------------------------------------------------------------

static SCALAR: ScalarBackend = ScalarBackend;
static PARALLEL: ParallelBackend = ParallelBackend;
static SIMD: SimdBackend = SimdBackend;

const KIND_UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(KIND_UNSET);

/// The default backend when nothing is selected: SIMD where the host has a
/// vector unit the simd module targets, else parallel.
fn default_kind() -> BackendKind {
    if simd::supported() {
        BackendKind::Simd
    } else {
        BackendKind::Parallel
    }
}

fn kind_from_env() -> BackendKind {
    match std::env::var("CAME_BACKEND") {
        Ok(s) => BackendKind::parse(&s).unwrap_or_else(|| {
            let d = default_kind();
            eprintln!(
                "[came-tensor] unknown CAME_BACKEND={s:?} (expected \"scalar\", \
                 \"parallel\", or \"simd\"); using {}",
                d.name()
            );
            d
        }),
        Err(_) => default_kind(),
    }
}

/// Select the process-wide backend programmatically (overrides any earlier
/// choice, including `CAME_BACKEND`).
pub fn set_backend(kind: BackendKind) {
    ACTIVE.store(kind as u8, Ordering::SeqCst);
}

/// Re-read `CAME_BACKEND` and make it the active backend (auto-detected when
/// the variable is unset or unrecognised). Binaries call this at startup so
/// the environment wins over any backend a library default left behind.
pub fn init_from_env() -> BackendKind {
    let k = kind_from_env();
    set_backend(k);
    k
}

/// The active [`BackendKind`], initialising from `CAME_BACKEND` on first use.
pub fn kind() -> BackendKind {
    match ACTIVE.load(Ordering::SeqCst) {
        0 => BackendKind::Scalar,
        1 => BackendKind::Parallel,
        2 => BackendKind::Simd,
        _ => init_from_env(),
    }
}

/// The active backend implementation.
///
/// When observability is on ([`came_obs::enabled`]), dispatch goes through a
/// [`TimedBackend`] wrapper that records per-kernel call counts and wall ns
/// into `kernel.*` histograms; otherwise the raw backend is returned and the
/// only cost is one relaxed atomic load.
pub fn active() -> &'static dyn Backend {
    let k = kind();
    if came_obs::enabled() {
        match k {
            BackendKind::Scalar => &TIMED_SCALAR,
            BackendKind::Parallel => &TIMED_PARALLEL,
            BackendKind::Simd => &TIMED_SIMD,
        }
    } else {
        of(k)
    }
}

/// A specific backend implementation by kind (used by benches and parity
/// tests to address both sides without mutating the global selection).
/// Never wrapped in kernel timing, so parity harnesses measure raw kernels.
pub fn of(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Parallel => &PARALLEL,
        BackendKind::Simd => &SIMD,
    }
}

// --------------------------------------------------------------------------
// kernel-dispatch instrumentation
// --------------------------------------------------------------------------

static TIMED_SCALAR: TimedBackend = TimedBackend { inner: &SCALAR };
static TIMED_PARALLEL: TimedBackend = TimedBackend { inner: &PARALLEL };
static TIMED_SIMD: TimedBackend = TimedBackend { inner: &SIMD };

/// Decorator that forwards every kernel to `inner` and records the call's
/// wall time into the `kernel.<method>` histogram (count + ns live in the
/// same histogram: `count()` is calls, `sum()` is total ns). Every trait
/// method is overridden — including the ones with default bodies — so
/// composite kernels (`matmul_batched`, the fused attention paths) are timed
/// once at the dispatch boundary rather than once per inner GEMM.
struct TimedBackend {
    inner: &'static dyn Backend,
}

impl TimedBackend {
    #[inline]
    fn timed<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        came_obs::record_ns(name, t0.elapsed().as_nanos() as u64);
        r
    }
}

impl Backend for TimedBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn matmul(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.timed("kernel.matmul", || self.inner.matmul(a, b, out, m, k, n))
    }

    fn matmul_batched(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.matmul_batched", || {
            self.inner.matmul_batched(a, b, out, batch, m, k, n)
        })
    }

    fn softmax_lanes(&self, data: &mut [f32], lane: usize) {
        self.timed("kernel.softmax_lanes", || {
            self.inner.softmax_lanes(data, lane)
        })
    }

    fn layer_norm_lanes(&self, data: &mut [f32], lane: usize, eps: f32) {
        self.timed("kernel.layer_norm_lanes", || {
            self.inner.layer_norm_lanes(data, lane, eps)
        })
    }

    fn layer_norm_backward_lanes(
        &self,
        x: &[f32],
        g: &[f32],
        out: &mut [f32],
        lane: usize,
        eps: f32,
    ) {
        self.timed("kernel.layer_norm_backward_lanes", || {
            self.inner.layer_norm_backward_lanes(x, g, out, lane, eps)
        })
    }

    fn run1(&self, data: &mut [f32], body: &(dyn Fn(&mut [f32]) + Sync)) {
        self.timed("kernel.run1", || self.inner.run1(data, body))
    }

    fn run2(&self, src: &[f32], dst: &mut [f32], body: &(dyn Fn(&[f32], &mut [f32]) + Sync)) {
        self.timed("kernel.run2", || self.inner.run2(src, dst, body))
    }

    fn run3(
        &self,
        a: &[f32],
        b: &[f32],
        dst: &mut [f32],
        body: &(dyn Fn(&[f32], &[f32], &mut [f32]) + Sync),
    ) {
        self.timed("kernel.run3", || self.inner.run3(a, b, dst, body))
    }

    fn sum(&self, xs: &[f32]) -> f32 {
        self.timed("kernel.sum", || self.inner.sum(xs))
    }

    fn dot(&self, xs: &[f32], ys: &[f32]) -> f32 {
        self.timed("kernel.dot", || self.inner.dot(xs, ys))
    }

    fn dot_q8(&self, a: &[f32], codes: &[u8]) -> f32 {
        self.timed("kernel.dot_q8", || self.inner.dot_q8(a, codes))
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_q8_f32(
        &self,
        a: &[f32],
        a_sums: &[f32],
        codes: &[u8],
        scales: &[f32],
        mins: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.gemm_q8_f32", || {
            self.inner
                .gemm_q8_f32(a, a_sums, codes, scales, mins, out, m, k, n)
        })
    }

    fn adam_update(&self, x: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], hp: &AdamHp) {
        self.timed("kernel.adam_update", || {
            self.inner.adam_update(x, g, m, v, hp)
        })
    }

    fn gemm_bias_act(
        &self,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) {
        self.timed("kernel.gemm_bias_act", || {
            self.inner.gemm_bias_act(a, b, bias, out, m, k, n, act)
        })
    }

    fn softmax_matmul(
        &self,
        scores: &[f32],
        v: &[f32],
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.softmax_matmul", || {
            self.inner
                .softmax_matmul(scores, v, soft, out, batch, m, k, n)
        })
    }

    fn outer_attention(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        soft: &mut [f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.outer_attention", || {
            self.inner
                .outer_attention(a, c, v, tau, soft, out, batch, m, k, n)
        })
    }

    fn softmax_matmul_fwd(
        &self,
        scores: &[f32],
        v: &[f32],
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.softmax_matmul_fwd", || {
            self.inner
                .softmax_matmul_fwd(scores, v, out, batch, m, k, n)
        })
    }

    fn outer_attention_fwd(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        tau: f32,
        out: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        self.timed("kernel.outer_attention_fwd", || {
            self.inner
                .outer_attention_fwd(a, c, v, tau, out, batch, m, k, n)
        })
    }

    fn outer_attention_backward(
        &self,
        a: &[f32],
        c: &[f32],
        v: &[f32],
        soft: &[f32],
        gout: &[f32],
        tau: f32,
        ga: &mut [f32],
        gc: &mut [f32],
        gv: &mut [f32],
        batch: usize,
        m: usize,
        k: usize,
        n: usize,
    ) -> f32 {
        self.timed("kernel.outer_attention_backward", || {
            self.inner
                .outer_attention_backward(a, c, v, soft, gout, tau, ga, gc, gv, batch, m, k, n)
        })
    }
}

// Fusion switch: u8::MAX = uninitialised (read CAME_FUSION once).
static FUSION: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether [`crate::graph::Graph`] routes `gemm_bias_act` / `softmax_matmul`
/// through the fused kernels (default) or falls back to the composed unfused
/// ops. `CAME_FUSION=0` disables at launch; the micro-bench flips this to
/// measure fused vs unfused step times.
pub fn fusion_enabled() -> bool {
    match FUSION.load(Ordering::SeqCst) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("CAME_FUSION").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            set_fusion(on);
            on
        }
    }
}

/// Enable or disable kernel fusion process-wide (see [`fusion_enabled`]).
pub fn set_fusion(on: bool) {
    FUSION.store(on as u8, Ordering::SeqCst);
}

// Tape-free inference switch: u8::MAX = uninitialised (read CAME_INFER once).
static INFER: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether [`crate::graph::Graph::inference`] runs tape-free (default): no op
/// payloads recorded, no softmax retention, forward-only fused kernels.
/// `CAME_INFER=0` at launch falls back to the taped inference graph; the
/// micro-bench flips this to A/B the two modes.
pub fn infer_tape_free() -> bool {
    match INFER.load(Ordering::SeqCst) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("CAME_INFER").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            set_infer_tape_free(on);
            on
        }
    }
}

/// Enable or disable tape-free inference process-wide (see
/// [`infer_tape_free`]).
pub fn set_infer_tape_free(on: bool) {
    INFER.store(on as u8, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::parallel::{gemm_tile, steal_tasks};
    use super::*;
    use crate::rng::Prng;

    fn randv(n: usize, rng: &mut Prng) -> Vec<f32> {
        (0..n).map(|_| rng.normal_in(0.0, 1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn gemm_tile_matches_reference_on_odd_shapes() {
        let mut rng = Prng::new(0);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (13, 17, 9), (65, 33, 130)] {
            let a = randv(m * k, &mut rng);
            let b = randv(k * n, &mut rng);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            gemm_tile(&a, &b, &mut got, m, k, n);
            crate::tensor::matmul_kernel(&a, &b, &mut want, m, k, n);
            assert_close(&got, &want, 1e-6, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_matmul_matches_scalar_above_thread_threshold() {
        let mut rng = Prng::new(1);
        let (m, k, n) = (70, 40, 50); // > PAR_MIN_FLOPS, m > PANEL_ROWS
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut got = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        ParallelBackend.matmul(&a, &b, &mut got, m, k, n);
        ScalarBackend.matmul(&a, &b, &mut want, m, k, n);
        assert_close(&got, &want, 1e-5, "par matmul");
    }

    #[test]
    fn empty_dims_are_noops() {
        ParallelBackend.matmul(&[], &[], &mut [], 0, 3, 0);
        let mut out = vec![1.0, 2.0];
        // k == 0: accumulate nothing, out untouched
        ParallelBackend.matmul(&[], &[], &mut out, 1, 0, 2);
        assert_eq!(out, vec![1.0, 2.0]);
        ParallelBackend.softmax_lanes(&mut [], 4);
        ScalarBackend.softmax_lanes(&mut [], 0);
        SimdBackend.matmul(&[], &[], &mut out, 1, 0, 2);
        assert_eq!(out, vec![1.0, 2.0]);
        SimdBackend.softmax_lanes(&mut [], 4);
    }

    #[test]
    fn blocked_sum_deterministic_and_accurate() {
        let mut rng = Prng::new(2);
        let xs = randv(100_000, &mut rng);
        let a = ParallelBackend.sum(&xs);
        let b = ParallelBackend.sum(&xs);
        assert_eq!(a, b, "sum must be deterministic");
        let want: f64 = xs.iter().map(|&v| v as f64).sum();
        assert!((a as f64 - want).abs() < 0.05, "{a} vs {want}");
    }

    #[test]
    fn scalar_and_parallel_sums_follow_the_same_block_grouping() {
        // the summation-order contract: both backends group at SUM_BLOCK
        // boundaries, so results are bitwise equal for any input length
        let mut rng = Prng::new(7);
        for &len in &[
            1usize,
            100,
            SUM_BLOCK - 1,
            SUM_BLOCK,
            SUM_BLOCK + 1,
            100_000,
        ] {
            let xs = randv(len, &mut rng);
            let ys = randv(len, &mut rng);
            assert_eq!(
                ScalarBackend.sum(&xs).to_bits(),
                ParallelBackend.sum(&xs).to_bits(),
                "sum grouping mismatch at len {len}"
            );
            assert_eq!(
                ScalarBackend.dot(&xs, &ys).to_bits(),
                ParallelBackend.dot(&xs, &ys).to_bits(),
                "dot grouping mismatch at len {len}"
            );
        }
    }

    #[test]
    fn steal_tasks_covers_every_task_exactly_once() {
        let mut flags = vec![0u8; 257];
        let tasks: Vec<(usize, &mut u8)> = flags.iter_mut().enumerate().collect();
        steal_tasks(tasks, |(_i, f)| *f += 1);
        assert!(flags.iter().all(|&f| f == 1));
    }

    #[test]
    fn run_tasks_min_work_small_batches_stay_sequential() {
        // under the threshold the guard must still run every task
        let mut flags = vec![0u8; 37];
        let tasks: Vec<&mut u8> = flags.iter_mut().collect();
        run_tasks_min_work(tasks, 37, |f| *f += 1);
        assert!(flags.iter().all(|&f| f == 1));
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(BackendKind::parse("Scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse("PARALLEL"), Some(BackendKind::Parallel));
        assert_eq!(BackendKind::parse("simd"), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!("par".parse::<BackendKind>(), Ok(BackendKind::Parallel));
        assert_eq!("SIMD".parse::<BackendKind>(), Ok(BackendKind::Simd));
        assert_eq!(BackendKind::Parallel.name(), "parallel");
        assert_eq!(BackendKind::Simd.name(), "simd");
    }

    #[test]
    fn timed_backend_records_kernel_metrics_and_matches_raw() {
        let _guard = crate::obs_test_guard();
        let mut rng = Prng::new(99);
        let (m, k, n) = (7, 5, 6);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut raw = vec![0.0; m * n];
        SCALAR.matmul(&a, &b, &mut raw, m, k, n);

        let calls_before = came_obs::registry().histogram("kernel.matmul").count();
        came_obs::set_enabled(true);
        let timed: &dyn Backend = &TIMED_SCALAR;
        assert_eq!(timed.name(), "scalar");
        let mut out = vec![0.0; m * n];
        timed.matmul(&a, &b, &mut out, m, k, n);
        let s = timed.sum(&out);
        came_obs::set_enabled(false);

        assert_eq!(out, raw, "timing wrapper must not change results");
        assert!((s - SCALAR.sum(&raw)).abs() < 1e-6);
        let h = came_obs::registry().histogram("kernel.matmul");
        assert!(h.count() > calls_before, "kernel call not recorded");
        assert!(h.sum() > 0, "kernel ns not recorded");
    }
}
