//! Dense, row-major `f32` tensors and the raw (non-autograd) compute kernels.
//!
//! [`Tensor`] is a plain value type: a `Vec<f32>` plus a [`Shape`]. The
//! autograd layer in [`crate::graph`] builds on these kernels for both its
//! forward and backward passes.

use crate::rng::Prng;
use crate::shape::Shape;

/// A dense row-major `f32` tensor.
///
/// Storage is recycled through the thread-local [`crate::pool`]: `Drop`
/// parks the backing buffer and the constructors / `Clone` pop matching
/// buffers back, so steady-state training steps allocate (near) nothing.
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            data: crate::pool::alloc_copy(&self.data),
            shape: self.shape,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::pool::recycle(std::mem::take(&mut self.data));
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor{}{:?}{}",
            self.shape,
            preview,
            if self.data.len() > 8 { "…" } else { "" }
        )
    }
}

impl Tensor {
    // ----- constructors -------------------------------------------------

    /// Tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            data: crate::pool::alloc_zeroed(shape.numel()),
            shape,
        }
    }

    /// Tensor with unspecified (stale recycled) contents; the caller must
    /// overwrite every element before the value escapes.
    pub(crate) fn uninit(shape: Shape) -> Self {
        Tensor {
            data: crate::pool::alloc_uninit(shape.numel()),
            shape,
        }
    }

    /// Tensor filled with `v`.
    pub fn full(shape: Shape, v: f32) -> Self {
        Tensor {
            data: crate::pool::alloc_filled(shape.numel(), v),
            shape,
        }
    }

    /// Tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// Scalar tensor (shape `[1]`).
    pub fn scalar(v: f32) -> Self {
        Self::full(Shape::d1(1), v)
    }

    /// Build from existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(xs: &[f32]) -> Self {
        Tensor::from_vec(Shape::d1(xs.len()), crate::pool::alloc_copy(xs))
    }

    /// I.i.d. normal entries with the given std.
    pub fn randn(shape: Shape, std: f32, rng: &mut Prng) -> Self {
        let data = (0..shape.numel())
            .map(|_| rng.normal_in(0.0, std))
            .collect();
        Tensor { data, shape }
    }

    /// Uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: Shape, lo: f32, hi: f32, rng: &mut Prng) -> Self {
        let data = (0..shape.numel()).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor { data, shape }
    }

    /// Xavier/Glorot normal initialisation for a 2-D weight `[fan_in, fan_out]`
    /// (also accepts higher-rank shapes, using the first and last dims).
    pub fn xavier(shape: Shape, rng: &mut Prng) -> Self {
        let fan_in = shape.at(0) as f32;
        let fan_out = shape.at(shape.ndim() - 1) as f32;
        let std = (2.0 / (fan_in + fan_out)).sqrt();
        Self::randn(shape, std, rng)
    }

    // ----- accessors -----------------------------------------------------

    /// The shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Value of a scalar tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(idx.len(), self.shape.ndim());
        let strides = self.shape.strides();
        let mut off = 0;
        for (i, &j) in idx.iter().enumerate() {
            assert!(
                j < self.shape.at(i),
                "index {j} out of axis {i} in {}",
                self.shape
            );
            off += j * strides[i];
        }
        self.data[off]
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(&self, shape: Shape) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.numel(),
            "reshape {} -> {shape} changes element count",
            self.shape
        );
        Tensor {
            data: crate::pool::alloc_copy(&self.data),
            shape,
        }
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    // ----- elementwise ---------------------------------------------------

    /// Apply `f` elementwise, producing a new tensor.
    ///
    /// Dispatched through the active [`crate::backend::Backend`]; `f` runs on
    /// whole cache-sized chunks so the inner loop stays monomorphised.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::uninit(self.shape);
        crate::backend::active().run2(&self.data, &mut out.data, &|src, dst| {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = f(s);
            }
        });
        out
    }

    /// In-place elementwise update.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        crate::backend::active().run1(&mut self.data, &|chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
    }

    /// `self[i] += other[i]` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        crate::backend::active().run2(&other.data, &mut self.data, &|src, dst| {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        });
    }

    /// `self[i] += s * other[i]` (same shape).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        crate::backend::active().run2(&other.data, &mut self.data, &|src, dst| {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += s * b;
            }
        });
    }

    /// Elementwise binary op with numpy broadcasting.
    ///
    /// Hot path of the whole training loop (every affinity-matrix op in TCA
    /// lands here): same-shape and scalar operands take direct loops, and the
    /// general case walks the output with an incremental multi-index plus a
    /// tight stride-(0|1) inner loop — no per-element division.
    ///
    /// # Panics
    /// Panics if the shapes do not broadcast.
    pub fn zip_broadcast(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape == other.shape {
            let mut out = Tensor::uninit(self.shape);
            crate::backend::active().run3(&self.data, &other.data, &mut out.data, &|a, b, dst| {
                for ((o, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                    *o = f(x, y);
                }
            });
            return out;
        }
        if other.numel() == 1 {
            let b = other.data[0];
            return self.map(|a| f(a, b));
        }
        if self.numel() == 1 {
            let a = self.data[0];
            return other.map(|b| f(a, b));
        }
        let out_shape = Shape::broadcast(self.shape, other.shape).unwrap_or_else(|| {
            panic!("shapes {} and {} do not broadcast", self.shape, other.shape)
        });
        let n = out_shape.ndim();
        let a_sh = self.shape.pad_left(n);
        let b_sh = other.shape.pad_left(n);
        let a_str = a_sh.strides();
        let b_str = b_sh.strides();
        let mut eff_a = [0usize; crate::shape::MAX_NDIM];
        let mut eff_b = [0usize; crate::shape::MAX_NDIM];
        let mut dims = [1usize; crate::shape::MAX_NDIM];
        for i in 0..n {
            eff_a[i] = if a_sh.at(i) == 1 { 0 } else { a_str[i] };
            eff_b[i] = if b_sh.at(i) == 1 { 0 } else { b_str[i] };
            dims[i] = out_shape.at(i);
        }
        // every output lane is written below, so a stale buffer is safe
        let mut out = Tensor::uninit(out_shape);
        let inner = dims[n - 1];
        let (sa, sb) = (eff_a[n - 1], eff_b[n - 1]);
        let lanes = out_shape.numel() / inner;
        let mut idx = [0usize; crate::shape::MAX_NDIM];
        let (mut ia, mut ib) = (0usize, 0usize);
        let out_data = &mut out.data;
        for lane in 0..lanes {
            let base = lane * inner;
            let dst = &mut out_data[base..base + inner];
            if sa == 1 && sb == 1 {
                let aa = &self.data[ia..ia + inner];
                let bb = &other.data[ib..ib + inner];
                for ((o, &x), &y) in dst.iter_mut().zip(aa).zip(bb) {
                    *o = f(x, y);
                }
            } else if sa == 1 && sb == 0 {
                let aa = &self.data[ia..ia + inner];
                let y = other.data[ib];
                for (o, &x) in dst.iter_mut().zip(aa) {
                    *o = f(x, y);
                }
            } else if sa == 0 && sb == 1 {
                let x = self.data[ia];
                let bb = &other.data[ib..ib + inner];
                for (o, &y) in dst.iter_mut().zip(bb) {
                    *o = f(x, y);
                }
            } else {
                for (j, o) in dst.iter_mut().enumerate() {
                    *o = f(self.data[ia + j * sa], other.data[ib + j * sb]);
                }
            }
            // advance the outer multi-index (axes n-2 .. 0)
            if n >= 2 {
                let mut ax = n - 1;
                while ax > 0 {
                    ax -= 1;
                    idx[ax] += 1;
                    ia += eff_a[ax];
                    ib += eff_b[ax];
                    if idx[ax] < dims[ax] {
                        break;
                    }
                    ia -= eff_a[ax] * dims[ax];
                    ib -= eff_b[ax] * dims[ax];
                    idx[ax] = 0;
                }
            }
        }
        out
    }

    /// Sum-reduce `self` so that its shape becomes `target` (inverse of a
    /// broadcast). Used by autograd to fold gradients of broadcast operands.
    pub fn sum_to(&self, target: Shape) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        assert!(
            target.broadcasts_to(self.shape),
            "{target} does not broadcast to {}; cannot sum_to",
            self.shape
        );
        let n = self.shape.ndim();
        let t_pad = target.pad_left(n);
        let t_str = t_pad.strides();
        let mut eff = [0usize; crate::shape::MAX_NDIM];
        let mut dims = [1usize; crate::shape::MAX_NDIM];
        for i in 0..n {
            eff[i] = if t_pad.at(i) == 1 { 0 } else { t_str[i] };
            dims[i] = self.shape.at(i);
        }
        let mut out = Tensor::zeros(t_pad);
        let inner = dims[n - 1];
        let s_in = eff[n - 1];
        let lanes = self.numel() / inner;
        let mut idx = [0usize; crate::shape::MAX_NDIM];
        let mut it = 0usize;
        for lane in 0..lanes {
            let src = &self.data[lane * inner..(lane + 1) * inner];
            if s_in == 1 {
                let dst = &mut out.data[it..it + inner];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d += v;
                }
            } else {
                // whole lane folds into one slot
                out.data[it] += src.iter().sum::<f32>();
            }
            if n >= 2 {
                let mut ax = n - 1;
                while ax > 0 {
                    ax -= 1;
                    idx[ax] += 1;
                    it += eff[ax];
                    if idx[ax] < dims[ax] {
                        break;
                    }
                    it -= eff[ax] * dims[ax];
                    idx[ax] = 0;
                }
            }
        }
        out.reshape(target)
    }

    // ----- reductions ----------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        crate::backend::active().sum(&self.data)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Sum along `axis`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let out_shape = self.shape.reduce(axis, keepdim);
        // each output slot is assigned exactly once below
        let mut out = Tensor::uninit(self.shape.reduce(axis, true));
        let lanes = LaneIter::new(self.shape, axis);
        let stride = lanes.stride;
        let len = lanes.len;
        for (k, base) in lanes.enumerate() {
            let mut acc = 0.0;
            for j in 0..len {
                acc += self.data[base + j * stride];
            }
            out.data[k] = acc;
        }
        out.reshape(out_shape)
    }

    /// L2 norm of all elements.
    pub fn norm2(&self) -> f32 {
        crate::backend::active().dot(&self.data, &self.data).sqrt()
    }

    // ----- linear algebra --------------------------------------------------

    /// Matrix product with optional batching.
    ///
    /// Supported input ranks:
    /// - `[m,k] x [k,n] -> [m,n]`
    /// - `[B,m,k] x [B,k,n] -> [B,m,n]`
    /// - `[B,m,k] x [k,n] -> [B,m,n]` (shared right operand)
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match (self.shape.ndim(), other.shape.ndim()) {
            (2, 2) => {
                let (m, k) = (self.shape.at(0), self.shape.at(1));
                let (k2, n) = (other.shape.at(0), other.shape.at(1));
                assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
                let mut out = Tensor::zeros(Shape::d2(m, n));
                crate::backend::active().matmul(&self.data, &other.data, &mut out.data, m, k, n);
                out
            }
            (3, 3) => {
                let (b, m, k) = (self.shape.at(0), self.shape.at(1), self.shape.at(2));
                let (b2, k2, n) = (other.shape.at(0), other.shape.at(1), other.shape.at(2));
                assert_eq!(b, b2, "batched matmul batch dims {b} vs {b2}");
                assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
                let mut out = Tensor::zeros(Shape::d3(b, m, n));
                crate::backend::active().matmul_batched(
                    &self.data,
                    &other.data,
                    &mut out.data,
                    b,
                    m,
                    k,
                    n,
                );
                out
            }
            (3, 2) => {
                let (b, m, k) = (self.shape.at(0), self.shape.at(1), self.shape.at(2));
                let (k2, n) = (other.shape.at(0), other.shape.at(1));
                assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
                let mut out = Tensor::zeros(Shape::d3(b, m, n));
                // One flat [B*m, k] x [k, n] product.
                crate::backend::active().matmul(
                    &self.data,
                    &other.data,
                    &mut out.data,
                    b * m,
                    k,
                    n,
                );
                out
            }
            (a, b) => panic!("unsupported matmul ranks {a} x {b}"),
        }
    }

    /// Swap two axes (materialises a copy).
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        let nd = self.shape.ndim();
        assert!(a < nd && b < nd, "transpose axes out of range");
        if a == b {
            return self.clone();
        }
        let mut dims: Vec<usize> = self.shape.dims().to_vec();
        dims.swap(a, b);
        let out_shape = Shape::new(&dims);
        let in_str = self.shape.strides();
        let mut perm_str = [0usize; crate::shape::MAX_NDIM];
        for i in 0..nd {
            perm_str[i] = in_str[i];
        }
        perm_str.swap(a, b);
        let mut out_dims = [1usize; crate::shape::MAX_NDIM];
        for (i, &d) in dims.iter().enumerate() {
            out_dims[i] = d;
        }
        let mut out = Tensor::uninit(out_shape);
        // incremental multi-index walk: output is linear, source offset is
        // maintained by carries (no per-element division)
        let mut idx = [0usize; crate::shape::MAX_NDIM];
        let mut src = 0usize;
        let inner = out_dims[nd - 1];
        let s_in = perm_str[nd - 1];
        let lanes = out.numel() / inner;
        for lane in 0..lanes {
            let dst = &mut out.data[lane * inner..(lane + 1) * inner];
            if s_in == 1 {
                dst.copy_from_slice(&self.data[src..src + inner]);
            } else {
                for (j, o) in dst.iter_mut().enumerate() {
                    *o = self.data[src + j * s_in];
                }
            }
            if nd >= 2 {
                let mut ax = nd - 1;
                while ax > 0 {
                    ax -= 1;
                    idx[ax] += 1;
                    src += perm_str[ax];
                    if idx[ax] < out_dims[ax] {
                        break;
                    }
                    src -= perm_str[ax] * out_dims[ax];
                    idx[ax] = 0;
                }
            }
        }
        out
    }

    /// Softmax along `axis` (numerically stabilised).
    ///
    /// Uses [`fast_exp`] — a ~1e-5-relative-accuracy polynomial exp — because
    /// the TCA affinity softmaxes are the single hottest kernel in CamE
    /// training and `libm` exp does not vectorise.
    pub fn softmax_axis(&self, axis: usize) -> Tensor {
        let mut out = self.clone();
        let lanes = LaneIter::new(self.shape, axis);
        let stride = lanes.stride;
        let len = lanes.len;
        if stride == 1 {
            // contiguous lanes (axis is innermost): backend-dispatched kernel
            crate::backend::active().softmax_lanes(&mut out.data, len);
            return out;
        }
        for base in lanes {
            let mut mx = f32::NEG_INFINITY;
            for j in 0..len {
                mx = mx.max(out.data[base + j * stride]);
            }
            let mut z = 0.0;
            for j in 0..len {
                let e = fast_exp(out.data[base + j * stride] - mx);
                out.data[base + j * stride] = e;
                z += e;
            }
            let inv = 1.0 / z;
            for j in 0..len {
                out.data[base + j * stride] *= inv;
            }
        }
        out
    }

    /// Concatenate tensors along `axis`. All other dims must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let nd = parts[0].shape.ndim();
        assert!(axis < nd, "concat axis out of range");
        let mut dims: Vec<usize> = parts[0].shape.dims().to_vec();
        let mut total = 0;
        for p in parts {
            assert_eq!(p.shape.ndim(), nd, "concat rank mismatch");
            for i in 0..nd {
                if i != axis {
                    assert_eq!(p.shape.at(i), dims[i], "concat dim {i} mismatch");
                }
            }
            total += p.shape.at(axis);
        }
        dims[axis] = total;
        let out_shape = Shape::new(&dims);
        // every slice of the output is copied into below
        let mut out = Tensor::uninit(out_shape);
        // outer = product of dims before axis; inner = product after.
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let out_row = total * inner;
        let mut off_in_row = 0;
        for p in parts {
            let p_axis = p.shape.at(axis);
            let p_row = p_axis * inner;
            for o in 0..outer {
                let src = &p.data[o * p_row..(o + 1) * p_row];
                let dst_start = o * out_row + off_in_row;
                out.data[dst_start..dst_start + p_row].copy_from_slice(src);
            }
            off_in_row += p_row;
        }
        out
    }

    /// Slice `len` entries starting at `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let nd = self.shape.ndim();
        assert!(axis < nd, "narrow axis out of range");
        assert!(
            start + len <= self.shape.at(axis),
            "narrow [{start}, {start}+{len}) out of axis size {}",
            self.shape.at(axis)
        );
        let mut dims: Vec<usize> = self.shape.dims().to_vec();
        dims[axis] = len;
        let out_shape = Shape::new(&dims);
        let outer: usize = self.shape.dims()[..axis].iter().product();
        let inner: usize = self.shape.dims()[axis + 1..].iter().product();
        let in_row = self.shape.at(axis) * inner;
        let out_row = len * inner;
        let mut out = Tensor::uninit(out_shape);
        for o in 0..outer {
            let src = &self.data[o * in_row + start * inner..o * in_row + (start + len) * inner];
            out.data[o * out_row..(o + 1) * out_row].copy_from_slice(src);
        }
        out
    }

    /// Add `other` into the `[start, start+len)` slice of `self` along `axis`
    /// (inverse of [`Tensor::narrow`], used by autograd).
    pub fn narrow_add_assign(&mut self, axis: usize, start: usize, other: &Tensor) {
        let len = other.shape.at(axis);
        assert!(start + len <= self.shape.at(axis));
        let outer: usize = self.shape.dims()[..axis].iter().product();
        let inner: usize = self.shape.dims()[axis + 1..].iter().product();
        let in_row = self.shape.at(axis) * inner;
        let out_row = len * inner;
        for o in 0..outer {
            let dst =
                &mut self.data[o * in_row + start * inner..o * in_row + (start + len) * inner];
            let src = &other.data[o * out_row..(o + 1) * out_row];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

/// Iterator over "lanes" of an axis: yields, for each combination of the other
/// indices, the base offset of a lane whose elements sit at
/// `base + j * stride` for `j in 0..len`.
pub struct LaneIter {
    /// Offset step within a lane.
    pub stride: usize,
    /// Lane length (= dims\[axis\]).
    pub len: usize,
    outer: usize,
    inner: usize,
    i: usize,
}

impl LaneIter {
    /// Lanes of `shape` along `axis`.
    pub fn new(shape: Shape, axis: usize) -> Self {
        assert!(axis < shape.ndim(), "axis {axis} out of range for {shape}");
        let dims = shape.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        LaneIter {
            stride: inner,
            len: dims[axis],
            outer,
            inner,
            i: 0,
        }
    }
}

impl Iterator for LaneIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.i >= self.outer * self.inner {
            return None;
        }
        let o = self.i / self.inner;
        let r = self.i % self.inner;
        self.i += 1;
        Some(o * self.len * self.inner + r)
    }
}

/// Fast `e^x` via range reduction to `2^i · 2^f` with a degree-4 minimax
/// polynomial for `2^f`, `f ∈ [0,1)`. Relative error < 2e-5 across the
/// finite range; inputs below the subnormal cutoff flush to 0 and large
/// inputs saturate to `f32::MAX` (softmax always calls it with `x ≤ 0`).
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    let y = x * LOG2E;
    if y < -126.0 {
        return 0.0;
    }
    if y > 127.0 {
        return f32::MAX;
    }
    // floor via truncation: `y as i32` rounds toward zero (one cvttss2si on
    // x86), minus one when that rounded up — `f32::floor` lowers to a branchy
    // libm routine on baseline targets and dominates softmax-heavy kernels
    let t = y as i32;
    let i = t - i32::from(t as f32 > y);
    let f = y - i as f32;
    // Taylor coefficients of 2^f = e^{f·ln2}, degree 6 (rel err < 1e-5 on [0,1))
    let p = 1.0
        + f * (0.693_147_18
            + f * (0.240_226_51
                + f * (0.055_504_11 + f * (0.009_618_13 + f * (0.001_333_55 + f * 0.000_154_04)))));
    let bits = ((i + 127) as u32) << 23;
    f32::from_bits(bits) * p
}

/// Branch-free [`fast_exp`]: bit-identical output for every finite input, but
/// the range guards are selects instead of early returns so the compiler can
/// vectorise element-wise loops over it (the branchy form defeats SLP/loop
/// vectorisation and keeps softmax lanes scalar).
#[inline(always)]
pub fn fast_exp_lane(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    let y = x * LOG2E;
    // clamp only feeds the bit trick; out-of-range inputs are overridden by
    // the selects below, in-range inputs pass through the clamp untouched,
    // so every surviving value is computed exactly as `fast_exp` computes it
    let yc = y.clamp(-126.0, 127.0);
    let t = yc as i32;
    let i = t - i32::from(t as f32 > yc);
    let f = yc - i as f32;
    let p = 1.0
        + f * (0.693_147_18
            + f * (0.240_226_51
                + f * (0.055_504_11 + f * (0.009_618_13 + f * (0.001_333_55 + f * 0.000_154_04)))));
    let r = f32::from_bits(((i + 127) as u32) << 23) * p;
    let r = if y > 127.0 { f32::MAX } else { r };
    if y < -126.0 {
        0.0
    } else {
        r
    }
}

/// Row-major `[m,k] x [k,n] -> [m,n]` with i-k-j loop order (streams `b` rows,
/// auto-vectorises well).
pub fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: &[&[f32]]) -> Tensor {
        let m = rows.len();
        let n = rows[0].len();
        let mut data = Vec::with_capacity(m * n);
        for r in rows {
            data.extend_from_slice(r);
        }
        Tensor::from_vec(Shape::d2(m, n), data)
    }

    #[test]
    fn matmul_2d_matches_hand_result() {
        let a = t2(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = t2(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let mut rng = Prng::new(0);
        let a = Tensor::randn(Shape::d3(3, 2, 4), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d3(3, 4, 5), 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..3 {
            let ai = a.narrow(0, i, 1).reshape(Shape::d2(2, 4));
            let bi = b.narrow(0, i, 1).reshape(Shape::d2(4, 5));
            let ci = c.narrow(0, i, 1).reshape(Shape::d2(2, 5));
            let expect = ai.matmul(&bi);
            for (x, y) in ci.data().iter().zip(expect.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn matmul_broadcast_weight() {
        let mut rng = Prng::new(1);
        let a = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        let w = Tensor::randn(Shape::d2(4, 6), 1.0, &mut rng);
        let c = a.matmul(&w);
        assert_eq!(c.shape(), Shape::d3(2, 3, 6));
        let a0 = a.narrow(0, 1, 1).reshape(Shape::d2(3, 4));
        let c0 = c.narrow(0, 1, 1).reshape(Shape::d2(3, 6));
        let e = a0.matmul(&w);
        for (x, y) in c0.data().iter().zip(e.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_2d() {
        let a = t2(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let at = a.transpose(0, 1);
        assert_eq!(at.shape(), Shape::d2(3, 2));
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Prng::new(2);
        let a = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        let b = a.transpose(1, 2).transpose(1, 2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Prng::new(3);
        let a = Tensor::randn(Shape::d2(5, 7), 3.0, &mut rng);
        let s = a.softmax_axis(1);
        for i in 0..5 {
            let row_sum: f32 = (0..7).map(|j| s.at(&[i, j])).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        let s0 = a.softmax_axis(0);
        for j in 0..7 {
            let col_sum: f32 = (0..5).map(|i| s0.at(&[i, j])).sum();
            assert!((col_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]).reshape(Shape::d2(1, 3));
        let b = a.map(|x| x + 100.0);
        let (sa, sb) = (a.softmax_axis(1), b.softmax_axis(1));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn fast_exp_accuracy() {
        for i in -2000..=200 {
            let x = i as f32 * 0.05; // [-100, 10]
            let approx = fast_exp(x);
            let exact = x.exp();
            if exact > 1e-30 && exact.is_finite() {
                let rel = ((approx - exact) / exact).abs();
                assert!(rel < 5e-5, "fast_exp({x}) rel err {rel}");
            }
        }
        assert_eq!(fast_exp(-200.0), 0.0);
        assert!(fast_exp(100.0).is_finite());
    }

    #[test]
    fn fast_exp_lane_is_bit_identical() {
        // the lane variant must agree bit for bit, including the flush-to-zero
        // and saturation regions and the exact range-guard boundaries
        for i in -40000..=40000 {
            let x = i as f32 * 0.01; // [-400, 400]
            assert_eq!(
                fast_exp(x).to_bits(),
                fast_exp_lane(x).to_bits(),
                "fast_exp_lane({x}) diverged"
            );
        }
        for x in [-126.0f32, 127.0, -87.336, 88.029, 0.0, -0.0] {
            let x = x / std::f32::consts::LOG2_E;
            assert_eq!(fast_exp(x).to_bits(), fast_exp_lane(x).to_bits());
        }
    }

    #[test]
    fn broadcast_add_matrix_vector() {
        let a = t2(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Tensor::from_slice(&[10.0, 20.0]);
        let c = a.zip_broadcast(&v, |x, y| x + y);
        assert_eq!(c.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn broadcast_outer_product_shape() {
        let col = Tensor::from_vec(Shape::d2(3, 1), vec![1.0, 2.0, 3.0]);
        let row = Tensor::from_vec(Shape::d2(1, 2), vec![4.0, 5.0]);
        let c = col.zip_broadcast(&row, |x, y| x * y);
        assert_eq!(c.shape(), Shape::d2(3, 2));
        assert_eq!(c.data(), &[4.0, 5.0, 8.0, 10.0, 12.0, 15.0]);
    }

    #[test]
    fn sum_to_inverts_broadcast() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let big = v.zip_broadcast(&Tensor::zeros(Shape::d3(4, 3, 2)), |x, _| x);
        assert_eq!(big.shape(), Shape::d3(4, 3, 2));
        let folded = big.sum_to(Shape::d1(2));
        assert_eq!(folded.data(), &[12.0, 24.0]);
    }

    #[test]
    fn sum_axis_values() {
        let a = t2(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.sum_axis(0, false).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1, false).data(), &[6.0, 15.0]);
        assert_eq!(a.sum_axis(1, true).shape(), Shape::d2(2, 1));
    }

    #[test]
    fn concat_and_narrow_roundtrip() {
        let mut rng = Prng::new(4);
        let a = Tensor::randn(Shape::d3(2, 3, 4), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d3(2, 5, 4), 1.0, &mut rng);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), Shape::d3(2, 8, 4));
        assert_eq!(c.narrow(1, 0, 3).data(), a.data());
        assert_eq!(c.narrow(1, 3, 5).data(), b.data());
    }

    #[test]
    fn narrow_add_assign_scatter() {
        let mut base = Tensor::zeros(Shape::d2(2, 5));
        let part = Tensor::ones(Shape::d2(2, 2));
        base.narrow_add_assign(1, 1, &part);
        assert_eq!(
            base.data(),
            &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn xavier_std_matches_formula() {
        let mut rng = Prng::new(5);
        let w = Tensor::xavier(Shape::d2(100, 300), &mut rng);
        let std_expect = (2.0f32 / 400.0).sqrt();
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.numel() as f32;
        assert!((var.sqrt() - std_expect).abs() < 0.005);
    }

    #[test]
    fn lane_iter_covers_all_offsets() {
        let shape = Shape::d3(2, 3, 4);
        // axis 1: lanes vary middle index; 2*4 lanes of length 3 stride 4.
        let lanes: Vec<usize> = LaneIter::new(shape, 1).collect();
        assert_eq!(lanes.len(), 8);
        let mut all: Vec<usize> = lanes
            .iter()
            .flat_map(|&b| (0..3).map(move |j| b + j * 4))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..24).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]);
    }
}
