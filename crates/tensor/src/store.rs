//! Entity-row embedding stores: one trait, three row layouts.
//!
//! Serving scores a handful of query rows against *every* entity row, so the
//! entity table dominates the serving tier's memory footprint. Historically
//! the rows lived in three places at once — `came-core` model params, the
//! `came-encoders` frozen feature caches, and the serving/snapshot layers in
//! `came-kg` — always as resident f32 tensors. [`EmbeddingStore`] extracts
//! that data path behind one trait with three implementations:
//!
//! * [`DenseF32Store`] — the existing resident layout, extracted verbatim:
//!   row gathers are straight `memcpy`s and scoring is the plain f32 dot,
//!   bit-identical to the pre-refactor path.
//! * [`QuantizedStore`] — per-row affine u8 quantization
//!   (`x ≈ min + scale·code`, `scale = (max−min)/255`), quantized once at
//!   freeze time. Scoring never materializes f32 rows: the affine identity
//!   `dot(q, deq_row) = min·Σq + scale·dot(q, codes)` routes through the
//!   fused [`Backend::dot_q8`] / [`Backend::gemm_q8_f32`] kernels with the
//!   per-query sums precomputed once per batch.
//! * [`FileBackedStore`] — the same quantized rows streamed from disk
//!   through a fixed-budget LRU row cache (`CAME_EMBED_CACHE_ROWS`), so the
//!   scorable entity set can exceed RAM. Scores are bitwise identical to
//!   [`QuantizedStore`] under the same backend: cache state only decides
//!   where bytes are copied from, never how they are reduced.
//!
//! Store selection is environment-driven ([`StoreKind::from_env`], knob
//! `CAME_EMBED_STORE=f32|q8|file`, default `f32`). Quantization rejects
//! non-finite rows with the typed [`QuantError::NonFinite`]; constant rows
//! (including all-zero) get `scale = 0` and reproduce exactly.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::backend;

/// Default LRU row-cache budget for [`FileBackedStore`] when
/// `CAME_EMBED_CACHE_ROWS` is unset.
pub const DEFAULT_CACHE_ROWS: usize = 8192;

/// Which row layout an [`EmbeddingStore`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    /// Resident f32 rows (the historical layout; the default).
    F32,
    /// Resident per-row affine u8 rows.
    Q8,
    /// File-backed u8 rows behind an LRU row cache.
    File,
}

impl StoreKind {
    /// Parse a `CAME_EMBED_STORE` value.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" => Some(StoreKind::F32),
            "q8" | "int8" => Some(StoreKind::Q8),
            "file" => Some(StoreKind::File),
            _ => None,
        }
    }

    /// The layout selected by `CAME_EMBED_STORE` (default [`StoreKind::F32`];
    /// unknown values warn once to stderr and fall back to the default).
    pub fn from_env() -> StoreKind {
        match std::env::var("CAME_EMBED_STORE") {
            Ok(v) => StoreKind::parse(&v).unwrap_or_else(|| {
                eprintln!("came-tensor: unknown CAME_EMBED_STORE={v:?}, using f32");
                StoreKind::F32
            }),
            Err(_) => StoreKind::F32,
        }
    }

    /// Stable lower-case name (env value / report key).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::F32 => "f32",
            StoreKind::Q8 => "q8",
            StoreKind::File => "file",
        }
    }
}

/// Typed failure building or streaming a quantized store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// A source row contains NaN or ±inf: affine code assignment is
    /// undefined, so the row is rejected instead of silently clamped.
    NonFinite {
        /// Index of the first offending row.
        row: usize,
    },
    /// The flat source buffer does not factor as `rows × dim`.
    Misaligned {
        /// Length of the buffer actually supplied.
        len: usize,
        /// Declared row count.
        rows: usize,
        /// Declared row width.
        dim: usize,
    },
    /// Backing-file I/O failed (create/write/read/seek).
    Io(String),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::NonFinite { row } => {
                write!(
                    f,
                    "embedding row {row} contains NaN or infinity; refusing to quantize"
                )
            }
            QuantError::Misaligned { len, rows, dim } => {
                write!(
                    f,
                    "embedding buffer of {len} floats is not {rows} rows x {dim} dims"
                )
            }
            QuantError::Io(msg) => write!(f, "embedding store I/O error: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// One entity-row store: `len()` rows of `dim()` f32-valued features, however
/// they are laid out physically. All scoring entry points are `&self` and
/// thread-safe — the serving tier calls them from shard workers concurrently.
pub trait EmbeddingStore: Send + Sync {
    /// The physical layout.
    fn kind(&self) -> StoreKind;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True when the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row width.
    fn dim(&self) -> usize;

    /// Dequantize rows `ids` into the row-major `[ids.len(), dim]` buffer
    /// `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != ids.len() * dim()` or any id is out of range.
    fn gather_into(&self, ids: &[u32], out: &mut [f32]);

    /// Fused range scoring: `out[i*(hi-lo) + j] = dot(queries row i, row
    /// lo+j)` for the row-major `[m, dim]` query block, without
    /// materializing f32 rows when the layout is quantized.
    ///
    /// # Panics
    /// Panics if `lo > hi`, `hi > len()`, or buffer sizes mismatch.
    fn score_range_into(&self, queries: &[f32], m: usize, lo: usize, hi: usize, out: &mut [f32]);

    /// Bytes of row payload resident in RAM (codes/affine/cache — excludes
    /// anything living only on disk).
    fn resident_bytes(&self) -> usize;

    /// `(hits, misses)` of the row cache, when the layout has one.
    fn cache_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Serialize the rows for checkpoints: kind tag, geometry, payload.
    /// Restored by [`store_from_blob`] to a store scoring bit-identically.
    fn to_blob(&self) -> Vec<u8>;
}

fn check_score_args(
    queries: &[f32],
    m: usize,
    lo: usize,
    hi: usize,
    out: &[f32],
    n: usize,
    d: usize,
) {
    assert!(
        lo <= hi && hi <= n,
        "score range [{lo}, {hi}) out of bounds for {n} rows"
    );
    assert_eq!(queries.len(), m * d, "query buffer size mismatch");
    assert_eq!(out.len(), m * (hi - lo), "score buffer size mismatch");
}

// --------------------------------------------------------------------------
// resident f32
// --------------------------------------------------------------------------

/// The historical resident layout: flat row-major f32 rows. Gathers are
/// `memcpy`s and scoring is the plain dot product — bit-identical to the
/// pre-[`EmbeddingStore`] code path under every backend.
pub struct DenseF32Store {
    data: Vec<f32>,
    n: usize,
    d: usize,
}

impl DenseF32Store {
    /// Wrap a flat row-major `[n, d]` buffer. Values are taken as-is (the
    /// dense layout represents anything f32 can, so nothing is rejected).
    pub fn from_rows(data: Vec<f32>, n: usize, d: usize) -> Result<DenseF32Store, QuantError> {
        if data.len() != n * d {
            return Err(QuantError::Misaligned {
                len: data.len(),
                rows: n,
                dim: d,
            });
        }
        Ok(DenseF32Store { data, n, d })
    }

    /// Borrow the flat row buffer.
    pub fn rows(&self) -> &[f32] {
        &self.data
    }
}

impl EmbeddingStore for DenseF32Store {
    fn kind(&self) -> StoreKind {
        StoreKind::F32
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.d
    }

    fn gather_into(&self, ids: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), ids.len() * self.d, "gather buffer size mismatch");
        for (slot, &id) in out.chunks_mut(self.d.max(1)).zip(ids) {
            let at = id as usize * self.d;
            slot.copy_from_slice(&self.data[at..at + self.d]);
        }
    }

    fn score_range_into(&self, queries: &[f32], m: usize, lo: usize, hi: usize, out: &mut [f32]) {
        check_score_args(queries, m, lo, hi, out, self.n, self.d);
        let (d, w) = (self.d, hi - lo);
        let b = backend::active();
        let tasks: Vec<(usize, usize, &mut [f32])> = strip_tasks(out, w, d);
        backend::run_tasks_min_work(tasks, m * w * d, |(i, j0, oseg)| {
            let q = &queries[i * d..(i + 1) * d];
            for (jj, o) in oseg.iter_mut().enumerate() {
                let at = (lo + j0 + jj) * d;
                *o = b.dot(q, &self.data[at..at + d]);
            }
        });
    }

    fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    fn to_blob(&self) -> Vec<u8> {
        let mut out = blob_header(StoreKind::F32, self.n, self.d);
        for &x in &self.data {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }
}

/// Decompose a row-major `[m, w]` output buffer into disjoint
/// `(query row, strip offset, strip)` tasks with roughly equal `k`-weighted
/// work, matching the backend's own q8 decomposition.
fn strip_tasks(out: &mut [f32], w: usize, k: usize) -> Vec<(usize, usize, &mut [f32])> {
    let strip = backend::q8_strip_for(k);
    out.chunks_mut(w.max(1))
        .enumerate()
        .flat_map(|(i, orow)| {
            orow.chunks_mut(strip)
                .enumerate()
                .map(move |(s, oseg)| (i, s * strip, oseg))
        })
        .collect()
}

// --------------------------------------------------------------------------
// resident u8
// --------------------------------------------------------------------------

/// Per-row affine u8 rows, quantized once at freeze time:
/// `x ≈ min + scale·code` with `scale = (max−min)/255`. Constant rows —
/// all-zero included — get `scale = 0` and round-trip exactly; rows with
/// NaN/±inf (or a value range that overflows f32) are rejected with
/// [`QuantError::NonFinite`]. Scoring goes through the fused
/// [`Backend::gemm_q8_f32`] kernel and never materializes f32 rows.
pub struct QuantizedStore {
    n: usize,
    d: usize,
    codes: Vec<u8>,
    scales: Vec<f32>,
    mins: Vec<f32>,
}

impl QuantizedStore {
    /// Quantize a flat row-major `[n, d]` f32 buffer.
    pub fn from_rows(rows: &[f32], n: usize, d: usize) -> Result<QuantizedStore, QuantError> {
        if rows.len() != n * d {
            return Err(QuantError::Misaligned {
                len: rows.len(),
                rows: n,
                dim: d,
            });
        }
        let mut codes = vec![0u8; n * d];
        let mut scales = vec![0.0f32; n];
        let mut mins = vec![0.0f32; n];
        for (r, row) in rows.chunks(d.max(1)).enumerate().take(n) {
            quantize_row(
                row,
                r,
                &mut codes[r * d..(r + 1) * d],
                &mut scales[r],
                &mut mins[r],
            )?;
        }
        Ok(QuantizedStore {
            n,
            d,
            codes,
            scales,
            mins,
        })
    }

    /// Rebuild from the parallel arrays a blob or file carries.
    fn from_parts(
        n: usize,
        d: usize,
        codes: Vec<u8>,
        scales: Vec<f32>,
        mins: Vec<f32>,
    ) -> QuantizedStore {
        debug_assert_eq!(codes.len(), n * d);
        debug_assert_eq!(scales.len(), n);
        debug_assert_eq!(mins.len(), n);
        QuantizedStore {
            n,
            d,
            codes,
            scales,
            mins,
        }
    }

    /// Dequantize one element (tests / spot checks).
    pub fn dequant(&self, row: usize, t: usize) -> f32 {
        self.mins[row] + self.scales[row] * self.codes[row * self.d + t] as f32
    }
}

/// Quantize one row into `codes`/`scale`/`min`. Shared by the resident and
/// file-backed builders so both assign identical codes.
fn quantize_row(
    row: &[f32],
    r: usize,
    codes: &mut [u8],
    scale: &mut f32,
    min: &mut f32,
) -> Result<(), QuantError> {
    if row.iter().any(|x| !x.is_finite()) {
        return Err(QuantError::NonFinite { row: r });
    }
    if row.is_empty() {
        return Ok(());
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in row {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    // A row whose value range overflows f32 (e.g. [-3e38, 3e38]) has no
    // representable affine: `scale·code` would reach infinity during
    // dequant. Reject it like a non-finite row — the affine itself is what
    // is non-finite.
    let range = hi - lo;
    if !range.is_finite() {
        return Err(QuantError::NonFinite { row: r });
    }
    let s = range / 255.0;
    *min = lo;
    *scale = s;
    if s == 0.0 {
        // constant row (all-zero included): every code is 0, dequant == min
        codes.fill(0);
        return Ok(());
    }
    for (c, &x) in codes.iter_mut().zip(row) {
        let q = ((x - lo) / s).round();
        *c = q.clamp(0.0, 255.0) as u8;
    }
    Ok(())
}

/// Per-query element sums for the affine identity, ascending element order.
fn query_sums(queries: &[f32], m: usize, d: usize) -> Vec<f32> {
    (0..m)
        .map(|i| queries[i * d..(i + 1) * d].iter().sum())
        .collect()
}

impl EmbeddingStore for QuantizedStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Q8
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.d
    }

    fn gather_into(&self, ids: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), ids.len() * self.d, "gather buffer size mismatch");
        for (slot, &id) in out.chunks_mut(self.d.max(1)).zip(ids) {
            let r = id as usize;
            assert!(r < self.n, "row {r} out of range for {} rows", self.n);
            let (scale, min) = (self.scales[r], self.mins[r]);
            for (o, &c) in slot
                .iter_mut()
                .zip(&self.codes[r * self.d..(r + 1) * self.d])
            {
                *o = min + scale * c as f32;
            }
        }
    }

    fn score_range_into(&self, queries: &[f32], m: usize, lo: usize, hi: usize, out: &mut [f32]) {
        check_score_args(queries, m, lo, hi, out, self.n, self.d);
        let a_sums = query_sums(queries, m, self.d);
        backend::active().gemm_q8_f32(
            queries,
            &a_sums,
            &self.codes[lo * self.d..hi * self.d],
            &self.scales[lo..hi],
            &self.mins[lo..hi],
            out,
            m,
            self.d,
            hi - lo,
        );
    }

    fn resident_bytes(&self) -> usize {
        self.codes.len() + (self.scales.len() + self.mins.len()) * std::mem::size_of::<f32>()
    }

    fn to_blob(&self) -> Vec<u8> {
        let mut out = blob_header(StoreKind::Q8, self.n, self.d);
        push_affine(&mut out, &self.scales, &self.mins);
        out.extend_from_slice(&self.codes);
        out
    }
}

// --------------------------------------------------------------------------
// file-backed u8 + LRU row cache
// --------------------------------------------------------------------------

/// Constant-time LRU over cached rows: a slot arena (codes flat, affine
/// parallel) threaded on an index-based doubly-linked recency list, plus a
/// row→slot map. Eviction pops the list tail; hits splice to the head.
struct LruRowCache {
    cap: usize,
    d: usize,
    map: HashMap<u32, usize>,
    row_of: Vec<u32>,
    codes: Vec<u8>,
    scales: Vec<f32>,
    mins: Vec<f32>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
}

const NONE: usize = usize::MAX;

impl LruRowCache {
    fn new(cap: usize, d: usize) -> LruRowCache {
        LruRowCache {
            cap: cap.max(1),
            d,
            map: HashMap::new(),
            row_of: Vec::new(),
            codes: Vec::new(),
            scales: Vec::new(),
            mins: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    fn unlink(&mut self, s: usize) {
        let (p, nx) = (self.prev[s], self.next[s]);
        if p == NONE {
            self.head = nx;
        } else {
            self.next[p] = nx;
        }
        if nx == NONE {
            self.tail = p;
        } else {
            self.prev[nx] = p;
        }
    }

    fn push_front(&mut self, s: usize) {
        self.prev[s] = NONE;
        self.next[s] = self.head;
        if self.head != NONE {
            self.prev[self.head] = s;
        }
        self.head = s;
        if self.tail == NONE {
            self.tail = s;
        }
    }

    /// Slot of `row` if cached, refreshed to most-recently-used.
    fn get(&mut self, row: u32) -> Option<usize> {
        let s = *self.map.get(&row)?;
        if self.head != s {
            self.unlink(s);
            self.push_front(s);
        }
        Some(s)
    }

    /// Admit `row`, evicting the least-recently-used slot at capacity.
    /// Returns the slot to fill.
    fn insert(&mut self, row: u32) -> usize {
        let s = if self.row_of.len() < self.cap {
            let s = self.row_of.len();
            self.row_of.push(row);
            self.codes.resize((s + 1) * self.d, 0);
            self.scales.push(0.0);
            self.mins.push(0.0);
            self.prev.push(NONE);
            self.next.push(NONE);
            s
        } else {
            let s = self.tail;
            self.unlink(s);
            self.map.remove(&self.row_of[s]);
            self.row_of[s] = row;
            s
        };
        self.map.insert(row, s);
        self.push_front(s);
        s
    }

    fn resident_bytes(&self) -> usize {
        self.codes.len()
            + (self.scales.len() + self.mins.len()) * std::mem::size_of::<f32>()
            + self.map.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<usize>())
    }
}

/// Quantized rows streamed from a backing file through a fixed-budget LRU
/// row cache, so the scorable row set can exceed RAM. The on-disk record is
/// `[scale f32-LE, min f32-LE, codes u8×d]` per row; scoring gathers each
/// candidate block's codes into scratch (cache first, disk on miss) and runs
/// the same fused [`Backend::gemm_q8_f32`] kernel as [`QuantizedStore`], so
/// scores are bitwise identical to the resident quantized store under the
/// same backend — cache state decides where bytes come from, never how they
/// are reduced.
pub struct FileBackedStore {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    n: usize,
    d: usize,
    cache: Mutex<LruRowCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Row block gathered per fused-GEMM call on the streaming score path.
const SCORE_BLOCK_ROWS: usize = 1024;

impl FileBackedStore {
    /// Quantize `rows` (same scheme and typed errors as
    /// [`QuantizedStore::from_rows`]) and spill the codes to `path`, keeping
    /// at most `cache_rows` rows resident.
    pub fn create(
        path: PathBuf,
        rows: &[f32],
        n: usize,
        d: usize,
        cache_rows: usize,
    ) -> Result<FileBackedStore, QuantError> {
        if rows.len() != n * d {
            return Err(QuantError::Misaligned {
                len: rows.len(),
                rows: n,
                dim: d,
            });
        }
        let io = |e: std::io::Error| QuantError::Io(format!("{}: {e}", path.display()));
        let mut file = std::fs::File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io)?;
        let mut record = vec![0u8; 8 + d];
        let (mut scale, mut min) = (0.0f32, 0.0f32);
        for (r, row) in rows.chunks(d.max(1)).enumerate().take(n) {
            quantize_row(row, r, &mut record[8..], &mut scale, &mut min)?;
            record[0..4].copy_from_slice(&scale.to_le_bytes());
            record[4..8].copy_from_slice(&min.to_le_bytes());
            file.write_all(&record).map_err(io)?;
        }
        file.flush().map_err(io)?;
        Ok(FileBackedStore {
            path,
            file: Mutex::new(file),
            n,
            d,
            cache: Mutex::new(LruRowCache::new(cache_rows, d)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A fresh store in the system temp directory (unique per store); the
    /// backing file is removed on drop.
    pub fn create_temp(
        rows: &[f32],
        n: usize,
        d: usize,
        cache_rows: usize,
    ) -> Result<FileBackedStore, QuantError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "came-embed-{}-{}.q8rows",
            std::process::id(),
            SEQ.fetch_add(1, Relaxed)
        ));
        FileBackedStore::create(path, rows, n, d, cache_rows)
    }

    /// The LRU budget in rows (`CAME_EMBED_CACHE_ROWS`, default
    /// [`DEFAULT_CACHE_ROWS`]).
    pub fn cache_rows_from_env() -> usize {
        std::env::var("CAME_EMBED_CACHE_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_CACHE_ROWS)
    }

    /// Copy rows `[lo, hi)` — codes plus affine — into the scratch arrays,
    /// serving from the cache and reading misses from disk (admitting them).
    fn fetch_block(
        &self,
        lo: usize,
        hi: usize,
        codes: &mut [u8],
        scales: &mut [f32],
        mins: &mut [f32],
    ) {
        let d = self.d;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (jj, r) in (lo..hi).enumerate() {
            let slot = match cache.get(r as u32) {
                Some(s) => {
                    hits += 1;
                    s
                }
                None => {
                    misses += 1;
                    let s = cache.insert(r as u32);
                    let mut rec = vec![0u8; 8 + d];
                    {
                        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
                        file.seek(SeekFrom::Start((r * (8 + d)) as u64))
                            .and_then(|_| file.read_exact(&mut rec))
                            .unwrap_or_else(|e| {
                                panic!(
                                    "embedding store read failed at row {r} ({}): {e}",
                                    self.path.display()
                                )
                            });
                    }
                    cache.scales[s] = f32::from_le_bytes(rec[0..4].try_into().unwrap());
                    cache.mins[s] = f32::from_le_bytes(rec[4..8].try_into().unwrap());
                    cache.codes[s * d..(s + 1) * d].copy_from_slice(&rec[8..]);
                    s
                }
            };
            codes[jj * d..(jj + 1) * d].copy_from_slice(&cache.codes[slot * d..(slot + 1) * d]);
            scales[jj] = cache.scales[slot];
            mins[jj] = cache.mins[slot];
        }
        self.hits.fetch_add(hits, Relaxed);
        self.misses.fetch_add(misses, Relaxed);
    }
}

impl Drop for FileBackedStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl EmbeddingStore for FileBackedStore {
    fn kind(&self) -> StoreKind {
        StoreKind::File
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.d
    }

    fn gather_into(&self, ids: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), ids.len() * self.d, "gather buffer size mismatch");
        let d = self.d;
        let mut codes = vec![0u8; d];
        let mut scale = [0.0f32];
        let mut min = [0.0f32];
        for (slot, &id) in out.chunks_mut(d.max(1)).zip(ids) {
            let r = id as usize;
            assert!(r < self.n, "row {r} out of range for {} rows", self.n);
            self.fetch_block(r, r + 1, &mut codes, &mut scale, &mut min);
            for (o, &c) in slot.iter_mut().zip(&codes) {
                *o = min[0] + scale[0] * c as f32;
            }
        }
    }

    fn score_range_into(&self, queries: &[f32], m: usize, lo: usize, hi: usize, out: &mut [f32]) {
        check_score_args(queries, m, lo, hi, out, self.n, self.d);
        let (d, w) = (self.d, hi - lo);
        if w == 0 {
            return;
        }
        let a_sums = query_sums(queries, m, d);
        let b = backend::active();
        let block = SCORE_BLOCK_ROWS;
        let mut codes = vec![0u8; block.min(w) * d];
        let mut scales = vec![0.0f32; block.min(w)];
        let mut mins = vec![0.0f32; block.min(w)];
        let mut scratch = vec![0.0f32; m * block.min(w)];
        let mut j0 = lo;
        while j0 < hi {
            let j1 = (j0 + block).min(hi);
            let bw = j1 - j0;
            self.fetch_block(
                j0,
                j1,
                &mut codes[..bw * d],
                &mut scales[..bw],
                &mut mins[..bw],
            );
            b.gemm_q8_f32(
                queries,
                &a_sums,
                &codes[..bw * d],
                &scales[..bw],
                &mins[..bw],
                &mut scratch[..m * bw],
                m,
                d,
                bw,
            );
            for i in 0..m {
                let at = i * w + (j0 - lo);
                out[at..at + bw].copy_from_slice(&scratch[i * bw..(i + 1) * bw]);
            }
            j0 = j1;
        }
    }

    fn resident_bytes(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resident_bytes()
    }

    fn cache_stats(&self) -> Option<(u64, u64)> {
        Some((self.hits.load(Relaxed), self.misses.load(Relaxed)))
    }

    fn to_blob(&self) -> Vec<u8> {
        // Re-read every row so the blob is exact regardless of cache state.
        let d = self.d;
        let mut codes = vec![0u8; self.n * d];
        let mut scales = vec![0.0f32; self.n];
        let mut mins = vec![0.0f32; self.n];
        const CHUNK: usize = 4096;
        let mut j0 = 0;
        while j0 < self.n {
            let j1 = (j0 + CHUNK).min(self.n);
            self.fetch_block(
                j0,
                j1,
                &mut codes[j0 * d..j1 * d],
                &mut scales[j0..j1],
                &mut mins[j0..j1],
            );
            j0 = j1;
        }
        let mut out = blob_header(StoreKind::File, self.n, self.d);
        push_affine(&mut out, &scales, &mins);
        out.extend_from_slice(&codes);
        out
    }
}

// --------------------------------------------------------------------------
// construction / serialization
// --------------------------------------------------------------------------

/// Build a store of `kind` from flat row-major `[n, d]` f32 rows.
/// `cache_rows` bounds the [`FileBackedStore`] LRU (ignored by resident
/// layouts).
pub fn build_store(
    kind: StoreKind,
    rows: &[f32],
    n: usize,
    d: usize,
    cache_rows: usize,
) -> Result<Box<dyn EmbeddingStore>, QuantError> {
    Ok(match kind {
        StoreKind::F32 => Box::new(DenseF32Store::from_rows(rows.to_vec(), n, d)?),
        StoreKind::Q8 => Box::new(QuantizedStore::from_rows(rows, n, d)?),
        StoreKind::File => Box::new(FileBackedStore::create_temp(rows, n, d, cache_rows)?),
    })
}

const BLOB_MAGIC: &[u8; 4] = b"CEST";

fn blob_header(kind: StoreKind, n: usize, d: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 16);
    out.extend_from_slice(BLOB_MAGIC);
    out.push(match kind {
        StoreKind::F32 => 0,
        StoreKind::Q8 => 1,
        StoreKind::File => 2,
    });
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(d as u64).to_le_bytes());
    out
}

fn push_affine(out: &mut Vec<u8>, scales: &[f32], mins: &[f32]) {
    for &s in scales {
        out.extend_from_slice(&s.to_le_bytes());
    }
    for &m in mins {
        out.extend_from_slice(&m.to_le_bytes());
    }
}

fn blob_err(msg: &str) -> QuantError {
    QuantError::Io(format!("store blob: {msg}"))
}

/// Rebuild a store from [`EmbeddingStore::to_blob`] bytes. A `file`-kind
/// blob is restored to a fresh temp-backed [`FileBackedStore`] with the
/// [`FileBackedStore::cache_rows_from_env`] budget; scores are bit-identical
/// to the captured store in every case.
pub fn store_from_blob(bytes: &[u8]) -> Result<Box<dyn EmbeddingStore>, QuantError> {
    if bytes.len() < 21 || &bytes[0..4] != BLOB_MAGIC {
        return Err(blob_err("bad magic or truncated header"));
    }
    let kind = bytes[4];
    let n = u64::from_le_bytes(bytes[5..13].try_into().unwrap()) as usize;
    let d = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
    let body = &bytes[21..];
    let take_f32s = |at: usize, count: usize| -> Result<Vec<f32>, QuantError> {
        let end = at + count * 4;
        if end > body.len() {
            return Err(blob_err("truncated payload"));
        }
        Ok(body[at..end]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    };
    match kind {
        0 => {
            let data = take_f32s(0, n * d)?;
            Ok(Box::new(DenseF32Store::from_rows(data, n, d)?))
        }
        1 | 2 => {
            let scales = take_f32s(0, n)?;
            let mins = take_f32s(n * 4, n)?;
            let at = 8 * n;
            if at + n * d > body.len() {
                return Err(blob_err("truncated code payload"));
            }
            let codes = body[at..at + n * d].to_vec();
            if kind == 1 {
                Ok(Box::new(QuantizedStore::from_parts(
                    n, d, codes, scales, mins,
                )))
            } else {
                // round-trip through f32 would lose nothing (dequant is
                // exact in f32) but re-quantizing could reassign codes; spill
                // the original codes directly instead.
                let q = QuantizedStore::from_parts(n, d, codes, scales, mins);
                let mut rows = vec![0.0f32; n * d];
                let ids: Vec<u32> = (0..n as u32).collect();
                q.gather_into(&ids, &mut rows);
                let f = FileBackedStore::create_temp(
                    &rows,
                    n,
                    d,
                    FileBackedStore::cache_rows_from_env(),
                )?;
                // Re-quantizing the exact dequantized lattice reproduces the
                // original codes only when rounding agrees; overwrite the
                // file records with the captured codes to guarantee
                // bit-identity.
                rewrite_records(&f, &q)?;
                Ok(Box::new(f))
            }
        }
        k => Err(blob_err(&format!("unknown store kind tag {k}"))),
    }
}

/// Overwrite `f`'s on-disk records with `q`'s exact codes/affine (restore
/// path: guarantees bit-identity with the captured store).
fn rewrite_records(f: &FileBackedStore, q: &QuantizedStore) -> Result<(), QuantError> {
    let io = |e: std::io::Error| QuantError::Io(format!("{}: {e}", f.path.display()));
    let d = f.d;
    let mut file = f.file.lock().unwrap_or_else(|e| e.into_inner());
    file.seek(SeekFrom::Start(0)).map_err(io)?;
    let mut record = vec![0u8; 8 + d];
    for r in 0..f.n {
        record[0..4].copy_from_slice(&q.scales[r].to_le_bytes());
        record[4..8].copy_from_slice(&q.mins[r].to_le_bytes());
        record[8..].copy_from_slice(&q.codes[r * d..(r + 1) * d]);
        file.write_all(&record).map_err(io)?;
    }
    file.flush().map_err(io)?;
    // drop any stale cached rows admitted before the rewrite
    let mut cache = f.cache.lock().unwrap_or_else(|e| e.into_inner());
    *cache = LruRowCache::new(cache.cap, d);
    Ok(())
}

// --------------------------------------------------------------------------
// the serving head
// --------------------------------------------------------------------------

/// A frozen entity scoring head: one [`EmbeddingStore`] of entity rows plus
/// the per-entity bias, scoring `hidden · rowᵀ + bias` without touching the
/// autodiff tape. This is the compact object the serving tier routes
/// [`score_range_into`](EmbeddingStore::score_range_into) through when a
/// non-f32 store is selected.
pub struct EntityHead {
    store: Box<dyn EmbeddingStore>,
    bias: Vec<f32>,
}

impl EntityHead {
    /// Wrap a store and its per-row bias.
    ///
    /// # Panics
    /// Panics if `bias.len() != store.len()`.
    pub fn new(store: Box<dyn EmbeddingStore>, bias: Vec<f32>) -> EntityHead {
        assert_eq!(bias.len(), store.len(), "entity bias length mismatch");
        EntityHead { store, bias }
    }

    /// The underlying row store.
    pub fn store(&self) -> &dyn EmbeddingStore {
        self.store.as_ref()
    }

    /// Fused scoring of the `[m, dim]` hidden block against entity rows
    /// `[lo, hi)`, bias added per candidate column. `out` is row-major
    /// `[m, hi-lo]`.
    pub fn score_into(&self, hidden: &[f32], m: usize, lo: usize, hi: usize, out: &mut [f32]) {
        self.store.score_range_into(hidden, m, lo, hi, out);
        let w = hi - lo;
        for row in out.chunks_mut(w.max(1)) {
            for (o, &b) in row.iter_mut().zip(&self.bias[lo..hi]) {
                *o += b;
            }
        }
    }

    /// Serialize store + bias for checkpoints ([`EntityHead::from_blob`]).
    pub fn to_blob(&self) -> Vec<u8> {
        let store = self.store.to_blob();
        let mut out = Vec::with_capacity(8 + store.len() + 4 * self.bias.len());
        out.extend_from_slice(&(store.len() as u64).to_le_bytes());
        out.extend_from_slice(&store);
        for &b in &self.bias {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Rebuild a head captured by [`EntityHead::to_blob`]; scores
    /// bit-identically to the captured head.
    pub fn from_blob(bytes: &[u8]) -> Result<EntityHead, QuantError> {
        if bytes.len() < 8 {
            return Err(blob_err("truncated head"));
        }
        let slen = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        if 8 + slen > bytes.len() {
            return Err(blob_err("truncated head store"));
        }
        let store = store_from_blob(&bytes[8..8 + slen])?;
        let bias: Vec<f32> = bytes[8 + slen..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if bias.len() != store.len() {
            return Err(blob_err("head bias length mismatch"));
        }
        Ok(EntityHead::new(store, bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn randn_rows(n: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut rng = Prng::new(seed);
        (0..n * d).map(|_| rng.normal() as f32).collect()
    }

    #[test]
    fn dense_store_gathers_and_scores_exactly() {
        let (n, d) = (7, 5);
        let rows = randn_rows(n, d, 1);
        let s = DenseF32Store::from_rows(rows.clone(), n, d).unwrap();
        let mut got = vec![0.0f32; 2 * d];
        s.gather_into(&[3, 0], &mut got);
        assert_eq!(&got[..d], &rows[3 * d..4 * d]);
        assert_eq!(&got[d..], &rows[..d]);

        let q = randn_rows(1, d, 2);
        let mut out = vec![0.0f32; n];
        s.score_range_into(&q, 1, 0, n, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let expect: f32 = (0..d).map(|t| q[t] * rows[j * d + t]).sum();
            assert!((o - expect).abs() <= 1e-5 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let (n, d) = (11, 16);
        let rows = randn_rows(n, d, 3);
        let q = QuantizedStore::from_rows(&rows, n, d).unwrap();
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut deq = vec![0.0f32; n * d];
        q.gather_into(&ids, &mut deq);
        for r in 0..n {
            let step = q.scales[r];
            for t in 0..d {
                let err = (deq[r * d + t] - rows[r * d + t]).abs();
                assert!(
                    err <= 0.5 * step + 1e-6,
                    "row {r} elem {t}: err {err} > half step {step}"
                );
            }
        }
    }

    #[test]
    fn all_zero_and_constant_rows_round_trip_exactly() {
        let d = 9;
        let mut rows = vec![0.0f32; 3 * d];
        rows[d..2 * d].fill(2.75); // constant row
        rows[2 * d..].fill(-1.5e38); // extreme constant row
        let q = QuantizedStore::from_rows(&rows, 3, d).unwrap();
        let mut deq = vec![0.0f32; 3 * d];
        q.gather_into(&[0, 1, 2], &mut deq);
        assert_eq!(deq, rows, "constant rows must dequantize bit-exactly");
        assert_eq!(q.scales, vec![0.0; 3]);
    }

    #[test]
    fn single_element_rows_round_trip_exactly() {
        let rows = vec![3.25f32, -0.5, 0.0, 1e30];
        let q = QuantizedStore::from_rows(&rows, 4, 1).unwrap();
        let mut deq = vec![0.0f32; 4];
        q.gather_into(&[0, 1, 2, 3], &mut deq);
        assert_eq!(deq, rows, "d=1 rows are constant rows: exact");
    }

    #[test]
    fn non_finite_rows_are_rejected_with_row_index() {
        let d = 4;
        let mut rows = randn_rows(5, d, 4);
        rows[2 * d + 1] = f32::NAN;
        assert_eq!(
            QuantizedStore::from_rows(&rows, 5, d).err(),
            Some(QuantError::NonFinite { row: 2 })
        );
        rows[2 * d + 1] = 0.0;
        rows[4 * d + 3] = f32::NEG_INFINITY;
        assert_eq!(
            QuantizedStore::from_rows(&rows, 5, d).err(),
            Some(QuantError::NonFinite { row: 4 })
        );
        assert_eq!(
            FileBackedStore::create_temp(&rows, 5, d, 8).err(),
            Some(QuantError::NonFinite { row: 4 })
        );
    }

    #[test]
    fn misaligned_buffers_are_rejected() {
        let rows = vec![0.0f32; 10];
        assert_eq!(
            QuantizedStore::from_rows(&rows, 3, 4).err(),
            Some(QuantError::Misaligned {
                len: 10,
                rows: 3,
                dim: 4
            })
        );
        assert!(DenseF32Store::from_rows(rows, 3, 4).is_err());
    }

    #[test]
    fn f32_overflowing_value_ranges_are_rejected() {
        // finite values, but max - min overflows f32: no representable affine
        let rows = vec![-3.0e38f32, 3.0e38, 0.0, 1.0];
        assert_eq!(
            QuantizedStore::from_rows(&rows, 1, 4).err(),
            Some(QuantError::NonFinite { row: 0 })
        );
        // a wide-but-representable range still quantizes to finite values
        let rows = vec![-1.0e38f32, 1.0e38, 0.0, 1.0];
        let q = QuantizedStore::from_rows(&rows, 1, 4).unwrap();
        let mut deq = vec![0.0f32; 4];
        q.gather_into(&[0], &mut deq);
        assert!(deq.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn file_store_matches_quantized_store_bitwise_and_evicts() {
        let (n, d, m) = (64, 12, 3);
        let rows = randn_rows(n, d, 5);
        let q = QuantizedStore::from_rows(&rows, n, d).unwrap();
        // budget far below n so scoring must stream and evict
        let f = FileBackedStore::create_temp(&rows, n, d, 8).unwrap();
        let queries = randn_rows(m, d, 6);
        let mut sq = vec![0.0f32; m * n];
        let mut sf = vec![0.0f32; m * n];
        q.score_range_into(&queries, m, 0, n, &mut sq);
        f.score_range_into(&queries, m, 0, n, &mut sf);
        assert_eq!(
            sq, sf,
            "file-backed scores must be bitwise equal to resident q8"
        );
        let (hits, misses) = f.cache_stats().unwrap();
        assert!(
            misses as usize >= n,
            "expected at least one miss per row, got {misses}"
        );
        // second pass over a sub-range: the tiny cache holds the tail rows
        let mut sub_q = vec![0.0f32; m * 8];
        let mut sub_f = vec![0.0f32; m * 8];
        q.score_range_into(&queries, m, n - 8, n, &mut sub_q);
        f.score_range_into(&queries, m, n - 8, n, &mut sub_f);
        assert_eq!(sub_q, sub_f);
        let (hits2, _) = f.cache_stats().unwrap();
        assert!(hits2 > hits, "tail rows should now be cache hits");
        // gathers dequantize identically too
        let ids = [0u32, 31, 63];
        let mut gq = vec![0.0f32; ids.len() * d];
        let mut gf = vec![0.0f32; ids.len() * d];
        q.gather_into(&ids, &mut gq);
        f.gather_into(&ids, &mut gf);
        assert_eq!(gq, gf);
    }

    #[test]
    fn q8_footprint_is_within_budget() {
        let (n, d) = (256, 64);
        let rows = randn_rows(n, d, 7);
        let dense = DenseF32Store::from_rows(rows.clone(), n, d).unwrap();
        let q = QuantizedStore::from_rows(&rows, n, d).unwrap();
        let ratio = q.resident_bytes() as f64 / dense.resident_bytes() as f64;
        assert!(ratio <= 0.35, "q8 resident ratio {ratio} > 0.35");
        let f = FileBackedStore::create_temp(&rows, n, d, 32).unwrap();
        let mut out = vec![0.0f32; n];
        f.score_range_into(&randn_rows(1, d, 8), 1, 0, n, &mut out);
        assert!(
            f.resident_bytes() < q.resident_bytes(),
            "cache-bounded store must stay under resident q8"
        );
    }

    #[test]
    fn store_blobs_round_trip_bit_identically() {
        let (n, d, m) = (40, 10, 2);
        let rows = randn_rows(n, d, 9);
        let queries = randn_rows(m, d, 10);
        for kind in [StoreKind::F32, StoreKind::Q8, StoreKind::File] {
            let s = build_store(kind, &rows, n, d, 16).unwrap();
            let restored = store_from_blob(&s.to_blob()).unwrap();
            let mut a = vec![0.0f32; m * n];
            let mut b = vec![0.0f32; m * n];
            s.score_range_into(&queries, m, 0, n, &mut a);
            restored.score_range_into(&queries, m, 0, n, &mut b);
            assert_eq!(
                a,
                b,
                "{} blob round-trip must score bit-identically",
                kind.name()
            );
        }
    }

    #[test]
    fn entity_head_adds_bias_and_round_trips() {
        let (n, d, m) = (20, 6, 2);
        let rows = randn_rows(n, d, 11);
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();
        let q = build_store(StoreKind::Q8, &rows, n, d, 16).unwrap();
        let head = EntityHead::new(q, bias.clone());
        let hidden = randn_rows(m, d, 12);
        let mut with_bias = vec![0.0f32; m * n];
        head.score_into(&hidden, m, 0, n, &mut with_bias);
        let mut raw = vec![0.0f32; m * n];
        head.store().score_range_into(&hidden, m, 0, n, &mut raw);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(with_bias[i * n + j], raw[i * n + j] + bias[j]);
            }
        }
        let restored = EntityHead::from_blob(&head.to_blob()).unwrap();
        let mut again = vec![0.0f32; m * n];
        restored.score_into(&hidden, m, 0, n, &mut again);
        assert_eq!(
            with_bias, again,
            "head blob round-trip must score bit-identically"
        );
    }

    #[test]
    fn range_scoring_matches_full_scoring_on_every_store() {
        let (n, d, m) = (33, 8, 2);
        let rows = randn_rows(n, d, 13);
        let queries = randn_rows(m, d, 14);
        for kind in [StoreKind::F32, StoreKind::Q8, StoreKind::File] {
            let s = build_store(kind, &rows, n, d, 8).unwrap();
            let mut full = vec![0.0f32; m * n];
            s.score_range_into(&queries, m, 0, n, &mut full);
            let (lo, hi) = (9, 25);
            let mut part = vec![0.0f32; m * (hi - lo)];
            s.score_range_into(&queries, m, lo, hi, &mut part);
            for i in 0..m {
                assert_eq!(
                    &part[i * (hi - lo)..(i + 1) * (hi - lo)],
                    &full[i * n + lo..i * n + hi],
                    "{}: range stripe must equal the full-scoring slice",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kind_parsing_and_env_default() {
        assert_eq!(StoreKind::parse("f32"), Some(StoreKind::F32));
        assert_eq!(StoreKind::parse("Q8"), Some(StoreKind::Q8));
        assert_eq!(StoreKind::parse("int8"), Some(StoreKind::Q8));
        assert_eq!(StoreKind::parse(" file "), Some(StoreKind::File));
        assert_eq!(StoreKind::parse("mmap"), None);
    }
}
