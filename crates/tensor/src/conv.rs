//! Valid stride-1 2-D convolution kernels (forward and backward) via im2col.
//!
//! This is the only convolution the reproduction needs: the CamE scorer and
//! the ConvE baseline both apply a single stride-1 convolution over small
//! stacked feature maps.

use crate::backend::active;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Output spatial size of a valid convolution.
fn out_dims(h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
    assert!(
        kh <= h && kw <= w,
        "kernel {kh}x{kw} larger than input {h}x{w}"
    );
    (h - kh + 1, w - kw + 1)
}

/// Lower one image `[C,H,W]` into columns `[C*kh*kw, oh*ow]`.
fn im2col(x: &[f32], c: usize, h: usize, w: usize, kh: usize, kw: usize, cols: &mut [f32]) {
    let (oh, ow) = out_dims(h, w, kh, kw);
    let ncols = oh * ow;
    debug_assert_eq!(cols.len(), c * kh * kw * ncols);
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let base = &mut cols[row * ncols..(row + 1) * ncols];
                let mut idx = 0;
                for oi in 0..oh {
                    let src = &x[ci * h * w + (oi + ki) * w + kj..];
                    base[idx..idx + ow].copy_from_slice(&src[..ow]);
                    idx += ow;
                }
                row += 1;
            }
        }
    }
}

/// Scatter columns `[C*kh*kw, oh*ow]` back into an image gradient `[C,H,W]`.
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, kh: usize, kw: usize, x: &mut [f32]) {
    let (oh, ow) = out_dims(h, w, kh, kw);
    let ncols = oh * ow;
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let base = &cols[row * ncols..(row + 1) * ncols];
                let mut idx = 0;
                for oi in 0..oh {
                    let dst = &mut x
                        [ci * h * w + (oi + ki) * w + kj..ci * h * w + (oi + ki) * w + kj + ow];
                    for (d, s) in dst.iter_mut().zip(&base[idx..idx + ow]) {
                        *d += s;
                    }
                    idx += ow;
                }
                row += 1;
            }
        }
    }
}

/// Forward valid stride-1 convolution. `x: [B,C,H,W]`, `w: [F,C,kh,kw]`,
/// optional `bias: [F]`; output `[B,F,oh,ow]`.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Tensor {
    let xs = x.shape();
    let ws = w.shape();
    assert_eq!(xs.ndim(), 4, "conv input must be [B,C,H,W], got {xs}");
    assert_eq!(ws.ndim(), 4, "conv weight must be [F,C,kh,kw], got {ws}");
    let (b, c, h, wd) = (xs.at(0), xs.at(1), xs.at(2), xs.at(3));
    let (f, c2, kh, kw) = (ws.at(0), ws.at(1), ws.at(2), ws.at(3));
    assert_eq!(c, c2, "conv channel mismatch: input {c}, weight {c2}");
    let (oh, ow) = out_dims(h, wd, kh, kw);
    let ncols = oh * ow;
    let krows = c * kh * kw;
    // im2col scratch comes from the buffer pool (overwritten in full per
    // batch entry) so steady-state training steps stay allocation-free
    let mut cols = crate::pool::alloc_uninit(krows * ncols);
    let mut out = Tensor::zeros(Shape::d4(b, f, oh, ow));
    for bi in 0..b {
        im2col(
            &x.data()[bi * c * h * wd..(bi + 1) * c * h * wd],
            c,
            h,
            wd,
            kh,
            kw,
            &mut cols,
        );
        let dst = &mut out.data_mut()[bi * f * ncols..(bi + 1) * f * ncols];
        active().matmul(w.data(), &cols, dst, f, krows, ncols);
    }
    crate::pool::recycle(cols);
    if let Some(bias) = bias {
        assert_eq!(bias.shape(), Shape::d1(f), "conv bias must be [F]");
        let data = out.data_mut();
        for bi in 0..b {
            for fi in 0..f {
                let bv = bias.data()[fi];
                for v in &mut data[(bi * f + fi) * ncols..(bi * f + fi + 1) * ncols] {
                    *v += bv;
                }
            }
        }
    }
    out
}

/// Backward pass: gradients w.r.t. input, weight, and bias.
pub fn conv2d_backward(x: &Tensor, w: &Tensor, gout: &Tensor) -> (Tensor, Tensor, Tensor) {
    let xs = x.shape();
    let ws = w.shape();
    let (b, c, h, wd) = (xs.at(0), xs.at(1), xs.at(2), xs.at(3));
    let (f, _, kh, kw) = (ws.at(0), ws.at(1), ws.at(2), ws.at(3));
    let (oh, ow) = out_dims(h, wd, kh, kw);
    let ncols = oh * ow;
    let krows = c * kh * kw;
    assert_eq!(gout.shape(), Shape::d4(b, f, oh, ow), "conv grad shape");

    let mut gx = Tensor::zeros(xs);
    let mut gw = Tensor::zeros(ws);
    let mut gb = Tensor::zeros(Shape::d1(f));
    // pooled scratch shared across batch entries — the old per-entry
    // `cols.clone()` + `Tensor::transpose` pair allocated twice per image
    let mut cols = crate::pool::alloc_uninit(krows * ncols);
    let mut colst = crate::pool::alloc_uninit(krows * ncols);
    let mut gcols = crate::pool::alloc_uninit(krows * ncols);
    // w^T once: [krows, f]
    let wt = w.reshape(Shape::d2(f, krows)).transpose(0, 1);
    for bi in 0..b {
        let gslice = &gout.data()[bi * f * ncols..(bi + 1) * f * ncols];
        // dW += g[f, ncols] x cols^T[ncols, krows]  -> accumulate as
        // gw[f, krows] += g x cols^T; compute via transpose trick:
        im2col(
            &x.data()[bi * c * h * wd..(bi + 1) * c * h * wd],
            c,
            h,
            wd,
            kh,
            kw,
            &mut cols,
        );
        // gw_fk += sum_n g[f,n] cols[k,n]
        for r in 0..krows {
            for ci in 0..ncols {
                colst[ci * krows + r] = cols[r * ncols + ci];
            }
        }
        active().matmul(gslice, &colst, gw.data_mut(), f, ncols, krows);
        // gcols = w^T x g : [krows, ncols]
        gcols.iter_mut().for_each(|v| *v = 0.0);
        active().matmul(wt.data(), gslice, &mut gcols, krows, f, ncols);
        col2im(
            &gcols,
            c,
            h,
            wd,
            kh,
            kw,
            &mut gx.data_mut()[bi * c * h * wd..(bi + 1) * c * h * wd],
        );
        // bias grad
        for fi in 0..f {
            gb.data_mut()[fi] += gslice[fi * ncols..(fi + 1) * ncols].iter().sum::<f32>();
        }
    }
    crate::pool::recycle(cols);
    crate::pool::recycle(colst);
    crate::pool::recycle(gcols);
    (gx, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    /// Direct (naive) convolution used as an oracle.
    fn conv_naive(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Tensor {
        let xs = x.shape();
        let ws = w.shape();
        let (b, c, h, wd) = (xs.at(0), xs.at(1), xs.at(2), xs.at(3));
        let (f, _, kh, kw) = (ws.at(0), ws.at(1), ws.at(2), ws.at(3));
        let (oh, ow) = (h - kh + 1, wd - kw + 1);
        let mut out = Tensor::zeros(Shape::d4(b, f, oh, ow));
        for bi in 0..b {
            for fi in 0..f {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = bias.map_or(0.0, |bv| bv.data()[fi]);
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    acc +=
                                        x.at(&[bi, ci, oi + ki, oj + kj]) * w.at(&[fi, ci, ki, kj]);
                                }
                            }
                        }
                        out.data_mut()[((bi * f + fi) * oh + oi) * ow + oj] = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Prng::new(0);
        let x = Tensor::randn(Shape::d4(2, 3, 6, 5), 1.0, &mut rng);
        let w = Tensor::randn(Shape::d4(4, 3, 3, 2), 1.0, &mut rng);
        let b = Tensor::randn(Shape::d1(4), 1.0, &mut rng);
        let fast = conv2d_forward(&x, &w, Some(&b));
        let slow = conv_naive(&x, &w, Some(&b));
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_matches_numeric() {
        let mut rng = Prng::new(1);
        let x = Tensor::randn(Shape::d4(1, 2, 4, 4), 0.5, &mut rng);
        let w = Tensor::randn(Shape::d4(2, 2, 2, 2), 0.5, &mut rng);
        let gout = Tensor::ones(Shape::d4(1, 2, 3, 3));
        let (gx, gw, gb) = conv2d_backward(&x, &w, &gout);

        let eps = 1e-2;
        // numeric dL/dx where L = sum(conv(x, w))
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (conv2d_forward(&xp, &w, None).sum() - conv2d_forward(&xm, &w, None).sum())
                / (2.0 * eps);
            assert!((gx.data()[i] - num).abs() < 1e-2, "gx[{i}]");
        }
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (conv2d_forward(&x, &wp, None).sum() - conv2d_forward(&x, &wm, None).sum())
                / (2.0 * eps);
            assert!((gw.data()[i] - num).abs() < 1e-2, "gw[{i}]");
        }
        // bias grad: dL/db_f = number of output positions
        for v in gb.data() {
            assert!((v - 9.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_kernel_panics() {
        let x = Tensor::zeros(Shape::d4(1, 1, 2, 2));
        let w = Tensor::zeros(Shape::d4(1, 1, 3, 3));
        let _ = conv2d_forward(&x, &w, None);
    }
}
