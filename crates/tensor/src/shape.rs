//! Compact tensor shapes (up to [`MAX_NDIM`] dimensions) and broadcasting rules.
//!
//! Shapes are stored inline in a fixed array so that shape manipulation never
//! allocates; every tensor op in the training loop goes through this type.

use std::fmt;

/// Maximum supported tensor rank.
///
/// Four dimensions cover everything the CamE reproduction needs: batched
/// affinity matrices are `[B, d1, d2]` and convolution inputs are
/// `[B, C, H, W]`.
pub const MAX_NDIM: usize = 4;

/// A tensor shape: an inline list of 1..=4 dimension sizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_NDIM],
    ndim: u8,
}

impl Shape {
    /// Build a shape from a dimension slice.
    ///
    /// # Panics
    /// Panics if `dims` is empty or longer than [`MAX_NDIM`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_NDIM,
            "shape rank must be 1..={MAX_NDIM}, got {}",
            dims.len()
        );
        let mut d = [1usize; MAX_NDIM];
        d[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: d,
            ndim: dims.len() as u8,
        }
    }

    /// 1-D shape.
    pub fn d1(a: usize) -> Self {
        Self::new(&[a])
    }

    /// 2-D shape.
    pub fn d2(a: usize, b: usize) -> Self {
        Self::new(&[a, b])
    }

    /// 3-D shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Self::new(&[a, b, c])
    }

    /// 4-D shape.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Self::new(&[a, b, c, d])
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim as usize]
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.ndim()`.
    pub fn at(&self, i: usize) -> usize {
        assert!(i < self.ndim(), "axis {i} out of range for {self}");
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> [usize; MAX_NDIM] {
        let n = self.ndim();
        let mut s = [0usize; MAX_NDIM];
        let mut acc = 1;
        for i in (0..n).rev() {
            s[i] = acc;
            acc *= self.dims[i];
        }
        s
    }

    /// The shape with axis `axis` removed (or set to 1 if `keepdim`).
    pub fn reduce(&self, axis: usize, keepdim: bool) -> Shape {
        assert!(axis < self.ndim(), "axis {axis} out of range for {self}");
        if keepdim {
            let mut d = *self;
            d.dims[axis] = 1;
            d
        } else if self.ndim() == 1 {
            Shape::d1(1)
        } else {
            let mut out = [1usize; MAX_NDIM];
            let mut k = 0;
            for (i, &d) in self.dims().iter().enumerate() {
                if i != axis {
                    out[k] = d;
                    k += 1;
                }
            }
            Shape {
                dims: out,
                ndim: (self.ndim() - 1) as u8,
            }
        }
    }

    /// Shape padded on the left with 1s to rank `n` (numpy broadcast alignment).
    pub fn pad_left(&self, n: usize) -> Shape {
        assert!(n >= self.ndim() && n <= MAX_NDIM);
        let mut d = [1usize; MAX_NDIM];
        let off = n - self.ndim();
        for (i, &v) in self.dims().iter().enumerate() {
            d[off + i] = v;
        }
        Shape {
            dims: d,
            ndim: n as u8,
        }
    }

    /// Numpy-style broadcast of two shapes, or `None` if incompatible.
    ///
    /// Dimensions are aligned at the trailing edge; each pair must be equal or
    /// one of them 1.
    pub fn broadcast(a: Shape, b: Shape) -> Option<Shape> {
        let n = a.ndim().max(b.ndim());
        let pa = a.pad_left(n);
        let pb = b.pad_left(n);
        let mut d = [1usize; MAX_NDIM];
        for i in 0..n {
            let (x, y) = (pa.dims[i], pb.dims[i]);
            if x == y {
                d[i] = x;
            } else if x == 1 {
                d[i] = y;
            } else if y == 1 {
                d[i] = x;
            } else {
                return None;
            }
        }
        Some(Shape {
            dims: d,
            ndim: n as u8,
        })
    }

    /// True if `self` can broadcast to exactly `target` (aligned at trailing edge).
    pub fn broadcasts_to(&self, target: Shape) -> bool {
        Shape::broadcast(*self, target) == Some(target)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.at(1), 3);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(&s.strides()[..3], &[12, 4, 1]);
        let s1 = Shape::d1(7);
        assert_eq!(&s1.strides()[..1], &[1]);
    }

    #[test]
    fn reduce_drops_or_keeps_axis() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.reduce(1, false), Shape::d2(2, 4));
        assert_eq!(s.reduce(1, true), Shape::d3(2, 1, 4));
        assert_eq!(Shape::d1(5).reduce(0, false), Shape::d1(1));
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(
            Shape::broadcast(Shape::d2(3, 1), Shape::d2(1, 4)),
            Some(Shape::d2(3, 4))
        );
        assert_eq!(
            Shape::broadcast(Shape::d1(4), Shape::d3(2, 3, 4)),
            Some(Shape::d3(2, 3, 4))
        );
        assert_eq!(Shape::broadcast(Shape::d2(3, 2), Shape::d2(2, 3)), None);
        assert!(Shape::d1(4).broadcasts_to(Shape::d3(2, 3, 4)));
        assert!(!Shape::d1(3).broadcasts_to(Shape::d3(2, 3, 4)));
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn at_out_of_range_panics() {
        Shape::d2(2, 2).at(5);
    }

    #[test]
    fn pad_left_inserts_ones() {
        assert_eq!(Shape::d1(4).pad_left(3), Shape::d3(1, 1, 4));
    }
}
