//! Model parameters and common layers.
//!
//! Parameters are owned by a [`ParamStore`] — a flat arena of named tensors
//! with gradient and Adam-moment buffers. Layers ([`Linear`], [`Conv2dLayer`],
//! [`EmbeddingTable`]) are thin structs holding [`ParamId`]s plus an `apply`
//! method that wires them into a [`Graph`].

use crate::graph::{Graph, Var};
use crate::rng::Prng;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Adam first moment.
    m: Tensor,
    /// Adam second moment.
    v: Tensor,
}

/// Arena of trainable parameters shared by a whole model.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    /// Adam timestep (number of optimiser steps taken).
    pub step: u64,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with initial value `t`.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        let shape = t.shape();
        self.entries.push(ParamEntry {
            name: name.into(),
            grad: Tensor::zeros(shape),
            m: Tensor::zeros(shape),
            v: Tensor::zeros(shape),
            value: t,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Xavier-initialised parameter.
    pub fn add_xavier(&mut self, name: impl Into<String>, shape: Shape, rng: &mut Prng) -> ParamId {
        self.add(name, Tensor::xavier(shape, rng))
    }

    /// Zero-initialised parameter.
    pub fn add_zeros(&mut self, name: impl Into<String>, shape: Shape) -> ParamId {
        self.add(name, Tensor::zeros(shape))
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value (e.g. for loading pretrained weights or constraints).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Current gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable gradient (used by [`Graph::backward`]).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Reset all gradients to zero.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.map_inplace(|_| 0.0);
        }
    }

    /// Global L2 norm of all gradients (the quantity [`clip_grad_norm`]
    /// bounds). Used by divergence sentinels to detect NaN/inf blowups even
    /// when clipping is disabled.
    ///
    /// [`clip_grad_norm`]: ParamStore::clip_grad_norm
    pub fn grad_norm(&self) -> f32 {
        let be = crate::backend::active();
        self.entries
            .iter()
            .map(|e| be.dot(e.grad.data(), e.grad.data()))
            .sum::<f32>()
            .sqrt()
    }

    /// Fault-injection hook: overwrite the first gradient scalar with NaN.
    /// Used by the training runtime's deterministic fault harness
    /// (`nan_grad@step=N`) to exercise divergence-recovery paths; a no-op on
    /// an empty store.
    pub fn poison_first_grad(&mut self) {
        if let Some(e) = self.entries.first_mut() {
            if let Some(g) = e.grad.data_mut().first_mut() {
                *g = f32::NAN;
            }
        }
    }

    /// Global gradient-norm clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total = self.grad_norm();
        if total > max_norm && total > 0.0 {
            let s = max_norm / total;
            for e in &mut self.entries {
                e.grad.map_inplace(|g| g * s);
            }
        }
        total
    }

    /// One Adam update over every parameter, then zero the gradients.
    pub fn adam_step(&mut self, cfg: &Adam) {
        self.step += 1;
        let t = self.step as f32;
        let hp = crate::backend::AdamHp {
            lr: cfg.lr,
            beta1: cfg.beta1,
            beta2: cfg.beta2,
            eps: cfg.eps,
            weight_decay: cfg.weight_decay,
            bias1: 1.0 - cfg.beta1.powf(t),
            bias2: 1.0 - cfg.beta2.powf(t),
        };
        let be = crate::backend::active();
        for e in &mut self.entries {
            be.adam_update(
                e.value.data_mut(),
                e.grad.data(),
                e.m.data_mut(),
                e.v.data_mut(),
                &hp,
            );
        }
        self.zero_grad();
    }

    /// Visit every parameter's optimiser state (value + Adam moments) in
    /// registration order — the raw material of a training checkpoint.
    pub fn state_views(&self) -> impl Iterator<Item = ParamStateView<'_>> {
        self.entries.iter().map(|e| ParamStateView {
            name: &e.name,
            value: &e.value,
            m: &e.m,
            v: &e.v,
        })
    }

    /// Overwrite entry `idx` (registration order) with checkpointed state.
    /// The caller re-registers parameters through normal model construction
    /// first; this validates that the entry matches the snapshot (same name,
    /// same element count) before copying value and Adam moments back in.
    pub fn restore_entry(
        &mut self,
        idx: usize,
        name: &str,
        value: &[f32],
        m: &[f32],
        v: &[f32],
    ) -> Result<(), String> {
        let e = self
            .entries
            .get_mut(idx)
            .ok_or_else(|| format!("checkpoint has {} extra param '{name}'", idx))?;
        if e.name != name {
            return Err(format!(
                "param {idx} name mismatch: store has '{}', checkpoint has '{name}'",
                e.name
            ));
        }
        let n = e.value.numel();
        if value.len() != n || m.len() != n || v.len() != n {
            return Err(format!(
                "param '{name}' size mismatch: store has {n} scalars, checkpoint has {}",
                value.len()
            ));
        }
        e.value.data_mut().copy_from_slice(value);
        e.m.data_mut().copy_from_slice(m);
        e.v.data_mut().copy_from_slice(v);
        Ok(())
    }

    /// Plain SGD update, then zero gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        self.step += 1;
        for e in &mut self.entries {
            let g = e.grad.data().to_vec();
            for (x, gi) in e.value.data_mut().iter_mut().zip(g) {
                *x -= lr * gi;
            }
        }
        self.zero_grad();
    }
}

/// Borrowed view of one parameter's full optimiser state (see
/// [`ParamStore::state_views`]).
pub struct ParamStateView<'a> {
    /// Registration name.
    pub name: &'a str,
    /// Current value.
    pub value: &'a Tensor,
    /// Adam first moment.
    pub m: &'a Tensor,
    /// Adam second moment.
    pub v: &'a Tensor,
}

/// Adam hyper-parameters (defaults match the common 1e-3/0.9/0.999 setting).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl Adam {
    /// Adam with the given learning rate and defaults elsewhere.
    pub fn with_lr(lr: f32) -> Self {
        Adam {
            lr,
            ..Self::default()
        }
    }
}

/// Dense layer `y = x W + b`.
pub struct Linear {
    /// Weight `[in, out]`.
    pub w: ParamId,
    /// Bias `[out]`, absent for pure projections.
    pub b: Option<ParamId>,
}

impl Linear {
    /// Xavier-initialised dense layer with bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut Prng,
    ) -> Self {
        Linear {
            w: store.add_xavier(format!("{name}.w"), Shape::d2(d_in, d_out), rng),
            b: Some(store.add_zeros(format!("{name}.b"), Shape::d1(d_out))),
        }
    }

    /// Xavier-initialised projection without bias.
    pub fn no_bias(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut Prng,
    ) -> Self {
        Linear {
            w: store.add_xavier(format!("{name}.w"), Shape::d2(d_in, d_out), rng),
            b: None,
        }
    }

    /// Apply to `[B, in]` (or `[B, *, in]`) input.
    pub fn apply(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        self.apply_act(g, store, x, crate::backend::Activation::Identity)
    }

    /// Apply followed by an activation, routed through the fused
    /// [`Graph::gemm_bias_act`] kernel (one tape node for GEMM + bias + act).
    pub fn apply_act(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: Var,
        act: crate::backend::Activation,
    ) -> Var {
        let w = g.param(store, self.w);
        let b = self.b.map(|b| g.param(store, b));
        g.gemm_bias_act(x, w, b, act)
    }
}

/// Convolution layer wrapping [`Graph::conv2d`].
pub struct Conv2dLayer {
    /// Filters `[F, C, kh, kw]`.
    pub w: ParamId,
    /// Bias `[F]`.
    pub b: ParamId,
}

impl Conv2dLayer {
    /// He-style initialised filters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kh: usize,
        kw: usize,
        rng: &mut Prng,
    ) -> Self {
        let fan_in = (in_ch * kh * kw) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2dLayer {
            w: store.add(
                format!("{name}.w"),
                Tensor::randn(Shape::d4(out_ch, in_ch, kh, kw), std, rng),
            ),
            b: store.add_zeros(format!("{name}.b"), Shape::d1(out_ch)),
        }
    }

    /// Apply to `[B,C,H,W]`.
    pub fn apply(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.conv2d(x, w, Some(b))
    }
}

/// Embedding table `[n, d]` with row lookup.
pub struct EmbeddingTable {
    /// The table parameter.
    pub table: ParamId,
    /// Number of rows.
    pub n: usize,
    /// Embedding width.
    pub d: usize,
}

impl EmbeddingTable {
    /// Xavier-initialised table.
    pub fn new(
        store: &mut ParamStore,
        name: impl Into<String>,
        n: usize,
        d: usize,
        rng: &mut Prng,
    ) -> Self {
        EmbeddingTable {
            table: store.add_xavier(name, Shape::d2(n, d), rng),
            n,
            d,
        }
    }

    /// Table initialised from precomputed vectors (e.g. frozen modal features).
    pub fn from_tensor(store: &mut ParamStore, name: &str, t: Tensor) -> Self {
        assert_eq!(t.shape().ndim(), 2);
        let (n, d) = (t.shape().at(0), t.shape().at(1));
        EmbeddingTable {
            table: store.add(name, t),
            n,
            d,
        }
    }

    /// Gather rows.
    pub fn lookup(&self, g: &Graph, store: &ParamStore, ids: &[u32]) -> Var {
        g.embedding(store, self.table, ids)
    }

    /// The full table as a graph node `[n, d]`.
    pub fn full(&self, g: &Graph, store: &ParamStore) -> Var {
        g.param(store, self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise ||w - c||^2
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let target = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let w = store.add("w", Tensor::randn(Shape::d1(3), 1.0, &mut rng));
        let cfg = Adam::with_lr(0.05);
        for _ in 0..400 {
            let g = Graph::new();
            let wv = g.param(&store, w);
            let t = g.input(target.clone());
            let diff = g.sub(wv, t);
            let loss = g.sum_all(g.square(diff));
            g.backward(loss, &mut store);
            store.adam_step(&cfg);
        }
        for (x, y) in store.value(w).data().iter().zip(target.data()) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn sgd_descends() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_slice(&[4.0]));
        for _ in 0..100 {
            let g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.sum_all(g.square(wv));
            g.backward(loss, &mut store);
            store.sgd_step(0.1);
        }
        assert!(store.value(w).data()[0].abs() < 1e-3);
    }

    #[test]
    fn linear_shapes_and_learning() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "lin", 4, 2, &mut rng);
        let g = Graph::new();
        let x = g.input(Tensor::randn(Shape::d2(3, 4), 1.0, &mut rng));
        let y = lin.apply(&g, &store, x);
        assert_eq!(g.shape(y), Shape::d2(3, 2));
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_slice(&[0.0, 0.0]));
        store.grad_mut(w).data_mut().copy_from_slice(&[30.0, 40.0]);
        let pre = store.clip_grad_norm(5.0);
        assert!((pre - 50.0).abs() < 1e-4);
        let g = store.grad(w);
        let post = (g.data()[0].powi(2) + g.data()[1].powi(2)).sqrt();
        assert!((post - 5.0).abs() < 1e-4);
    }

    #[test]
    fn embedding_layer_lookup_shape() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let emb = EmbeddingTable::new(&mut store, "e", 10, 6, &mut rng);
        let g = Graph::new();
        let rows = emb.lookup(&g, &store, &[1, 5, 9, 1]);
        assert_eq!(g.shape(rows), Shape::d2(4, 6));
    }

    #[test]
    fn state_views_round_trip_bit_exactly() {
        let mut rng = Prng::new(4);
        let mut store = ParamStore::new();
        let _ = Linear::new(&mut store, "l", 3, 2, &mut rng);
        // take a few Adam steps so the moments are non-trivial
        for _ in 0..3 {
            let g = crate::graph::Graph::new();
            let w = store.ids().next().unwrap();
            let wv = g.param(&store, w);
            let loss = g.sum_all(g.square(wv));
            g.backward(loss, &mut store);
            store.adam_step(&Adam::with_lr(0.1));
        }
        let saved: Vec<(String, Vec<f32>, Vec<f32>, Vec<f32>)> = store
            .state_views()
            .map(|s| {
                (
                    s.name.to_string(),
                    s.value.data().to_vec(),
                    s.m.data().to_vec(),
                    s.v.data().to_vec(),
                )
            })
            .collect();
        let step = store.step;

        // fresh store with the same registration order, different init
        let mut rng2 = Prng::new(99);
        let mut other = ParamStore::new();
        let _ = Linear::new(&mut other, "l", 3, 2, &mut rng2);
        for (i, (name, value, m, v)) in saved.iter().enumerate() {
            other.restore_entry(i, name, value, m, v).unwrap();
        }
        other.step = step;
        for (a, b) in store.state_views().zip(other.state_views()) {
            assert_eq!(a.value.data(), b.value.data());
            assert_eq!(a.m.data(), b.m.data());
            assert_eq!(a.v.data(), b.v.data());
        }
        // mismatched name / size are rejected with context
        assert!(other
            .restore_entry(0, "wrong", &[0.0; 6], &[0.0; 6], &[0.0; 6])
            .is_err());
        assert!(other
            .restore_entry(0, "l.w", &[0.0; 2], &[0.0; 2], &[0.0; 2])
            .is_err());
    }

    #[test]
    fn num_scalars_counts_everything() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let _ = Linear::new(&mut store, "l", 3, 5, &mut rng);
        assert_eq!(store.num_scalars(), 3 * 5 + 5);
    }
}
