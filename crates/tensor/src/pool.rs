//! Thread-local buffer recycling for the autodiff tape.
//!
//! Every training step builds a [`crate::graph::Graph`] whose node values,
//! gradients, and temporaries are `Vec<f32>`s of the *same* lengths as the
//! previous step. Instead of round-tripping each buffer through the global
//! allocator, dropped tensors park their storage in a thread-local free list
//! keyed by exact length; the next allocation of that length pops it back.
//! After one warm-up step, steady-state training performs (near) zero heap
//! allocation — the [`stats`] counters prove it.
//!
//! Design notes:
//!
//! - **Thread-local, not global.** Worker threads spawned by the parallel
//!   backend operate on borrowed slices and never allocate tensors; the few
//!   call sites that build graphs on scoped threads (per-shard eval scoring)
//!   get a private pool that dies with the thread. No locks anywhere.
//! - **Exact-length classes.** Training steps repeat identical shapes, so an
//!   exact-match free list has a 100% hit rate after warm-up and never wastes
//!   memory on over-sized buffers.
//! - **Bounded.** Each class keeps at most [`MAX_PER_CLASS`] buffers and the
//!   whole pool at most [`MAX_POOL_FLOATS`] floats; excess buffers fall back
//!   to the allocator (plain drop).
//! - **Bit-identical results.** [`alloc_zeroed`] returns all-zero buffers
//!   exactly like `vec![0.0; n]`, and recycled buffers that skip the zeroing
//!   fast path ([`alloc_uninit`]) are only handed to callers that overwrite
//!   every element.
//!
//! The pool can be disabled process-wide with [`set_enabled`] (or
//! `CAME_POOL=0` at launch) to recover the fresh-allocation baseline; the
//! micro-bench uses this to report pooled vs unpooled step times.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Per-length-class cap on parked buffers. A define-by-run tape keeps every
/// node's value buffer alive until `Graph::reset`, so one training step can
/// hold hundreds of same-length activations at once; the cap must exceed
/// that high-water mark for steady-state steps to allocate nothing. Total
/// memory stays bounded by [`MAX_POOL_FLOATS`].
const MAX_PER_CLASS: usize = 1024;
/// Total floats the pool may hold per thread (64 Mi floats = 256 MiB).
const MAX_POOL_FLOATS: usize = 64 * 1024 * 1024;

/// Allocation counters for the calling thread's pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from the free list.
    pub hits: u64,
    /// Allocations that fell through to the heap (counted even when the pool
    /// is disabled, so the counter always reflects real allocator traffic).
    pub misses: u64,
    /// Buffers parked back into the free list on drop.
    pub returned: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the pool (`1.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct BufferPool {
    free: HashMap<usize, Vec<Vec<f32>>>,
    free_ids: Vec<Vec<u32>>,
    total_floats: usize,
    stats: PoolStats,
}

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            free: HashMap::new(),
            free_ids: Vec::new(),
            total_floats: 0,
            stats: PoolStats::default(),
        }
    }

    /// Pop a buffer of exactly `len` elements, or `None` on a miss. Popped
    /// buffers keep their previous (stale) contents.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        if !enabled() {
            self.miss();
            return None;
        }
        match self.free.get_mut(&len).and_then(|list| list.pop()) {
            Some(v) => {
                debug_assert_eq!(v.len(), len);
                self.total_floats -= len;
                self.stats.hits += 1;
                if came_obs::enabled() {
                    pool_obs().hits.add(1);
                }
                Some(v)
            }
            None => {
                self.miss();
                None
            }
        }
    }

    fn miss(&mut self) {
        self.stats.misses += 1;
        if came_obs::enabled() {
            pool_obs().misses.add(1);
        }
    }

    fn give(&mut self, v: Vec<f32>) {
        let len = v.len();
        if len == 0 || !enabled() || self.total_floats + len > MAX_POOL_FLOATS {
            return;
        }
        let list = self.free.entry(len).or_default();
        if list.len() >= MAX_PER_CLASS {
            return;
        }
        self.total_floats += len;
        self.stats.returned += 1;
        if came_obs::enabled() {
            pool_obs().returned.add(1);
        }
        list.push(v);
    }
}

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
}

// --------------------------------------------------------------------------
// process-wide observability
// --------------------------------------------------------------------------

/// Process-wide pool metric handles. [`PoolStats`] is per-thread (and dies
/// with the thread), so multi-threaded hit rates are invisible from the main
/// thread; these aggregate every thread's traffic into the shared registry.
struct PoolObs {
    hits: &'static came_obs::Counter,
    misses: &'static came_obs::Counter,
    returned: &'static came_obs::Counter,
    outstanding: &'static came_obs::Gauge,
}

fn pool_obs() -> &'static PoolObs {
    static OBS: std::sync::OnceLock<PoolObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = came_obs::registry();
        PoolObs {
            hits: r.counter("pool.hits"),
            misses: r.counter("pool.misses"),
            returned: r.counter("pool.returned"),
            outstanding: r.gauge("pool.outstanding"),
        }
    })
}

/// +1 on every pooled float-buffer allocation, -1 on every recycle; the
/// `pool.outstanding` gauge therefore tracks live buffers drawn through the
/// pool allocator across all threads.
#[inline]
fn obs_outstanding(delta: i64) {
    if came_obs::enabled() {
        pool_obs().outstanding.add(delta);
    }
}

thread_local! {
    // Per-thread enable switch (None = uninitialised, read CAME_POOL once).
    // Thread-local rather than global so parallel test threads and the
    // bench's pooled/unpooled A-B runs cannot race each other.
    static POOL_ENABLED: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Whether recycling is active on this thread (reads `CAME_POOL` on first
/// use; default on).
pub fn enabled() -> bool {
    POOL_ENABLED.with(|e| match e.get() {
        Some(on) => on,
        None => {
            let on = !matches!(
                std::env::var("CAME_POOL").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            e.set(Some(on));
            on
        }
    })
}

/// Enable or disable buffer recycling for the calling thread. Disabling does
/// not drop already-parked buffers (call [`clear`] for that) but stops both
/// reuse and parking, so subsequent allocations hit the heap — the
/// "unpooled" baseline.
pub fn set_enabled(on: bool) {
    POOL_ENABLED.with(|e| e.set(Some(on)));
}

/// An all-zero buffer of `len` floats, recycled when possible.
pub fn alloc_zeroed(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    obs_outstanding(1);
    match POOL.try_with(|p| p.borrow_mut().take(len)) {
        Ok(Some(mut v)) => {
            v.fill(0.0);
            v
        }
        _ => vec![0.0; len],
    }
}

/// A buffer of `len` floats with **unspecified contents** (stale values from
/// its previous life). Callers must overwrite every element before the buffer
/// escapes; use [`alloc_zeroed`] when in doubt.
pub fn alloc_uninit(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    obs_outstanding(1);
    match POOL.try_with(|p| p.borrow_mut().take(len)) {
        Ok(Some(v)) => v,
        _ => vec![0.0; len],
    }
}

/// A buffer filled with `v`.
pub fn alloc_filled(len: usize, v: f32) -> Vec<f32> {
    let mut out = alloc_uninit(len);
    out.fill(v);
    out
}

/// A recycled copy of `src`.
pub fn alloc_copy(src: &[f32]) -> Vec<f32> {
    let mut out = alloc_uninit(src.len());
    out.copy_from_slice(src);
    out
}

/// Park a buffer for reuse (called by `Tensor::drop`). Safe during thread
/// teardown: if the thread-local pool is already gone the buffer just drops.
pub fn recycle(v: Vec<f32>) {
    if v.is_empty() {
        return;
    }
    obs_outstanding(-1);
    let _ = POOL.try_with(|p| p.borrow_mut().give(v));
}

/// Counters for the calling thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Zero the calling thread's counters (parked buffers are kept).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Drop every parked buffer on the calling thread and zero the counters.
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.free_ids.clear();
        p.total_floats = 0;
        p.stats = PoolStats::default();
    });
}

// --------------------------------------------------------------------------
// aligned scratch buffers
// --------------------------------------------------------------------------

/// Parked aligned buffers per length class. These are few (one GEMM packing
/// panel per live kernel call) and small, so a tight cap keeps the footprint
/// negligible.
const MAX_ALIGNED_PER_CLASS: usize = 8;

thread_local! {
    // Free list for AlignedBuf storage, keyed by element count. Kept apart
    // from the Vec<f32> pool because the two allocation families use
    // different Layouts and must never be mixed (dealloc with a mismatched
    // Layout is undefined behaviour).
    static ALIGNED_FREE: RefCell<HashMap<usize, Vec<std::ptr::NonNull<f32>>>> =
        RefCell::new(HashMap::new());
}

fn aligned_layout(len: usize) -> std::alloc::Layout {
    std::alloc::Layout::from_size_align(len * std::mem::size_of::<f32>(), AlignedBuf::ALIGN)
        .expect("aligned buffer layout")
}

/// A 64-byte-aligned `f32` buffer with thread-local recycling, for kernels
/// whose aligned vector loads need a guaranteed alignment that `Vec<f32>`
/// cannot promise (the SIMD GEMM's packed B panels). Allocated zeroed on a
/// cold miss; recycled buffers keep stale contents, so callers must write
/// before reading — the packing loop overwrites its panel before use.
///
/// Dropping parks the storage in a bounded per-length free list (or frees it
/// with the *same* Layout it was allocated with — the invariant that makes
/// this sound where coercing a `Vec` to a stricter alignment would not be).
pub struct AlignedBuf {
    ptr: std::ptr::NonNull<f32>,
    len: usize,
}

impl AlignedBuf {
    /// Guaranteed alignment in bytes (one cache line; covers any SSE/AVX
    /// vector width in use).
    pub const ALIGN: usize = 64;

    /// A buffer of `len` floats aligned to [`AlignedBuf::ALIGN`]. Contents
    /// are zero on a fresh allocation and stale on a pool hit.
    pub fn alloc(len: usize) -> AlignedBuf {
        if len == 0 {
            return AlignedBuf {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            };
        }
        let hit = ALIGNED_FREE
            .try_with(|f| f.borrow_mut().get_mut(&len).and_then(|list| list.pop()))
            .ok()
            .flatten();
        if let Some(ptr) = hit {
            return AlignedBuf { ptr, len };
        }
        let layout = aligned_layout(len);
        // SAFETY: len > 0, so the layout has non-zero size.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) } as *mut f32;
        match std::ptr::NonNull::new(raw) {
            Some(ptr) => AlignedBuf { ptr, len },
            None => std::alloc::handle_alloc_error(layout),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let parked = ALIGNED_FREE
            .try_with(|f| {
                let mut f = f.borrow_mut();
                let list = f.entry(self.len).or_default();
                if list.len() < MAX_ALIGNED_PER_CLASS {
                    list.push(self.ptr);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if !parked {
            // SAFETY: allocated by `alloc` with exactly this layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, aligned_layout(self.len)) }
        }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        // SAFETY: ptr/len describe one live allocation (or a dangling pointer
        // with len 0, for which from_raw_parts is defined).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus exclusive ownership of the allocation.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

// --------------------------------------------------------------------------
// id buffers
// --------------------------------------------------------------------------

/// A recycled `Vec<u32>` for embedding / gather / scatter index lists. The
/// tape used to `to_vec()` the caller's ids into every op; `IdBuf` reuses a
/// thread-local free list instead (capacity-keyed is unnecessary — id lists
/// are small and `Vec::extend` regrows at most once per class change).
pub struct IdBuf(Vec<u32>);

impl IdBuf {
    /// Copy `ids` into a recycled buffer.
    pub fn from_slice(ids: &[u32]) -> Self {
        let mut v = POOL
            .try_with(|p| p.borrow_mut().free_ids.pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        v.clear();
        v.extend_from_slice(ids);
        IdBuf(v)
    }
}

impl Drop for IdBuf {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.0);
        if v.capacity() == 0 {
            return;
        }
        let _ = POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            if p.free_ids.len() < MAX_PER_CLASS {
                p.free_ids.push(v);
            }
        });
    }
}

impl Clone for IdBuf {
    fn clone(&self) -> Self {
        IdBuf::from_slice(&self.0)
    }
}

impl std::ops::Deref for IdBuf {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        &self.0
    }
}

impl std::fmt::Debug for IdBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each #[test] runs on its own thread, so the thread-local pool is
    // naturally isolated per test.

    #[test]
    fn round_trip_reuses_storage() {
        set_enabled(true);
        clear();
        let v = alloc_zeroed(1000);
        let ptr = v.as_ptr();
        recycle(v);
        let w = alloc_zeroed(1000);
        assert_eq!(w.as_ptr(), ptr, "same buffer must come back");
        assert!(w.iter().all(|&x| x == 0.0));
        let s = stats();
        assert_eq!((s.hits, s.misses, s.returned), (1, 1, 1));
    }

    #[test]
    fn exact_length_classes_do_not_cross() {
        set_enabled(true);
        clear();
        recycle(vec![1.0; 8]);
        let v = alloc_zeroed(9);
        assert_eq!(v.len(), 9);
        assert_eq!(stats().hits, 0, "length 8 must not serve a length-9 ask");
    }

    #[test]
    fn disabled_pool_always_misses() {
        set_enabled(false);
        clear();
        recycle(vec![1.0; 64]);
        let _ = alloc_zeroed(64);
        let s = stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.returned, 0);
        assert_eq!(s.misses, 1);
        set_enabled(true);
    }

    #[test]
    fn uninit_keeps_stale_contents_and_filled_overwrites() {
        set_enabled(true);
        clear();
        recycle(vec![7.0; 16]);
        let v = alloc_uninit(16);
        assert!(v.iter().all(|&x| x == 7.0), "uninit must skip zeroing");
        recycle(v);
        let w = alloc_filled(16, 2.5);
        assert!(w.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn per_class_cap_bounds_growth() {
        set_enabled(true);
        clear();
        for _ in 0..(MAX_PER_CLASS + 10) {
            recycle(vec![0.0; 4]);
        }
        assert_eq!(stats().returned as usize, MAX_PER_CLASS);
    }

    #[test]
    fn obs_gauges_aggregate_across_threads() {
        let _guard = crate::obs_test_guard();
        came_obs::set_enabled(true);
        let r = came_obs::registry();
        let hits0 = r.counter("pool.hits").get();
        let miss0 = r.counter("pool.misses").get();
        let ret0 = r.counter("pool.returned").get();
        // Two worker threads, each with its own thread-local pool: one miss
        // (cold alloc), one park, one hit (warm alloc) apiece. The process
        // counters must see contributions from both threads even though each
        // thread's PoolStats dies with it.
        let worker = || {
            set_enabled(true);
            let v = alloc_zeroed(12_345);
            recycle(v);
            let w = alloc_zeroed(12_345);
            assert_eq!(stats().hits, 1);
            recycle(w);
        };
        std::thread::scope(|s| {
            let a = s.spawn(worker);
            let b = s.spawn(worker);
            a.join().unwrap();
            b.join().unwrap();
        });
        came_obs::set_enabled(false);
        // >= rather than == : other tests in this binary may run concurrently
        // and also touch the shared registry.
        assert!(r.counter("pool.hits").get() >= hits0 + 2);
        assert!(r.counter("pool.misses").get() >= miss0 + 2);
        assert!(r.counter("pool.returned").get() >= ret0 + 4);
    }

    #[test]
    fn aligned_buf_alignment_reuse_and_zero_len() {
        let a = AlignedBuf::alloc(1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(a.as_ptr() as usize % AlignedBuf::ALIGN, 0);
        assert!(a.iter().all(|&x| x == 0.0), "cold alloc must be zeroed");
        let p = a.as_ptr();
        drop(a);
        let b = AlignedBuf::alloc(1000);
        assert_eq!(b.as_ptr(), p, "same aligned buffer must come back");
        assert_eq!(b.as_ptr() as usize % AlignedBuf::ALIGN, 0);
        let c = AlignedBuf::alloc(999);
        assert_ne!(c.as_ptr(), b.as_ptr(), "length classes must not cross");
        let z = AlignedBuf::alloc(0);
        assert!(z.is_empty());
        assert_eq!(&z[..], &[] as &[f32]);
    }

    #[test]
    fn id_buf_round_trips() {
        let ids = IdBuf::from_slice(&[3, 1, 4, 1, 5]);
        assert_eq!(&ids[..], &[3, 1, 4, 1, 5]);
        let c = ids.clone();
        assert_eq!(&c[..], &ids[..]);
        drop(ids);
        let again = IdBuf::from_slice(&[9]);
        assert_eq!(&again[..], &[9]);
    }
}
