//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (initialisation, dropout,
//! negative sampling, data generation) takes an explicit seed so that
//! experiment tables regenerate bit-stably. The generator is SplitMix64 — a
//! tiny, well-mixed 64-bit generator that is more than adequate for model
//! initialisation and sampling (we do not need cryptographic strength).

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Prng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            spare_normal: None,
        }
    }

    /// Derive an independent child generator; used to give each subsystem its
    /// own stream without consuming from the parent's sequence order.
    pub fn fork(&mut self, tag: u64) -> Prng {
        let s = self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        Prng::new(s)
    }

    /// Snapshot the full generator state as three words (raw state, a flag
    /// for the cached Box-Muller spare, and the spare's bit pattern), for
    /// checkpointing. [`Prng::from_saved`] restores a bit-identical stream.
    pub fn save_state(&self) -> [u64; 3] {
        [
            self.state,
            u64::from(self.spare_normal.is_some()),
            self.spare_normal.unwrap_or(0.0).to_bits(),
        ]
    }

    /// Rebuild a generator from [`Prng::save_state`] output. The restored
    /// generator continues the saved stream exactly.
    pub fn from_saved(words: [u64; 3]) -> Prng {
        Prng {
            state: words[0],
            spare_normal: (words[1] != 0).then(|| f64::from_bits(words[2])),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Prng::below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // n << 2^64 values used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box-Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = self.uniform();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            let v = self.uniform();
            let r = (-2.0 * u.ln()).sqrt();
            let (s, c) = (std::f64::consts::TAU * v).sin_cos();
            self.spare_normal = Some(r * s);
            return r * c;
        }
    }

    /// Normal with the given mean and standard deviation, as `f32`.
    pub fn normal_in(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// Sample an index from unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted sampling needs positive total weight"
        );
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (floyd's algorithm order is
    /// not needed; we shuffle a prefix). `k` is clamped to `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // partial Fisher-Yates: first k slots become the sample
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Prng::new(1);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Prng::new(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Prng::new(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_prefers_heavy_entries() {
        let mut r = Prng::new(4);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Prng::new(5);
        let s = r.sample_indices(10, 6);
        assert_eq!(s.len(), 6);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(s.iter().all(|&i| i < 10));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(6);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn save_restore_continues_stream_bit_exactly() {
        let mut a = Prng::new(99);
        // consume an odd number of normals so a Box-Muller spare is cached
        let _ = a.normal();
        let saved = a.save_state();
        let mut b = Prng::from_saved(saved);
        for _ in 0..16 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Prng::new(7);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
