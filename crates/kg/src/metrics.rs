//! Ranking metrics: MR, MRR and Hits@n.

/// Accumulator of 1-based ranks producing the metrics the paper reports.
#[derive(Clone, Debug, Default)]
pub struct RankMetrics {
    sum_rank: f64,
    sum_reciprocal: f64,
    hits1: usize,
    hits3: usize,
    hits10: usize,
    count: usize,
}

impl RankMetrics {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (possibly fractional, for tie-expected) 1-based rank.
    ///
    /// # Panics
    /// Panics if `rank < 1`.
    pub fn push(&mut self, rank: f64) {
        assert!(rank >= 1.0, "ranks are 1-based, got {rank}");
        self.sum_rank += rank;
        self.sum_reciprocal += 1.0 / rank;
        if rank <= 1.0 {
            self.hits1 += 1;
        }
        if rank <= 3.0 {
            self.hits3 += 1;
        }
        if rank <= 10.0 {
            self.hits10 += 1;
        }
        self.count += 1;
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RankMetrics) {
        self.sum_rank += other.sum_rank;
        self.sum_reciprocal += other.sum_reciprocal;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.count += other.count;
    }

    /// Number of ranked queries.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean rank (lower is better).
    pub fn mr(&self) -> f64 {
        self.sum_rank / self.count.max(1) as f64
    }

    /// Mean reciprocal rank in `[0, 1]` (higher is better).
    pub fn mrr(&self) -> f64 {
        self.sum_reciprocal / self.count.max(1) as f64
    }

    /// Hits@n for `n ∈ {1, 3, 10}`.
    ///
    /// # Panics
    /// Panics for other `n`.
    pub fn hits(&self, n: usize) -> f64 {
        let h = match n {
            1 => self.hits1,
            3 => self.hits3,
            10 => self.hits10,
            _ => panic!("hits@{n} not tracked"),
        };
        h as f64 / self.count.max(1) as f64
    }

    /// Render as the paper's percent convention:
    /// `MRR  MR  H@1  H@3  H@10` (MRR/Hits ×100).
    pub fn row(&self) -> String {
        format!(
            "{:5.1} {:6.0} {:5.1} {:5.1} {:5.1}",
            self.mrr() * 100.0,
            self.mr(),
            self.hits(1) * 100.0,
            self.hits(3) * 100.0,
            self.hits(10) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_perfect_rank() {
        let mut m = RankMetrics::new();
        m.push(1.0);
        assert_eq!(m.mr(), 1.0);
        assert_eq!(m.mrr(), 1.0);
        assert_eq!(m.hits(1), 1.0);
        assert_eq!(m.hits(10), 1.0);
    }

    #[test]
    fn mixed_ranks() {
        let mut m = RankMetrics::new();
        for r in [1.0, 2.0, 4.0, 20.0] {
            m.push(r);
        }
        assert!((m.mr() - 6.75).abs() < 1e-9);
        assert!((m.mrr() - (1.0 + 0.5 + 0.25 + 0.05) / 4.0).abs() < 1e-9);
        assert_eq!(m.hits(1), 0.25);
        assert_eq!(m.hits(3), 0.5);
        assert_eq!(m.hits(10), 0.75);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = RankMetrics::new();
        let mut b = RankMetrics::new();
        let mut all = RankMetrics::new();
        for (i, r) in [1.0, 3.0, 7.0, 11.0, 2.0].iter().enumerate() {
            if i % 2 == 0 {
                a.push(*r)
            } else {
                b.push(*r)
            }
            all.push(*r);
        }
        a.merge(&b);
        assert!((a.mr() - all.mr()).abs() < 1e-12);
        assert!((a.mrr() - all.mrr()).abs() < 1e-12);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn fractional_rank_counts_toward_hits_threshold() {
        let mut m = RankMetrics::new();
        m.push(2.5);
        assert_eq!(m.hits(1), 0.0);
        assert_eq!(m.hits(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_panics() {
        RankMetrics::new().push(0.0);
    }
}
