//! Shared trainers: 1-N multi-label BCE (the paper's optimisation, Eqn. 16)
//! and self-adversarial negative sampling (used by the RotatE-family
//! baselines).
//!
//! Every model in the reproduction — CamE and all thirteen baselines — trains
//! through one of these two loops, so wall-clock and quality comparisons
//! (Table III, Fig. 8) are measured on identical machinery.

use came_tensor::{Adam, Graph, ParamStore, Prng, Shape, Tensor, Var};

use crate::dataset::{KgDataset, Split};
use crate::eval::TailScorer;
use crate::labels::{NegativePolicy, OneToNBatcher};
use crate::negative::NegativeSampler;
use crate::runtime::{self, FaultState, RuntimeConfig, TrainError, TrainEvent, TrainRun};
use crate::vocab::{EntityId, RelationId};

/// A model scored with 1-N forward passes: given `B` `(head, relation)`
/// queries it produces logits over all `N` entities.
pub trait OneToNModel {
    /// Build the forward graph; result shape `[B, N]`.
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var;

    /// Optional auxiliary loss added to each step *after* the BCE term
    /// (e.g. CamE's cross-modal contrastive alignment). Called once per
    /// batch with the `(head, relation)` queries, after [`Self::forward`]
    /// on the same graph — so it may reuse cached activations. Return the
    /// already-weighted scalar term, or `None` for no extra loss.
    fn aux_loss(
        &self,
        _g: &Graph,
        _store: &ParamStore,
        _heads: &[u32],
        _rels: &[u32],
    ) -> Option<Var> {
        None
    }

    /// Opaque model-side mutable state to include in training checkpoints
    /// (e.g. a dropout RNG behind a `RefCell`). Parameters live in the
    /// [`ParamStore`] and are captured separately; this covers everything
    /// else a bit-identical resume needs. Default: stateless.
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state captured by [`OneToNModel::state_bytes`] (interior
    /// mutability keeps the receiver shared). Errs on incompatible bytes.
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("model is stateless but checkpoint carries model state".into())
        }
    }

    /// When the divergence sentinel trips, name the failing input source if
    /// the model can tell (e.g. which frozen modality cache holds NaN/inf).
    fn diagnose_non_finite(&self) -> Option<String> {
        None
    }

    /// Whether scores for `entity` as query head come from a degraded path
    /// (a modality the model normally uses is absent for this entity, so a
    /// fallback stood in). Serving tags such responses `degraded: true`.
    /// Default: never degraded.
    fn degraded(&self, _entity: u32) -> bool {
        false
    }

    /// Build the forward graph up to — but excluding — the final
    /// all-entity scoring product: result shape `[B, d]` such that
    /// `forward == hidden @ E^T + bias`. Models that expose this (plus
    /// [`OneToNModel::entity_head`]) let serving route candidate scoring
    /// through a fused [`came_tensor::EntityHead`] instead of the graph's
    /// dense matmul. Default: not separable.
    fn forward_hidden(
        &self,
        _g: &Graph,
        _store: &ParamStore,
        _heads: &[u32],
        _rels: &[u32],
    ) -> Option<Var> {
        None
    }

    /// The frozen entity scoring head, when [`OneToNModel::prepare_serving`]
    /// has built one. Default: none.
    fn entity_head(&self) -> Option<std::sync::Arc<came_tensor::EntityHead>> {
        None
    }

    /// Hook called when the model is put behind a scoring engine: freeze
    /// whatever serving-side structures the model wants (e.g. a quantized
    /// entity store selected by `CAME_EMBED_STORE`). Must be infallible —
    /// implementations fall back to their dense path on failure. Default:
    /// nothing to prepare.
    fn prepare_serving(&self, _store: &ParamStore) {}

    /// Serialise the frozen entity store for checkpoints, if one is active.
    /// Default: none.
    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore an entity store captured by
    /// [`OneToNModel::entity_store_blob`]. Errs if the model cannot host
    /// one.
    fn restore_entity_store(&self, _bytes: &[u8]) -> Result<(), String> {
        Err("model has no entity store to restore".into())
    }
}

/// A model scored per-triple (for negative-sampling training): higher score
/// means more plausible.
///
/// `Sync` is a supertrait so evaluation can shard the 1-vs-all scoring of a
/// query across threads (see [`TripleScorerAdapter`]); triple models hold
/// only plain parameter handles, so this costs implementors nothing.
pub trait TripleModel: Sync {
    /// Build the forward graph; result shape `[B]` (or `[B,1]`).
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var;

    /// Optional auxiliary loss added to each step (e.g. TransAE's
    /// autoencoder reconstruction term). Called once per batch with the
    /// positive triples.
    fn aux_loss(
        &self,
        _g: &Graph,
        _store: &ParamStore,
        _h: &[u32],
        _r: &[u32],
        _t: &[u32],
    ) -> Option<Var> {
        None
    }

    /// Opaque model-side mutable state to include in training checkpoints.
    /// See [`OneToNModel::state_bytes`]. Default: stateless.
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state captured by [`TripleModel::state_bytes`].
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err("model is stateless but checkpoint carries model state".into())
        }
    }

    /// Name the failing input source on a sentinel trip, if known.
    fn diagnose_non_finite(&self) -> Option<String> {
        None
    }
}

// Delegating impls so [`crate::model::OneToNKge`] / [`crate::model::TripleKge`]
// can wrap a model by reference (bench: borrowed CamE) or by box (registry:
// type-erased baselines) without per-model glue.

impl<M: OneToNModel + ?Sized> OneToNModel for &M {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        (**self).forward(g, store, heads, rels)
    }
    fn aux_loss(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Option<Var> {
        (**self).aux_loss(g, store, heads, rels)
    }
    fn degraded(&self, entity: u32) -> bool {
        (**self).degraded(entity)
    }
    fn state_bytes(&self) -> Vec<u8> {
        (**self).state_bytes()
    }
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
    fn diagnose_non_finite(&self) -> Option<String> {
        (**self).diagnose_non_finite()
    }
    fn forward_hidden(
        &self,
        g: &Graph,
        store: &ParamStore,
        heads: &[u32],
        rels: &[u32],
    ) -> Option<Var> {
        (**self).forward_hidden(g, store, heads, rels)
    }
    fn entity_head(&self) -> Option<std::sync::Arc<came_tensor::EntityHead>> {
        (**self).entity_head()
    }
    fn prepare_serving(&self, store: &ParamStore) {
        (**self).prepare_serving(store)
    }
    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        (**self).entity_store_blob()
    }
    fn restore_entity_store(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_entity_store(bytes)
    }
}

impl<M: OneToNModel + ?Sized> OneToNModel for Box<M> {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        (**self).forward(g, store, heads, rels)
    }
    fn aux_loss(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Option<Var> {
        (**self).aux_loss(g, store, heads, rels)
    }
    fn degraded(&self, entity: u32) -> bool {
        (**self).degraded(entity)
    }
    fn state_bytes(&self) -> Vec<u8> {
        (**self).state_bytes()
    }
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
    fn diagnose_non_finite(&self) -> Option<String> {
        (**self).diagnose_non_finite()
    }
    fn forward_hidden(
        &self,
        g: &Graph,
        store: &ParamStore,
        heads: &[u32],
        rels: &[u32],
    ) -> Option<Var> {
        (**self).forward_hidden(g, store, heads, rels)
    }
    fn entity_head(&self) -> Option<std::sync::Arc<came_tensor::EntityHead>> {
        (**self).entity_head()
    }
    fn prepare_serving(&self, store: &ParamStore) {
        (**self).prepare_serving(store)
    }
    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        (**self).entity_store_blob()
    }
    fn restore_entity_store(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_entity_store(bytes)
    }
}

impl<M: TripleModel + ?Sized> TripleModel for &M {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        (**self).score(g, store, h, r, t)
    }
    fn aux_loss(
        &self,
        g: &Graph,
        store: &ParamStore,
        h: &[u32],
        r: &[u32],
        t: &[u32],
    ) -> Option<Var> {
        (**self).aux_loss(g, store, h, r, t)
    }
    fn state_bytes(&self) -> Vec<u8> {
        (**self).state_bytes()
    }
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
    fn diagnose_non_finite(&self) -> Option<String> {
        (**self).diagnose_non_finite()
    }
}

impl<M: TripleModel + ?Sized> TripleModel for Box<M> {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        (**self).score(g, store, h, r, t)
    }
    fn aux_loss(
        &self,
        g: &Graph,
        store: &ParamStore,
        h: &[u32],
        r: &[u32],
        t: &[u32],
    ) -> Option<Var> {
        (**self).aux_loss(g, store, h, r, t)
    }
    fn state_bytes(&self) -> Vec<u8> {
        (**self).state_bytes()
    }
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        (**self).restore_state(bytes)
    }
    fn diagnose_non_finite(&self) -> Option<String> {
        (**self).diagnose_non_finite()
    }
}

/// Options shared by both trainers.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the (augmented) train split.
    pub epochs: usize,
    /// Queries (or positive triples) per step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// ConvE-style label smoothing ε (1-N trainer only).
    pub label_smoothing: f32,
    /// Full or sampled 1-N negatives (1-N trainer only).
    pub policy: NegativePolicy,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// Adam weight decay.
    pub weight_decay: f32,
    /// Shuffling / sampling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 128,
            lr: 1e-3,
            label_smoothing: 0.1,
            policy: NegativePolicy::Full,
            grad_clip: Some(5.0),
            weight_decay: 0.0,
            seed: 0xCA4E,
        }
    }
}

/// Progress record handed to the per-epoch callback.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean loss over the epoch's batches.
    pub loss: f32,
    /// Wall-clock seconds since training started.
    pub elapsed_s: f64,
}

/// Per-epoch RNG stream derived from `(seed, epoch)`. Deriving each epoch's
/// stream independently — instead of threading one generator across epochs —
/// is what makes a checkpoint resume bit-identical: epoch `e` shuffles and
/// samples the same way whether or not epochs `0..e` ran in this process.
fn epoch_rng(seed: u64, epoch: usize) -> Prng {
    Prng::new(seed ^ (epoch as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Post-backward step guard shared by both trainers: always applies the
/// configured gradient clip, and — when the sentinel is enabled — trips on a
/// non-finite loss or a non-finite (post-clip) gradient norm, returning the
/// cause enriched with the model's diagnosis.
fn guard_step(
    store: &mut ParamStore,
    grad_clip: Option<f32>,
    sentinel: bool,
    loss_val: f32,
    diagnose: impl FnOnce() -> Option<String>,
) -> Result<(), String> {
    let norm = match grad_clip {
        Some(clip) => Some(store.clip_grad_norm(clip)),
        None if sentinel => Some(store.grad_norm()),
        None => None,
    };
    if !sentinel {
        return Ok(());
    }
    let trip = if !loss_val.is_finite() {
        Some(format!("non-finite loss {loss_val} at step {}", store.step))
    } else {
        norm.filter(|n| !n.is_finite())
            .map(|n| format!("non-finite gradient norm {n} at step {}", store.step))
    };
    match trip {
        None => Ok(()),
        Some(mut cause) => {
            if let Some(extra) = diagnose() {
                cause = format!("{cause}; {extra}");
            }
            Err(cause)
        }
    }
}

fn one_to_n_fingerprint(cfg: &TrainConfig, dataset: &KgDataset, store: &ParamStore) -> u64 {
    let (policy_kind, policy_k) = match cfg.policy {
        NegativePolicy::Full => (0u64, 0u64),
        NegativePolicy::Sampled(k) => (1, k as u64),
    };
    runtime::fingerprint(
        "one_to_n",
        &[
            cfg.epochs as u64,
            cfg.batch_size as u64,
            u64::from(cfg.lr.to_bits()),
            u64::from(cfg.label_smoothing.to_bits()),
            policy_kind,
            policy_k,
            u64::from(cfg.grad_clip.map_or(0, |c| c.to_bits())),
            u64::from(cfg.weight_decay.to_bits()),
            cfg.seed,
            dataset.num_entities() as u64,
            dataset.num_relations_aug() as u64,
            dataset.augmented(Split::Train).len() as u64,
        ],
        store,
    )
}

/// Train a [`OneToNModel`] with multi-label BCE over 1-N targets, inside the
/// fault-tolerant runtime: checkpoint/resume, divergence sentinel, and fault
/// injection per `rt`. `on_event` receives the full [`TrainEvent`] stream.
pub fn train_one_to_n_rt<M: OneToNModel>(
    model: &M,
    store: &mut ParamStore,
    dataset: &KgDataset,
    cfg: &TrainConfig,
    rt: &RuntimeConfig,
    mut on_event: impl FnMut(&TrainEvent, &M, &ParamStore),
) -> Result<TrainRun, TrainError> {
    let mut batcher = OneToNBatcher::new(dataset, cfg.batch_size, cfg.label_smoothing, cfg.policy);
    if batcher.num_pairs() == 0 {
        return Err(TrainError::EmptyTrainSplit);
    }
    let fp = one_to_n_fingerprint(cfg, dataset, store);
    let sentinel = rt.sentinel.enabled;
    // One tape reused across every batch: `reset()` returns node buffers to
    // the thread-local pool, so steady-state steps allocate nothing.
    let mut g = Graph::new();
    runtime::run_guarded(
        rt,
        fp,
        cfg.epochs,
        store,
        || model.state_bytes(),
        |bytes| model.restore_state(bytes),
        |epoch, lr_scale, store, faults: &mut FaultState| {
            let mut rng = epoch_rng(cfg.seed, epoch);
            let adam = Adam {
                lr: cfg.lr * lr_scale,
                weight_decay: cfg.weight_decay,
                ..Adam::default()
            };
            let mut loss_sum = 0.0f64;
            let mut n_batches = 0usize;
            for batch in batcher.epoch(&mut rng) {
                g.reset();
                let logits = model.forward(&g, store, &batch.heads, &batch.rels);
                let mut loss = match &batch.weights {
                    Some(w) => g.bce_with_logits_weighted(logits, &batch.targets, w),
                    None => g.bce_with_logits(logits, &batch.targets),
                };
                if let Some(aux) = model.aux_loss(&g, store, &batch.heads, &batch.rels) {
                    loss = g.add(loss, aux);
                }
                let loss_val = g.with_value(loss, |t| t.item());
                loss_sum += loss_val as f64;
                n_batches += 1;
                {
                    let _span = came_obs::span("phase.backward");
                    g.backward(loss, store);
                }
                if faults.take_nan_grad(store.step) {
                    store.poison_first_grad();
                }
                guard_step(store, cfg.grad_clip, sentinel, loss_val, || {
                    model.diagnose_non_finite()
                })?;
                {
                    let _span = came_obs::span("phase.optimizer");
                    store.adam_step(&adam);
                }
                came_obs::periodic_dump(store.step);
            }
            Ok((loss_sum / n_batches.max(1) as f64) as f32)
        },
        |ev, store| on_event(ev, model, store),
    )
}

/// Train a [`OneToNModel`] with multi-label BCE over 1-N targets.
/// Returns per-epoch stats; `on_epoch` fires after each epoch (used by the
/// convergence experiment to interleave evaluation).
///
/// Compatibility front-end over [`train_one_to_n_rt`] with the runtime taken
/// from the environment ([`RuntimeConfig::from_env`]): set `CAME_CKPT_DIR`
/// to make any caller resumable. An injected kill fault exits with status 75
/// (the conventional "temporary failure, retry" code); other runtime errors
/// panic with context, preserving the historical signature.
pub fn train_one_to_n<M: OneToNModel>(
    model: &M,
    store: &mut ParamStore,
    dataset: &KgDataset,
    cfg: &TrainConfig,
    mut on_epoch: impl FnMut(&EpochStats, &M, &ParamStore),
) -> Vec<EpochStats> {
    let rt = RuntimeConfig::from_env();
    // Non-epoch events (resume, divergence, recovery) need no handling here:
    // `runtime::observe_event` narrates them to stderr and the structured
    // sink before any callback fires.
    let run = train_one_to_n_rt(model, store, dataset, cfg, &rt, |ev, m, s| {
        if let TrainEvent::EpochEnd(stats) = ev {
            on_epoch(stats, m, s)
        }
    });
    match run {
        Ok(run) => run.history,
        Err(TrainError::Killed { epoch }) => exit_killed(epoch),
        Err(e) => panic!("1-N training failed: {e}"),
    }
}

/// A simulated kill: report and exit like a crashed trainer would, so CI can
/// assert the process died and then resume it. The stderr line obeys the
/// `CAME_LOG_STDERR` mirror switch; the structured record always lands in
/// the sink when one is configured.
fn exit_killed(epoch: usize) -> ! {
    if came_obs::log_active() {
        came_obs::Record::new("TrainEvent")
            .str("event", "Killed")
            .u64("epoch", epoch as u64)
            .emit();
    }
    if came_obs::stderr_mirror() {
        eprintln!(
            "came-kg: injected kill fault fired at epoch {epoch}; exiting (resume to continue)"
        );
    }
    std::process::exit(75);
}

/// Negative-sampling loss weighting.
#[derive(Clone, Copy, Debug)]
pub enum NegWeighting {
    /// Uniform `1/k` over negatives (RotatE).
    Uniform,
    /// Self-adversarial softmax with temperature `alpha` (a-RotatE, PairRE).
    SelfAdversarial(f32),
}

/// Options for the negative-sampling trainer.
#[derive(Clone, Debug)]
pub struct NegSamplingConfig {
    /// Shared options.
    pub base: TrainConfig,
    /// Negatives per positive.
    pub k: usize,
    /// Margin γ of the logistic loss.
    pub margin: f32,
    /// Negative weighting scheme.
    pub weighting: NegWeighting,
}

impl Default for NegSamplingConfig {
    fn default() -> Self {
        NegSamplingConfig {
            base: TrainConfig::default(),
            k: 16,
            margin: 6.0,
            weighting: NegWeighting::Uniform,
        }
    }
}

/// Numerically stable `softplus(x) = ln(1 + e^x)` built from primitive ops:
/// `relu(x) + ln(1 + e^{-|x|})`.
pub fn softplus(g: &Graph, x: Var) -> Var {
    let pos = g.relu(x);
    let neg_abs = g.neg(g.abs(x));
    let one_plus = g.affine(g.exp(neg_abs), 1.0, 1.0);
    g.add(pos, g.ln(one_plus))
}

fn neg_sampling_fingerprint(
    cfg: &NegSamplingConfig,
    dataset: &KgDataset,
    store: &ParamStore,
) -> u64 {
    let (weight_kind, weight_alpha) = match cfg.weighting {
        NegWeighting::Uniform => (0u64, 0u64),
        NegWeighting::SelfAdversarial(a) => (1, u64::from(a.to_bits())),
    };
    runtime::fingerprint(
        "neg_sampling",
        &[
            cfg.base.epochs as u64,
            cfg.base.batch_size as u64,
            u64::from(cfg.base.lr.to_bits()),
            u64::from(cfg.base.grad_clip.map_or(0, |c| c.to_bits())),
            u64::from(cfg.base.weight_decay.to_bits()),
            cfg.base.seed,
            cfg.k as u64,
            u64::from(cfg.margin.to_bits()),
            weight_kind,
            weight_alpha,
            dataset.num_entities() as u64,
            dataset.num_relations_aug() as u64,
            dataset.augmented(Split::Train).len() as u64,
        ],
        store,
    )
}

/// Train a [`TripleModel`] with the RotatE-style logistic loss inside the
/// fault-tolerant runtime. See [`train_one_to_n_rt`] for the runtime
/// semantics; the loss is `softplus(-(γ + s⁺)) + Σᵢ wᵢ softplus(γ + sᵢ⁻)`
/// over filtered tail corruptions.
pub fn train_negative_sampling_rt<M: TripleModel>(
    model: &M,
    store: &mut ParamStore,
    dataset: &KgDataset,
    cfg: &NegSamplingConfig,
    rt: &RuntimeConfig,
    mut on_event: impl FnMut(&TrainEvent, &M, &ParamStore),
) -> Result<TrainRun, TrainError> {
    let sampler = NegativeSampler::filtered(dataset.num_entities(), dataset.filter_index());
    let base_triples = dataset.augmented(Split::Train);
    if base_triples.is_empty() {
        return Err(TrainError::EmptyTrainSplit);
    }
    let fp = neg_sampling_fingerprint(cfg, dataset, store);
    let sentinel = rt.sentinel.enabled;
    let mut g = Graph::new();
    runtime::run_guarded(
        rt,
        fp,
        cfg.base.epochs,
        store,
        || model.state_bytes(),
        |bytes| model.restore_state(bytes),
        |epoch, lr_scale, store, faults: &mut FaultState| {
            let mut rng = epoch_rng(cfg.base.seed, epoch);
            let adam = Adam {
                lr: cfg.base.lr * lr_scale,
                weight_decay: cfg.base.weight_decay,
                ..Adam::default()
            };
            // Shuffle a fresh copy of the canonical order each epoch so the
            // permutation depends only on `(seed, epoch)`, not on how many
            // epochs this process has already run — required for resume.
            let mut triples = base_triples.clone();
            rng.shuffle(&mut triples);
            let mut loss_sum = 0.0f64;
            let mut n_batches = 0usize;
            for chunk in triples.chunks(cfg.base.batch_size) {
                let b = chunk.len();
                let (mut h, mut r, mut t) = (
                    Vec::with_capacity(b),
                    Vec::with_capacity(b),
                    Vec::with_capacity(b),
                );
                let (mut hn, mut rn, mut tn) = (
                    Vec::with_capacity(b * cfg.k),
                    Vec::with_capacity(b * cfg.k),
                    Vec::with_capacity(b * cfg.k),
                );
                for &pos in chunk {
                    h.push(pos.h.0);
                    r.push(pos.r.0);
                    t.push(pos.t.0);
                    for neg in sampler.corrupt_many(pos, cfg.k, &mut rng) {
                        hn.push(neg.h.0);
                        rn.push(neg.r.0);
                        tn.push(neg.t.0);
                    }
                }
                g.reset();
                let s_pos = model.score(&g, store, &h, &r, &t); // [B]
                let s_neg = model.score(&g, store, &hn, &rn, &tn); // [B*k]
                let s_pos = g.reshape(s_pos, Shape::d1(b));
                let s_neg = g.reshape(s_neg, Shape::d2(b, cfg.k));

                // positive term: softplus(-(γ + s⁺))
                let pos_arg = g.neg(g.affine(s_pos, 1.0, cfg.margin));
                let pos_loss = g.mean_all(softplus(&g, pos_arg));

                // negative term: Σ wᵢ softplus(γ + sᵢ⁻), w from detached scores
                let neg_arg = g.affine(s_neg, 1.0, cfg.margin);
                let per_neg = softplus(&g, neg_arg); // [B,k]
                let weights = match cfg.weighting {
                    NegWeighting::Uniform => Tensor::full(Shape::d2(b, cfg.k), 1.0 / cfg.k as f32),
                    NegWeighting::SelfAdversarial(alpha) => {
                        // softmax(α·s⁻) computed on detached values
                        g.with_value(s_neg, |t| t.map(|v| v * alpha).softmax_axis(1))
                    }
                };
                let wv = g.input(weights);
                let neg_loss = g.scale(g.mean_all(g.mul(per_neg, wv)), cfg.k as f32);

                let mut loss = g.add(pos_loss, neg_loss);
                if let Some(aux) = model.aux_loss(&g, store, &h, &r, &t) {
                    loss = g.add(loss, aux);
                }
                let loss_val = g.with_value(loss, |t| t.item());
                loss_sum += loss_val as f64;
                n_batches += 1;
                {
                    let _span = came_obs::span("phase.backward");
                    g.backward(loss, store);
                }
                if faults.take_nan_grad(store.step) {
                    store.poison_first_grad();
                }
                guard_step(store, cfg.base.grad_clip, sentinel, loss_val, || {
                    model.diagnose_non_finite()
                })?;
                {
                    let _span = came_obs::span("phase.optimizer");
                    store.adam_step(&adam);
                }
                came_obs::periodic_dump(store.step);
            }
            Ok((loss_sum / n_batches.max(1) as f64) as f32)
        },
        |ev, store| on_event(ev, model, store),
    )
}

/// Train a [`TripleModel`] with the RotatE-style logistic loss
/// `softplus(-(γ + s⁺)) + Σᵢ wᵢ softplus(γ + sᵢ⁻)` over filtered tail
/// corruptions.
///
/// Compatibility front-end over [`train_negative_sampling_rt`] with the
/// runtime taken from the environment; see [`train_one_to_n`] for the
/// error/exit conventions.
pub fn train_negative_sampling<M: TripleModel>(
    model: &M,
    store: &mut ParamStore,
    dataset: &KgDataset,
    cfg: &NegSamplingConfig,
    mut on_epoch: impl FnMut(&EpochStats, &M, &ParamStore),
) -> Vec<EpochStats> {
    let rt = RuntimeConfig::from_env();
    let run = train_negative_sampling_rt(model, store, dataset, cfg, &rt, |ev, m, s| {
        if let TrainEvent::EpochEnd(stats) = ev {
            on_epoch(stats, m, s)
        }
    });
    match run {
        Ok(run) => run.history,
        Err(TrainError::Killed { epoch }) => exit_killed(epoch),
        Err(e) => panic!("negative-sampling training failed: {e}"),
    }
}

/// Evaluation adapter: scores tail candidates with inference-mode forward
/// passes of a [`OneToNModel`].
pub struct OneToNScorer<'a, M: OneToNModel + ?Sized> {
    model: &'a M,
    store: &'a ParamStore,
}

impl<'a, M: OneToNModel + ?Sized> OneToNScorer<'a, M> {
    /// Wrap a trained model for evaluation.
    pub fn new(model: &'a M, store: &'a ParamStore) -> Self {
        OneToNScorer { model, store }
    }
}

impl<M: OneToNModel + ?Sized> TailScorer for OneToNScorer<'_, M> {
    fn score_tails(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>> {
        let g = Graph::inference();
        let heads: Vec<u32> = queries.iter().map(|q| q.0 .0).collect();
        let rels: Vec<u32> = queries.iter().map(|q| q.1 .0).collect();
        let scores = self.model.forward(&g, self.store, &heads, &rels);
        // borrow the logits in place instead of cloning the [B, N] tensor
        g.with_value(scores, |t| {
            let n = t.shape().at(1);
            t.data().chunks(n).map(|row| row.to_vec()).collect()
        })
    }
}

/// Evaluation adapter for [`TripleModel`]s: scores each query against every
/// entity by tiling the query (quadratic but only used at evaluation time).
pub struct TripleScorerAdapter<'a, M: TripleModel + ?Sized> {
    model: &'a M,
    store: &'a ParamStore,
    num_entities: usize,
}

impl<'a, M: TripleModel + ?Sized> TripleScorerAdapter<'a, M> {
    /// Wrap a trained model for evaluation over `num_entities` candidates.
    pub fn new(model: &'a M, store: &'a ParamStore, num_entities: usize) -> Self {
        TripleScorerAdapter {
            model,
            store,
            num_entities,
        }
    }
}

impl<M: TripleModel + ?Sized> TailScorer for TripleScorerAdapter<'_, M> {
    fn score_tails(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>> {
        use came_tensor::backend::{self, BackendKind};
        let n = self.num_entities;
        // Each (query, entity-shard) cell is an independent inference pass
        // writing a disjoint slice of its query's row, so sharding is exact.
        // Under the Scalar backend (or one thread) there is one shard per
        // query and this degenerates to the original sequential loop.
        let shard = match backend::kind() {
            BackendKind::Scalar => n,
            BackendKind::Parallel | BackendKind::Simd => {
                n.div_ceil(backend::num_threads()).max(512)
            }
        }
        .max(1);
        let mut out: Vec<Vec<f32>> = queries.iter().map(|_| vec![0.0f32; n]).collect();
        let mut tasks: Vec<(EntityId, RelationId, usize, &mut [f32])> = Vec::new();
        for (q, row) in queries.iter().zip(out.iter_mut()) {
            for (si, chunk) in row.chunks_mut(shard).enumerate() {
                tasks.push((q.0, q.1, si * shard, chunk));
            }
        }
        backend::run_tasks(tasks, |(h, r, start, chunk)| {
            let g = Graph::inference();
            let len = chunk.len();
            let hs = vec![h.0; len];
            let rs = vec![r.0; len];
            let ts: Vec<u32> = (start as u32..(start + len) as u32).collect();
            let s = self.model.score(&g, self.store, &hs, &rs, &ts);
            g.with_value(s, |t| chunk.copy_from_slice(t.data()));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use crate::vocab::{EntityKind, Vocab};
    use came_tensor::EmbeddingTable;

    /// The simplest possible 1-N model: score = e_h ⊙ w_r · e_t (DistMult).
    struct ToyDistMult {
        ent: EmbeddingTable,
        rel: EmbeddingTable,
    }

    impl ToyDistMult {
        fn new(
            store: &mut ParamStore,
            n_ent: usize,
            n_rel: usize,
            d: usize,
            rng: &mut Prng,
        ) -> Self {
            ToyDistMult {
                ent: EmbeddingTable::new(store, "ent", n_ent, d, rng),
                rel: EmbeddingTable::new(store, "rel", n_rel, d, rng),
            }
        }
    }

    impl OneToNModel for ToyDistMult {
        fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
            let h = self.ent.lookup(g, store, heads);
            let r = self.rel.lookup(g, store, rels);
            let hr = g.mul(h, r);
            let e_t = g.transpose(self.ent.full(g, store), 0, 1);
            g.matmul(hr, e_t)
        }
    }

    impl TripleModel for ToyDistMult {
        fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
            let hv = self.ent.lookup(g, store, h);
            let rv = self.rel.lookup(g, store, r);
            let tv = self.ent.lookup(g, store, t);
            let prod = g.mul(g.mul(hv, rv), tv);
            g.sum_axis(prod, 1, false)
        }
    }

    fn toy_dataset() -> KgDataset {
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r0");
        vocab.add_relation("r1");
        // deterministic structured pattern: r0 maps i -> i+1, r1 maps i -> i+2
        let mut triples = Vec::new();
        for i in 0..10u32 {
            triples.push(Triple::new(i, 0, (i + 1) % 12));
            triples.push(Triple::new(i, 1, (i + 2) % 12));
        }
        let mut rng = Prng::new(9);
        KgDataset::split(vocab, triples, (8.0, 1.0, 1.0), &mut rng)
    }

    #[test]
    fn one_to_n_training_reduces_loss_and_beats_chance() {
        let d = toy_dataset();
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let model = ToyDistMult::new(
            &mut store,
            d.num_entities(),
            d.num_relations_aug(),
            16,
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 5e-3,
            label_smoothing: 0.0,
            ..Default::default()
        };
        let history = train_one_to_n(&model, &mut store, &d, &cfg, |_, _, _| {});
        assert!(history.last().unwrap().loss < history[0].loss * 0.5);

        let scorer = OneToNScorer::new(&model, &store);
        let filter = d.filter_index();
        let m = crate::eval::evaluate(
            &scorer,
            &d,
            Split::Train,
            &filter,
            &crate::eval::EvalConfig::default(),
        );
        assert!(m.mrr() > 0.5, "train MRR {} too low", m.mrr());
    }

    #[test]
    fn negative_sampling_training_learns() {
        let d = toy_dataset();
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let model = ToyDistMult::new(
            &mut store,
            d.num_entities(),
            d.num_relations_aug(),
            16,
            &mut rng,
        );
        let cfg = NegSamplingConfig {
            base: TrainConfig {
                epochs: 80,
                batch_size: 16,
                lr: 5e-3,
                ..Default::default()
            },
            k: 4,
            margin: 3.0,
            weighting: NegWeighting::SelfAdversarial(1.0),
        };
        let history = train_negative_sampling(&model, &mut store, &d, &cfg, |_, _, _| {});
        assert!(history.last().unwrap().loss < history[0].loss);

        let scorer = TripleScorerAdapter::new(&model, &store, d.num_entities());
        let filter = d.filter_index();
        let m = crate::eval::evaluate(
            &scorer,
            &d,
            Split::Train,
            &filter,
            &crate::eval::EvalConfig::default(),
        );
        assert!(m.mrr() > 0.4, "train MRR {} too low", m.mrr());
    }

    #[test]
    fn softplus_matches_reference() {
        let g = Graph::new();
        let x = g.input(Tensor::from_slice(&[-30.0, -1.0, 0.0, 1.0, 30.0]));
        let y = g.value(softplus(&g, x));
        for (v, x) in y.data().iter().zip([-30.0f32, -1.0, 0.0, 1.0, 30.0]) {
            let expect = if x > 20.0 { x } else { (1.0 + x.exp()).ln() };
            assert!((v - expect).abs() < 1e-4, "softplus({x}) = {v} vs {expect}");
        }
    }

    #[test]
    fn epoch_callback_fires_each_epoch() {
        let d = toy_dataset();
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let model = ToyDistMult::new(
            &mut store,
            d.num_entities(),
            d.num_relations_aug(),
            8,
            &mut rng,
        );
        let mut calls = 0;
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        train_one_to_n(&model, &mut store, &d, &cfg, |s, _, _| {
            assert_eq!(s.epoch, calls);
            calls += 1;
        });
        assert_eq!(calls, 3);
    }

    #[test]
    fn sampled_policy_trains_too() {
        let d = toy_dataset();
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let model = ToyDistMult::new(
            &mut store,
            d.num_entities(),
            d.num_relations_aug(),
            16,
            &mut rng,
        );
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            lr: 5e-3,
            label_smoothing: 0.0,
            policy: NegativePolicy::Sampled(6),
            ..Default::default()
        };
        let history = train_one_to_n(&model, &mut store, &d, &cfg, |_, _, _| {});
        assert!(history.last().unwrap().loss < history[0].loss);
    }
}
