//! Rank-correlation parity harness for compact embedding stores.
//!
//! Quantized scoring trades bit-exactness for memory, so "no worse than
//! f32" must be asserted on *ranking agreement*, not raw score equality.
//! The gate this module backs (`CAME_CHECK_QUANT`) requires Spearman
//! ρ ≥ 0.99 over the union of the two paths' top-k candidate sets, plus a
//! |ΔMRR| ≤ 0.005 budget computed by evaluating both paths with the standard
//! [`crate::evaluate`] machinery.
//!
//! Serving imposes a *total* candidate order (score descending, entity id
//! ascending on ties — the same tie-break [`crate::serve`] uses), so ranks
//! here are always distinct and the closed-form Spearman formula applies.

/// Indices of the `k` highest-scoring candidates of `scores`, ordered by
/// score descending with ascending-index tie-break (the serving order).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Rank (1-based, serving order) of every candidate in `of` within `scores`.
fn ranks_of(scores: &[f32], of: &[usize]) -> Vec<f64> {
    let order = top_k_indices(scores, scores.len());
    let mut rank = vec![0usize; scores.len()];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r + 1;
    }
    of.iter().map(|&i| rank[i] as f64).collect()
}

/// Spearman rank correlation between two score vectors over the *union* of
/// their top-`k` candidate sets — the region retrieval responses are built
/// from, so agreement there is what serving parity means. Ranks come from
/// each vector's full total order. Returns 1.0 for degenerate unions
/// (fewer than two candidates).
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn spearman_topk(a: &[f32], b: &[f32], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let mut union = top_k_indices(a, k);
    for i in top_k_indices(b, k) {
        if !union.contains(&i) {
            union.push(i);
        }
    }
    let m = union.len();
    if m < 2 {
        return 1.0;
    }
    // Re-rank within the union (1..=m per vector): the closed form needs
    // both rank vectors to be permutations of the same support.
    let full_a = ranks_of(a, &union);
    let full_b = ranks_of(b, &union);
    let sub_rank = |full: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&x, &y| full[x].total_cmp(&full[y]));
        let mut r = vec![0.0; m];
        for (pos, &i) in order.iter().enumerate() {
            r[i] = (pos + 1) as f64;
        }
        r
    };
    let (ra, rb) = (sub_rank(&full_a), sub_rank(&full_b));
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (m as f64 * (m as f64 * m as f64 - 1.0))
}

/// Minimum [`spearman_topk`] across query rows of two row-major `[m, n]`
/// score blocks — the worst single query, a coarse statistic (one adjacent
/// swap in a small union costs ~6/m³) used as a sanity floor.
///
/// # Panics
/// Panics if the blocks are missized.
pub fn min_spearman_topk(a: &[f32], b: &[f32], n: usize, k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "score blocks must align");
    assert!(n > 0 && a.len() % n == 0, "blocks must be [m, n] row-major");
    a.chunks(n)
        .zip(b.chunks(n))
        .map(|(ra, rb)| spearman_topk(ra, rb, k))
        .fold(1.0f64, f64::min)
}

/// Mean [`spearman_topk`] across query rows of two row-major `[m, n]` score
/// blocks — the statistic the `CAME_CHECK_QUANT` gate thresholds (≥ 0.99):
/// ranking agreement over the retrieval prefixes, averaged over queries.
/// Returns 1.0 for an empty block.
///
/// # Panics
/// Panics if the blocks are missized.
pub fn mean_spearman_topk(a: &[f32], b: &[f32], n: usize, k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "score blocks must align");
    assert!(n > 0 && a.len() % n == 0, "blocks must be [m, n] row-major");
    let m = a.len() / n;
    if m == 0 {
        return 1.0;
    }
    a.chunks(n)
        .zip(b.chunks(n))
        .map(|(ra, rb)| spearman_topk(ra, rb, k))
        .sum::<f64>()
        / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_correlate_perfectly() {
        let s = [0.3, -1.0, 2.5, 0.0, 9.0];
        assert_eq!(spearman_topk(&s, &s, 3), 1.0);
        assert_eq!(min_spearman_topk(&s, &s, 5, 3), 1.0);
    }

    #[test]
    fn reversed_order_is_perfectly_anticorrelated() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_topk(&a, &b, 4) - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn small_perturbations_stay_above_the_gate() {
        let a: Vec<f32> = (0..200).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let b: Vec<f32> = a.iter().map(|x| x + 1e-4 * x.cos()).collect();
        assert!(spearman_topk(&a, &b, 20) > 0.99);
    }

    #[test]
    fn a_swap_inside_the_topk_lowers_but_does_not_tank_rho() {
        let a: Vec<f32> = (0..50).map(|i| 50.0 - i as f32).collect();
        let mut b = a.clone();
        b.swap(0, 1);
        let rho = spearman_topk(&a, &b, 10);
        assert!((0.9..1.0).contains(&rho), "rho = {rho}");
    }

    #[test]
    fn union_covers_disagreeing_topk_sets() {
        // a's top-2 is {0, 1}; b promotes index 4 instead of 1.
        let a = [9.0, 8.0, 1.0, 0.5, 0.2];
        let b = [9.0, 0.1, 1.0, 0.5, 8.0];
        let rho = spearman_topk(&a, &b, 2);
        assert!(rho < 1.0, "disagreement must be visible: {rho}");
    }

    #[test]
    fn degenerate_unions_are_perfect() {
        assert_eq!(spearman_topk(&[1.0], &[2.0], 5), 1.0);
        let empty: [f32; 0] = [];
        assert_eq!(spearman_topk(&empty, &empty, 3), 1.0);
    }

    #[test]
    fn topk_indices_use_serving_tie_break() {
        let s = [1.0, 3.0, 3.0, 0.0];
        assert_eq!(top_k_indices(&s, 3), vec![1, 2, 0]);
    }
}
