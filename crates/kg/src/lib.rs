//! # came-kg
//!
//! Knowledge-graph substrate for the CamE reproduction: vocabularies, typed
//! triples, dataset splitting with inverse-relation augmentation, 1-N label
//! batching, negative sampling, and filtered ranking evaluation producing the
//! MR / MRR / Hits@n metrics every table in the paper reports.
//!
//! ```
//! use came_kg::{Vocab, EntityKind, Triple, KgDataset};
//! use came_tensor::Prng;
//!
//! let mut vocab = Vocab::new();
//! let asp = vocab.add_entity("aspirin", EntityKind::Compound);
//! let cox = vocab.add_entity("PTGS2", EntityKind::Gene);
//! let binds = vocab.add_relation("binds");
//! let triples = vec![Triple { h: asp, r: binds, t: cox }];
//! let ds = KgDataset::split(vocab, triples, (1.0, 0.0, 0.0), &mut Prng::new(7));
//! assert_eq!(ds.num_relations_aug(), 2); // forward + inverse
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod eval;
pub mod labels;
pub mod metrics;
pub mod model;
pub mod negative;
pub mod parity;
pub mod relbucket;
pub mod runtime;
pub mod serve;
pub mod snapshot;
pub mod train;
pub mod triple;
pub mod vocab;

pub use dataset::{FilterIndex, KgDataset, Split};
pub use eval::{evaluate, evaluate_grouped, filtered_rank, EvalConfig, TailScorer};
pub use labels::{NegativePolicy, OneToNBatch, OneToNBatcher};
pub use metrics::RankMetrics;
pub use model::{capture_kge, restore_kge, KgeModel, KgeScorer, OneToNKge, TripleKge};
pub use negative::NegativeSampler;
pub use parity::{mean_spearman_topk, min_spearman_topk, spearman_topk, top_k_indices};
pub use relbucket::RelationFamily;
pub use runtime::{
    fingerprint, observe_event, CheckpointConfig, FaultPlan, RuntimeConfig, SentinelConfig,
    TrainError, TrainEvent, TrainRun,
};
pub use serve::{
    merge_top_k, PendingScores, PendingTopK, RequestTrace, ScoredEntity, ScoringEngine,
    ServeConfig, ServeError, ServeTier, ShardPlan, ShardedEngine, TierConfig, TierHandle,
    TopKRequest, TopKResponse,
};
pub use snapshot::{
    resume_or_init, write_atomic, ParamRecord, ResumeReport, Snapshot, SnapshotError,
};
pub use train::{
    softplus, train_negative_sampling, train_negative_sampling_rt, train_one_to_n,
    train_one_to_n_rt, EpochStats, NegSamplingConfig, NegWeighting, OneToNModel, OneToNScorer,
    TrainConfig, TripleModel, TripleScorerAdapter,
};
pub use triple::Triple;
pub use vocab::{EntityId, EntityKind, RelationId, Vocab};
