//! Fault-tolerant training runtime: checkpoint/resume orchestration, a
//! divergence sentinel with rollback, and deterministic fault injection.
//!
//! Both trainers ([`crate::train_one_to_n_rt`],
//! [`crate::train_negative_sampling_rt`]) execute inside the guarded epoch
//! loop defined here:
//!
//! - **Checkpoint/resume.** When a [`CheckpointConfig`] is present, every
//!   `every_epochs`-th epoch boundary is persisted atomically (see
//!   [`crate::snapshot`]) under a per-run fingerprint subdirectory, and a new
//!   run first probes that directory and continues from the newest intact
//!   snapshot — bit-identically, because each epoch derives its RNG from
//!   `(seed, epoch)` rather than a continuously-threaded stream.
//! - **Divergence sentinel.** Each optimiser step guards the loss value and
//!   the (post-clip) global gradient norm for NaN/inf. A trip rolls the
//!   parameters, optimiser moments, and model-side state back to the last
//!   good epoch boundary, scales the learning rate down, and retries, with a
//!   bounded retry budget. Trips surface as structured
//!   [`TrainEvent::Diverged`] / [`TrainEvent::Recovered`] pairs through the
//!   progress callback instead of panics.
//! - **Fault injection.** A [`FaultPlan`] (env knob `CAME_FAULTS`) can poison
//!   a gradient at a chosen step, kill the run at a chosen epoch, or corrupt
//!   the checkpoint it just wrote — all deterministically, so the recovery
//!   paths above are testable.

use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use came_tensor::ParamStore;

use crate::snapshot::{self, Snapshot, SnapshotError};
use crate::train::EpochStats;

/// Where and how often to persist training snapshots.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Root checkpoint directory. Each run writes into a
    /// `<fingerprint:016x>/` subdirectory so concurrent models (e.g. the 14
    /// models of the Table III binary) never collide.
    pub dir: PathBuf,
    /// Persist every N epoch boundaries (clamped to ≥ 1).
    pub every_epochs: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` at every epoch boundary.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            every_epochs: 1,
        }
    }

    /// The run-specific subdirectory for a fingerprint.
    pub fn run_dir(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}"))
    }
}

/// Divergence-sentinel policy.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// Guard loss/gradients each step and roll back on NaN/inf.
    pub enabled: bool,
    /// Consecutive rollbacks tolerated before giving up with
    /// [`TrainError::Diverged`].
    pub max_retries: u32,
    /// Learning-rate multiplier applied on each rollback (e.g. `0.5`).
    pub lr_decay: f32,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            enabled: true,
            max_retries: 3,
            lr_decay: 0.5,
        }
    }
}

/// A deterministic set of faults to inject into a training or serving run.
///
/// Grammar (comma-separated, via `CAME_FAULTS`):
///
/// ```text
/// nan_grad@step=N           poison one gradient scalar with NaN at global step N
/// kill@epoch=N              abort the process-equivalent at the start of epoch N
/// corrupt_checkpoint        truncate the next checkpoint right after writing it
/// drop_modality@entity=F    clear modality presence for fraction F of entities
/// shard_panic@batch=N       panic one serve-tier shard worker on its Nth batch
/// ```
///
/// The first three are train-side and fire at most once per run. The last
/// two are consumed by the feature/serving layers: `drop_modality` degrades
/// the frozen modality caches before serving (see
/// `came_encoders::ModalFeatures`), and `shard_panic` is armed by
/// [`crate::serve::TierConfig`] to exercise the tier's panic recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Poison a gradient at this 0-based global optimiser step.
    pub nan_grad_at_step: Option<u64>,
    /// Simulate a kill at the start of this 0-based epoch.
    pub kill_at_epoch: Option<usize>,
    /// Truncate the next written checkpoint (simulates a torn write).
    pub corrupt_checkpoint: bool,
    /// Clear modality presence for this fraction of entities (in `[0, 1]`)
    /// before serving, simulating a modality-poor deployment.
    pub drop_modality_entity_frac: Option<f64>,
    /// Panic one shard worker on its Nth dispatched batch (1-based).
    pub shard_panic_at_batch: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Read the plan from `CAME_FAULTS` (empty plan when unset).
    ///
    /// # Panics
    /// Panics with the grammar message when `CAME_FAULTS` is malformed —
    /// same policy as [`RuntimeConfig::from_env`]: a misconfigured run
    /// should fail at startup, not mid-flight.
    pub fn from_env() -> FaultPlan {
        match std::env::var("CAME_FAULTS") {
            Ok(spec) => match FaultPlan::parse(&spec) {
                Ok(p) => p,
                Err(e) => panic!("CAME_FAULTS: {e}"),
            },
            Err(_) => FaultPlan::none(),
        }
    }

    /// True when no fault is armed.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parse the `CAME_FAULTS` grammar. Returns a message naming the bad
    /// token (and the grammar) on error.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('@') {
                None if token == "corrupt_checkpoint" => plan.corrupt_checkpoint = true,
                Some(("nan_grad", arg)) => {
                    plan.nan_grad_at_step = Some(Self::keyed_number(token, arg, "step")?)
                }
                Some(("kill", arg)) => {
                    plan.kill_at_epoch = Some(Self::keyed_number(token, arg, "epoch")? as usize)
                }
                Some(("drop_modality", arg)) => {
                    plan.drop_modality_entity_frac =
                        Some(Self::keyed_fraction(token, arg, "entity")?)
                }
                Some(("shard_panic", arg)) => {
                    plan.shard_panic_at_batch = Some(Self::keyed_number(token, arg, "batch")?)
                }
                _ => {
                    return Err(format!(
                        "unknown fault '{token}'; grammar: nan_grad@step=N, kill@epoch=N, \
                         corrupt_checkpoint, drop_modality@entity=F, shard_panic@batch=N \
                         (comma-separated)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    fn keyed_number(token: &str, arg: &str, key: &str) -> Result<u64, String> {
        let value = arg
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| format!("fault '{token}' must use the form '{key}=N'"))?;
        value
            .parse::<u64>()
            .map_err(|_| format!("fault '{token}': '{value}' is not a non-negative integer"))
    }

    fn keyed_fraction(token: &str, arg: &str, key: &str) -> Result<f64, String> {
        let value = arg
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| format!("fault '{token}' must use the form '{key}=F'"))?;
        value
            .parse::<f64>()
            .ok()
            .filter(|f| (0.0..=1.0).contains(f))
            .ok_or_else(|| format!("fault '{token}': '{value}' is not a fraction in [0, 1]"))
    }
}

/// Mutable fire-once tracking of a [`FaultPlan`] during a run.
pub(crate) struct FaultState {
    nan_grad: Option<u64>,
    kill: Option<usize>,
    corrupt: bool,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> FaultState {
        FaultState {
            nan_grad: plan.nan_grad_at_step,
            kill: plan.kill_at_epoch,
            corrupt: plan.corrupt_checkpoint,
        }
    }

    /// True exactly once, on the optimiser step the plan targets.
    pub(crate) fn take_nan_grad(&mut self, step: u64) -> bool {
        if self.nan_grad == Some(step) {
            self.nan_grad = None;
            return true;
        }
        false
    }

    fn take_kill(&mut self, epoch: usize) -> bool {
        if self.kill == Some(epoch) {
            self.kill = None;
            return true;
        }
        false
    }

    fn take_corrupt(&mut self) -> bool {
        std::mem::take(&mut self.corrupt)
    }
}

/// Runtime policy both trainers execute under.
#[derive(Clone, Debug, Default)]
pub struct RuntimeConfig {
    /// Checkpointing; `None` disables persistence (the sentinel still keeps
    /// an in-memory rollback point).
    pub checkpoint: Option<CheckpointConfig>,
    /// Divergence sentinel policy.
    pub sentinel: SentinelConfig,
    /// Faults to inject (normally empty outside tests/CI).
    pub faults: FaultPlan,
}

impl RuntimeConfig {
    /// Build from environment knobs:
    ///
    /// - `CAME_CKPT_DIR` — enable checkpointing into this directory
    /// - `CAME_CKPT_EVERY` — checkpoint interval in epochs (default 1)
    /// - `CAME_FAULTS` — fault plan (see [`FaultPlan::parse`])
    ///
    /// # Panics
    /// Panics with the grammar message when `CAME_FAULTS` is malformed —
    /// a misconfigured run should fail before training, not during.
    pub fn from_env() -> RuntimeConfig {
        let checkpoint = std::env::var("CAME_CKPT_DIR").ok().map(|dir| {
            let every_epochs = std::env::var("CAME_CKPT_EVERY")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1)
                .max(1);
            CheckpointConfig {
                dir: dir.into(),
                every_epochs,
            }
        });
        let faults = FaultPlan::from_env();
        RuntimeConfig {
            checkpoint,
            sentinel: SentinelConfig::default(),
            faults,
        }
    }
}

/// Structured progress/fault stream surfaced through the training callback.
#[derive(Clone, Debug)]
pub enum TrainEvent {
    /// Training continued from an on-disk snapshot.
    Resumed {
        /// First epoch about to run.
        epoch_next: usize,
        /// Snapshot file that was loaded.
        path: PathBuf,
    },
    /// A snapshot file existed but was unusable (corrupt, truncated, or from
    /// a different run); a fallback was attempted.
    CheckpointRejected {
        /// The rejected file.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// An epoch finished normally (replaces the old bare per-epoch callback).
    EpochEnd(EpochStats),
    /// A snapshot was persisted.
    CheckpointSaved {
        /// File written (`latest.ckpt` in the run directory).
        path: PathBuf,
        /// First epoch a resume from this snapshot would run.
        epoch_next: usize,
    },
    /// The sentinel observed a non-finite loss or gradient norm.
    Diverged {
        /// Epoch in which the trip occurred.
        epoch: usize,
        /// Global optimiser step at the trip.
        step: u64,
        /// LR multiplier in effect when the trip occurred.
        lr_scale: f32,
        /// Human-readable cause, including the failing modality when a
        /// frozen feature cache is to blame.
        cause: String,
    },
    /// Rollback to the last good state completed; training is retrying.
    Recovered {
        /// Epoch training resumes from (the rolled-back boundary).
        epoch: usize,
        /// Global optimiser step after rollback.
        step: u64,
        /// Reduced LR multiplier now in effect.
        lr_scale: f32,
        /// Consecutive retries of this epoch so far.
        retries: u32,
    },
}

/// Recoverable training failures.
#[derive(Debug)]
pub enum TrainError {
    /// The train split has no triples; nothing to optimise.
    EmptyTrainSplit,
    /// The sentinel exhausted its retry budget.
    Diverged {
        /// Epoch that kept diverging.
        epoch: usize,
        /// Consecutive retries attempted.
        retries: u32,
    },
    /// An injected `kill@epoch=N` fault fired (simulated crash).
    Killed {
        /// Epoch at which the kill fired.
        epoch: usize,
    },
    /// Checkpoint I/O or decoding failed.
    Checkpoint(SnapshotError),
    /// A resumed snapshot does not fit the model (names/shapes mismatch).
    Incompatible(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyTrainSplit => write!(f, "train split is empty"),
            TrainError::Diverged { epoch, retries } => write!(
                f,
                "training diverged at epoch {epoch} and stayed non-finite after {retries} rollbacks"
            ),
            TrainError::Killed { epoch } => {
                write!(f, "injected kill fault fired at epoch {epoch}")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Summary of a guarded training run.
#[derive(Clone, Debug)]
pub struct TrainRun {
    /// Per-epoch stats, including epochs restored from a resumed snapshot.
    pub history: Vec<EpochStats>,
    /// Total sentinel trips over the whole run (survives resume).
    pub divergences: u32,
    /// Final learning-rate multiplier.
    pub lr_scale: f32,
    /// Snapshot file this run resumed from, if any.
    pub resumed_from: Option<PathBuf>,
    /// Snapshots persisted by this run.
    pub checkpoints_written: usize,
}

/// FNV-1a fingerprint of a run: trainer tag, config words, and the store's
/// parameter names and sizes. Two runs share a checkpoint directory slot iff
/// their fingerprints match, which is what makes resuming safe.
pub fn fingerprint(tag: &str, config_words: &[u64], store: &ParamStore) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let eat = |h: u64, bytes: &[u8]| {
        let mut h = h;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    h = eat(h, tag.as_bytes());
    for w in config_words {
        h = eat(h, &w.to_le_bytes());
    }
    for s in store.state_views() {
        h = eat(h, s.name.as_bytes());
        h = eat(h, &(s.value.numel() as u64).to_le_bytes());
    }
    h
}

/// Route one [`TrainEvent`] through the structured observability sink.
///
/// Every event becomes a `{"type":"TrainEvent","event":...}` JSONL record
/// when `CAME_LOG` is configured; epoch boundaries additionally dump the
/// aggregate metric records (kernel/pool/phase/serve) so a training log is
/// self-contained. The historical stderr narration (resume, rejected
/// checkpoint, divergence, recovery) is mirrored verbatim unless
/// `CAME_LOG_STDERR=0` silences it — CI greps those exact strings.
pub fn observe_event(ev: &TrainEvent) {
    if came_obs::log_active() {
        let rec = came_obs::Record::new("TrainEvent");
        let rec = match ev {
            TrainEvent::Resumed { epoch_next, path } => rec
                .str("event", "Resumed")
                .u64("epoch_next", *epoch_next as u64)
                .str("path", &path.display().to_string()),
            TrainEvent::CheckpointRejected { path, reason } => rec
                .str("event", "CheckpointRejected")
                .str("path", &path.display().to_string())
                .str("reason", reason),
            TrainEvent::EpochEnd(stats) => rec
                .str("event", "EpochEnd")
                .u64("epoch", stats.epoch as u64)
                .f64("loss", stats.loss as f64)
                .f64("elapsed_s", stats.elapsed_s),
            TrainEvent::CheckpointSaved { path, epoch_next } => rec
                .str("event", "CheckpointSaved")
                .u64("epoch_next", *epoch_next as u64)
                .str("path", &path.display().to_string()),
            TrainEvent::Diverged {
                epoch,
                step,
                lr_scale,
                cause,
            } => rec
                .str("event", "Diverged")
                .u64("epoch", *epoch as u64)
                .u64("step", *step)
                .f64("lr_scale", *lr_scale as f64)
                .str("cause", cause),
            TrainEvent::Recovered {
                epoch,
                step,
                lr_scale,
                retries,
            } => rec
                .str("event", "Recovered")
                .u64("epoch", *epoch as u64)
                .u64("step", *step)
                .f64("lr_scale", *lr_scale as f64)
                .u64("retries", *retries as u64),
        };
        rec.emit();
    }
    if came_obs::enabled() {
        // Training heartbeat: the live telemetry endpoint (`/metrics` over
        // `CAME_OBS_ADDR`) exposes the latest epoch/step so a long run can
        // be watched for progress without tailing the JSONL log.
        match ev {
            TrainEvent::EpochEnd(stats) => {
                came_obs::registry()
                    .gauge("train.heartbeat.epoch")
                    .set(stats.epoch as i64 + 1);
            }
            TrainEvent::Diverged { epoch, step, .. }
            | TrainEvent::Recovered { epoch, step, .. } => {
                let r = came_obs::registry();
                r.gauge("train.heartbeat.epoch").set(*epoch as i64);
                r.gauge("train.heartbeat.step").set(*step as i64);
            }
            _ => {}
        }
    }
    if matches!(ev, TrainEvent::EpochEnd(_)) {
        came_obs::emit_metrics_records();
    }
    if came_obs::stderr_mirror() {
        match ev {
            TrainEvent::Resumed { epoch_next, path } => {
                eprintln!(
                    "came-kg: resumed from {} at epoch {epoch_next}",
                    path.display()
                );
            }
            TrainEvent::CheckpointRejected { path, reason } => {
                eprintln!("came-kg: rejected checkpoint {}: {reason}", path.display());
            }
            TrainEvent::Diverged {
                epoch, step, cause, ..
            } => {
                eprintln!("came-kg: diverged at epoch {epoch} step {step}: {cause}");
            }
            TrainEvent::Recovered {
                epoch,
                lr_scale,
                retries,
                ..
            } => {
                eprintln!(
                    "came-kg: recovered to epoch {epoch} (lr_scale {lr_scale}, retry {retries})"
                );
            }
            TrainEvent::EpochEnd(_) | TrainEvent::CheckpointSaved { .. } => {}
        }
    }
}

/// The guarded epoch loop shared by both trainers.
///
/// `epoch_body` runs one full epoch (batching, forward/backward, optimiser
/// steps) with the given LR multiplier and returns the mean loss, or the
/// sentinel-trip cause. `model_state`/`model_restore` bridge opaque
/// model-side state (e.g. dropout RNG words) into snapshots.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_guarded(
    rt: &RuntimeConfig,
    fp: u64,
    epochs: usize,
    store: &mut ParamStore,
    model_state: impl Fn() -> Vec<u8>,
    model_restore: impl Fn(&[u8]) -> Result<(), String>,
    mut epoch_body: impl FnMut(usize, f32, &mut ParamStore, &mut FaultState) -> Result<f32, String>,
    mut emit: impl FnMut(&TrainEvent, &ParamStore),
) -> Result<TrainRun, TrainError> {
    // Every event goes through the structured sink (and the stderr mirror)
    // before reaching the caller's callback, so all trainers get logging
    // without opting in.
    let mut emit = move |ev: &TrainEvent, store: &ParamStore| {
        observe_event(ev);
        emit(ev, store);
    };
    // Bring up the live telemetry endpoint (no-op unless `CAME_OBS_ADDR`
    // is set; idempotent across trainers in one process).
    came_obs::telemetry_from_env();
    let mut faults = FaultState::new(&rt.faults);
    let run_dir = rt.checkpoint.as_ref().map(|ck| ck.run_dir(fp));

    let mut history: Vec<EpochStats> = Vec::new();
    let mut lr_scale = 1.0f32;
    let mut divergences = 0u32;
    let mut epoch = 0usize;
    let mut resumed_from = None;
    let mut checkpoints_written = 0usize;

    if let Some(dir) = &run_dir {
        let report = snapshot::resume_or_init(dir, fp);
        for (path, err) in report.rejected {
            let reason = err.to_string();
            emit(&TrainEvent::CheckpointRejected { path, reason }, store);
        }
        if let Some((snap, path)) = report.snapshot {
            snap.restore_into(store).map_err(TrainError::Checkpoint)?;
            model_restore(&snap.model_state).map_err(TrainError::Incompatible)?;
            epoch = snap.epoch_next;
            lr_scale = snap.lr_scale;
            divergences = snap.divergences;
            history = snap.history.clone();
            emit(
                &TrainEvent::Resumed {
                    epoch_next: epoch,
                    path: path.clone(),
                },
                store,
            );
            resumed_from = Some(path);
        }
    }

    // In-memory rollback point for the sentinel: the state at the most
    // recent successful epoch boundary (or the starting state).
    let mut good = rt.sentinel.enabled.then(|| {
        Snapshot::capture(
            store,
            fp,
            epoch,
            lr_scale,
            divergences,
            model_state(),
            &history,
        )
    });

    let base_elapsed = history.last().map_or(0.0, |h| h.elapsed_s);
    let start = Instant::now();
    let mut retries = 0u32;

    while epoch < epochs {
        if faults.take_kill(epoch) {
            return Err(TrainError::Killed { epoch });
        }
        match epoch_body(epoch, lr_scale, store, &mut faults) {
            Ok(mean_loss) => {
                retries = 0;
                let stats = EpochStats {
                    epoch,
                    loss: mean_loss,
                    elapsed_s: base_elapsed + start.elapsed().as_secs_f64(),
                };
                history.push(stats);
                emit(&TrainEvent::EpochEnd(stats), store);
                epoch += 1;

                let due = rt
                    .checkpoint
                    .as_ref()
                    .is_some_and(|ck| epoch % ck.every_epochs == 0 || epoch == epochs);
                if due || rt.sentinel.enabled {
                    let snap = Snapshot::capture(
                        store,
                        fp,
                        epoch,
                        lr_scale,
                        divergences,
                        model_state(),
                        &history,
                    );
                    if due {
                        let dir = run_dir.as_ref().expect("due implies checkpoint config");
                        let path =
                            snapshot::write_atomic(dir, &snap).map_err(TrainError::Checkpoint)?;
                        checkpoints_written += 1;
                        if faults.take_corrupt() {
                            // simulate a torn write: chop the file mid-payload
                            if let Ok(bytes) = fs::read(&path) {
                                let _ = fs::write(&path, &bytes[..bytes.len() / 2]);
                            }
                        }
                        emit(
                            &TrainEvent::CheckpointSaved {
                                path,
                                epoch_next: epoch,
                            },
                            store,
                        );
                    }
                    if rt.sentinel.enabled {
                        good = Some(snap);
                    }
                }
            }
            Err(cause) => {
                divergences += 1;
                retries += 1;
                emit(
                    &TrainEvent::Diverged {
                        epoch,
                        step: store.step,
                        lr_scale,
                        cause,
                    },
                    store,
                );
                let rollback = match &good {
                    Some(g) if retries <= rt.sentinel.max_retries => g,
                    _ => return Err(TrainError::Diverged { epoch, retries }),
                };
                rollback
                    .restore_into(store)
                    .map_err(TrainError::Checkpoint)?;
                model_restore(&rollback.model_state).map_err(TrainError::Incompatible)?;
                epoch = rollback.epoch_next;
                lr_scale *= rt.sentinel.lr_decay;
                emit(
                    &TrainEvent::Recovered {
                        epoch,
                        step: store.step,
                        lr_scale,
                        retries,
                    },
                    store,
                );
            }
        }
    }

    Ok(TrainRun {
        history,
        divergences,
        lr_scale,
        resumed_from,
        checkpoints_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_full_grammar() {
        let p = FaultPlan::parse(
            "nan_grad@step=40, kill@epoch=2,corrupt_checkpoint, \
             drop_modality@entity=0.3,shard_panic@batch=5",
        )
        .unwrap();
        assert_eq!(p.nan_grad_at_step, Some(40));
        assert_eq!(p.kill_at_epoch, Some(2));
        assert!(p.corrupt_checkpoint);
        assert_eq!(p.drop_modality_entity_frac, Some(0.3));
        assert_eq!(p.shard_panic_at_batch, Some(5));
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn fault_plan_rejects_bad_tokens() {
        for bad in [
            "explode",
            "nan_grad@epoch=1",
            "nan_grad@step=x",
            "kill@step=2",
            "corrupt_checkpoint@now",
            "drop_modality@entity=1.5",
            "drop_modality@entity=x",
            "drop_modality@frac=0.3",
            "shard_panic@batch=x",
            "shard_panic@epoch=3",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn fault_state_fires_once() {
        let plan = FaultPlan::parse("nan_grad@step=3,kill@epoch=1,corrupt_checkpoint").unwrap();
        let mut st = FaultState::new(&plan);
        assert!(!st.take_nan_grad(2));
        assert!(st.take_nan_grad(3));
        assert!(!st.take_nan_grad(3));
        assert!(!st.take_kill(0));
        assert!(st.take_kill(1));
        assert!(!st.take_kill(1));
        assert!(st.take_corrupt());
        assert!(!st.take_corrupt());
    }

    #[test]
    fn fingerprint_separates_runs() {
        let store = ParamStore::new();
        let a = fingerprint("one_to_n", &[1, 2, 3], &store);
        let b = fingerprint("one_to_n", &[1, 2, 4], &store);
        let c = fingerprint("neg_sampling", &[1, 2, 3], &store);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
