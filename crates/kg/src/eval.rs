//! Filtered ranking evaluation (the Bordes et al. protocol used by the paper).
//!
//! For every test triple `(h, r, t)` — and its inverse, so both tail and head
//! prediction are measured — the model scores all candidate tails, all *other*
//! known-true tails are masked out, and the rank of `t` among the remainder
//! is recorded. Ties are resolved to their expected rank under a random
//! tie-break so constant scorers cannot fake Hits@1.

use came_tensor::Prng;

use crate::dataset::{FilterIndex, KgDataset, Split};
use crate::metrics::RankMetrics;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};

/// Anything that can score every entity as candidate tail of `(h, r)`
/// queries. Relations are in the inverse-augmented space `[0, 2R)`.
pub trait TailScorer {
    /// `out[q][e]` = score of entity `e` as tail of query `q`. Higher is
    /// better.
    fn score_tails(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>>;
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Queries per scoring call.
    pub batch_size: usize,
    /// Optional cap on evaluated (augmented) triples; a random subset is
    /// drawn when set — the paper does this for the convergence figure.
    pub max_triples: Option<usize>,
    /// Seed for the subsampling draw.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            batch_size: 128,
            max_triples: None,
            seed: 0x5eed,
        }
    }
}

/// Expected 1-based rank of `target` in `scores` after masking `known` (all
/// known-true tails except the target are excluded from the ranking).
///
/// `known` is a *sorted* ascending mask (what [`FilterIndex::known_tails`]
/// returns); the candidate sweep advances a cursor through it in lockstep,
/// so masking costs O(E + |known|) per query instead of an O(E) round of
/// hash probes — this is the inner loop of every evaluation.
pub fn filtered_rank(
    scores: &[f32],
    target: EntityId,
    known: Option<&[EntityId]>,
    h: EntityId,
    r: RelationId,
    filter: &FilterIndex,
) -> f64 {
    // `known` lets callers reuse the mask lookup; fall back to the index.
    let known = known
        .or_else(|| filter.known_tails(h, r))
        .unwrap_or_default();
    debug_assert!(known.windows(2).all(|w| w[0] < w[1]), "mask must be sorted");
    let target_score = scores[target.0 as usize];
    let mut greater = 0usize;
    let mut ties = 0usize;
    let mut cursor = 0usize;
    for (e, &s) in scores.iter().enumerate() {
        let e = e as u32;
        while cursor < known.len() && known[cursor].0 < e {
            cursor += 1;
        }
        if cursor < known.len() && known[cursor].0 == e {
            cursor += 1;
            if e != target.0 {
                continue; // filtered setting: skip other true tails
            }
        }
        if e == target.0 {
            continue;
        }
        if s > target_score {
            greater += 1;
        } else if s == target_score {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

/// Evaluate a scorer on a split (inverse-augmented: both directions).
pub fn evaluate(
    scorer: &dyn TailScorer,
    dataset: &KgDataset,
    split: Split,
    filter: &FilterIndex,
    cfg: &EvalConfig,
) -> RankMetrics {
    let mut triples = dataset.augmented(split);
    if let Some(cap) = cfg.max_triples {
        let mut rng = Prng::new(cfg.seed);
        rng.shuffle(&mut triples);
        triples.truncate(cap);
    }
    rank_triples(scorer, &triples, filter, cfg.batch_size)
}

/// Evaluate grouped by an arbitrary key (e.g. relation family for Table IV).
/// Only forward test triples are keyed; each triple still contributes both
/// directions to its group's metrics.
pub fn evaluate_grouped<K: Ord + Clone>(
    scorer: &dyn TailScorer,
    dataset: &KgDataset,
    split: Split,
    filter: &FilterIndex,
    cfg: &EvalConfig,
    key: impl Fn(&Triple) -> K,
) -> Vec<(K, RankMetrics)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<K, Vec<Triple>> = BTreeMap::new();
    let r = dataset.num_relations();
    for t in dataset.get(split) {
        let k = key(t);
        let g = groups.entry(k).or_default();
        g.push(*t);
        g.push(t.inverse(r));
    }
    groups
        .into_iter()
        .map(|(k, ts)| {
            let mut ts = ts;
            let mut m = RankMetrics::new();
            if let Some(cap) = cfg.max_triples {
                let mut rng = Prng::new(cfg.seed);
                rng.shuffle(&mut ts);
                ts.truncate(cap);
            }
            m.merge(&rank_triples(scorer, &ts, filter, cfg.batch_size));
            (k, m)
        })
        .collect()
}

fn rank_triples(
    scorer: &dyn TailScorer,
    triples: &[Triple],
    filter: &FilterIndex,
    batch_size: usize,
) -> RankMetrics {
    let mut metrics = RankMetrics::new();
    for chunk in triples.chunks(batch_size.max(1)) {
        let queries: Vec<(EntityId, RelationId)> = chunk.iter().map(|t| (t.h, t.r)).collect();
        let scores = scorer.score_tails(&queries);
        assert_eq!(
            scores.len(),
            chunk.len(),
            "scorer returned wrong batch size"
        );
        let mut ranks = vec![0.0f64; chunk.len()];
        let rows: Vec<(&Triple, &[f32], &mut f64)> = chunk
            .iter()
            .zip(scores.iter().map(Vec::as_slice))
            .zip(ranks.iter_mut())
            .map(|((t, s), slot)| (t, s, slot))
            .collect();
        rank_block(rows, filter);
        for r in ranks {
            metrics.push(r);
        }
    }
    metrics
}

/// Rank a batch of already-scored rows into per-triple slots — the shared
/// core of [`evaluate`] and [`crate::serve::ScoringEngine`]. Each row is
/// independent, so the work shards across the backend thread pool; ranks
/// land in caller-provided slots, keeping the metrics fold deterministic.
///
/// Small blocks (a few hundred candidates per triple) stay sequential: each
/// rank is one linear scan of its score row, and the scoped-thread spawn
/// cost made tiny fan-outs a 0.935x regression. The min-work guard keeps the
/// crossover aligned with the lane kernels'.
pub(crate) fn rank_block(rows: Vec<(&Triple, &[f32], &mut f64)>, filter: &FilterIndex) {
    let total_work: usize = rows.iter().map(|(_, s, _)| s.len()).sum();
    came_tensor::backend::run_tasks_min_work(rows, total_work, |(t, s, slot)| {
        *slot = filtered_rank(s, t.t, None, t.h, t.r, filter);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{EntityKind, Vocab};

    /// Closures are no longer scorers (the blanket impl is gone — everything
    /// real routes through [`crate::model::KgeModel`]); tests wrap theirs.
    struct FnScorer<F: Fn(&[(EntityId, RelationId)]) -> Vec<Vec<f32>>>(F);

    impl<F: Fn(&[(EntityId, RelationId)]) -> Vec<Vec<f32>>> TailScorer for FnScorer<F> {
        fn score_tails(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>> {
            (self.0)(queries)
        }
    }

    fn tiny() -> KgDataset {
        let mut vocab = Vocab::new();
        for i in 0..5 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        KgDataset {
            vocab,
            train: vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)],
            valid: vec![],
            test: vec![Triple::new(0, 0, 3)],
        }
    }

    #[test]
    fn filtered_rank_skips_known_tails() {
        let d = tiny();
        let filter = d.filter_index();
        // entity scores: e1 and e2 (known train tails) outrank e3, but they
        // are filtered out, so e3's filtered rank counts only e0, e4.
        let scores = [0.1, 0.9, 0.8, 0.5, 0.2];
        let rank = filtered_rank(
            &scores,
            EntityId(3),
            None,
            EntityId(0),
            RelationId(0),
            &filter,
        );
        assert_eq!(rank, 1.0); // e0=0.1 and e4=0.2 both score below 0.5
                               // raw (unfiltered) comparison for contrast
        let empty = FilterIndex::default();
        let raw = filtered_rank(
            &scores,
            EntityId(3),
            None,
            EntityId(0),
            RelationId(0),
            &empty,
        );
        assert_eq!(raw, 3.0);
    }

    #[test]
    fn filtered_rank_never_exceeds_raw_rank() {
        let d = tiny();
        let filter = d.filter_index();
        let empty = FilterIndex::default();
        let scores = [0.3, 0.9, 0.1, 0.4, 0.8];
        for target in 0..5u32 {
            let f = filtered_rank(
                &scores,
                EntityId(target),
                None,
                EntityId(0),
                RelationId(0),
                &filter,
            );
            let r = filtered_rank(
                &scores,
                EntityId(target),
                None,
                EntityId(0),
                RelationId(0),
                &empty,
            );
            assert!(f <= r, "filtered {f} > raw {r}");
        }
    }

    #[test]
    fn ties_get_expected_rank() {
        let empty = FilterIndex::default();
        let scores = [0.5, 0.5, 0.5, 0.5];
        let rank = filtered_rank(
            &scores,
            EntityId(0),
            None,
            EntityId(0),
            RelationId(0),
            &empty,
        );
        // 3 ties -> expected rank 1 + 3/2 = 2.5
        assert_eq!(rank, 2.5);
    }

    #[test]
    fn perfect_scorer_gets_mrr_one() {
        let d = tiny();
        let filter = d.filter_index();
        let idx = d.filter_index();
        let scorer = FnScorer(move |qs: &[(EntityId, RelationId)]| -> Vec<Vec<f32>> {
            qs.iter()
                .map(|&(h, r)| {
                    (0..5u32)
                        .map(|e| {
                            if idx.contains(h, r, EntityId(e)) {
                                1.0
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect()
        });
        let m = evaluate(&scorer, &d, Split::Test, &filter, &EvalConfig::default());
        assert_eq!(m.count(), 2); // forward + inverse
        assert_eq!(m.mrr(), 1.0);
        assert_eq!(m.hits(1), 1.0);
    }

    #[test]
    fn constant_scorer_gets_chance_level() {
        let d = tiny();
        let filter = d.filter_index();
        let scorer = FnScorer(|qs: &[(EntityId, RelationId)]| -> Vec<Vec<f32>> {
            qs.iter().map(|_| vec![0.0; 5]).collect()
        });
        let m = evaluate(&scorer, &d, Split::Test, &filter, &EvalConfig::default());
        // all candidates tie: expected rank is the middle of the candidate set,
        // so MRR is well below 1
        assert!(m.mrr() < 0.9);
        assert!(m.mr() > 1.0);
    }

    #[test]
    fn max_triples_caps_query_count() {
        let d = tiny();
        let filter = d.filter_index();
        let scorer = FnScorer(|qs: &[(EntityId, RelationId)]| -> Vec<Vec<f32>> {
            qs.iter().map(|_| vec![0.0; 5]).collect()
        });
        let cfg = EvalConfig {
            max_triples: Some(1),
            ..Default::default()
        };
        let m = evaluate(&scorer, &d, Split::Test, &filter, &cfg);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn grouped_eval_partitions_queries() {
        let d = tiny();
        let filter = d.filter_index();
        let scorer = FnScorer(|qs: &[(EntityId, RelationId)]| -> Vec<Vec<f32>> {
            qs.iter().map(|_| vec![0.0; 5]).collect()
        });
        let groups = evaluate_grouped(
            &scorer,
            &d,
            Split::Test,
            &filter,
            &EvalConfig::default(),
            |t| t.t.0 % 2,
        );
        let total: usize = groups.iter().map(|(_, m)| m.count()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn known_set_reuse_matches_index_lookup() {
        let d = tiny();
        let filter = d.filter_index();
        let scores = [0.3, 0.9, 0.1, 0.4, 0.8];
        let known = filter.known_tails(EntityId(0), RelationId(0)).unwrap();
        let a = filtered_rank(
            &scores,
            EntityId(3),
            Some(known),
            EntityId(0),
            RelationId(0),
            &filter,
        );
        let b = filtered_rank(
            &scores,
            EntityId(3),
            None,
            EntityId(0),
            RelationId(0),
            &filter,
        );
        assert_eq!(a, b);
    }
}
