//! Negative sampling by entity corruption.
//!
//! Margin- and self-adversarial-trained baselines (TransE, RotatE, a-RotatE,
//! PairRE, IKRL, MTAKGR, TransAE) learn from corrupted triples. With the
//! inverse-augmented relation space it suffices to corrupt tails: corrupting
//! the head of `(h, r, t)` is corrupting the tail of `(t, r⁻¹, h)`.

use came_tensor::Prng;

use crate::dataset::FilterIndex;
use crate::triple::Triple;
use crate::vocab::EntityId;

/// Tail-corruption negative sampler, optionally filtered so sampled
/// negatives are never known-true facts.
pub struct NegativeSampler {
    num_entities: usize,
    filter: Option<FilterIndex>,
}

impl NegativeSampler {
    /// Unfiltered sampler (cheapest; false negatives possible).
    pub fn uniform(num_entities: usize) -> Self {
        assert!(num_entities >= 2, "need at least two entities to corrupt");
        NegativeSampler {
            num_entities,
            filter: None,
        }
    }

    /// Filtered sampler: rejects corruptions that are known facts (the paper
    /// follows the filtered protocol of Bordes et al.).
    pub fn filtered(num_entities: usize, filter: FilterIndex) -> Self {
        assert!(num_entities >= 2, "need at least two entities to corrupt");
        NegativeSampler {
            num_entities,
            filter: Some(filter),
        }
    }

    /// One corrupted version of `pos` (tail replaced).
    pub fn corrupt(&self, pos: Triple, rng: &mut Prng) -> Triple {
        // Rejection-sample; known facts are rare among all entities so this
        // terminates in ~1 draw. Bounded retries guard degenerate graphs.
        for _ in 0..64 {
            let cand = EntityId(rng.below(self.num_entities) as u32);
            if cand == pos.t {
                continue;
            }
            if let Some(f) = &self.filter {
                if f.contains(pos.h, pos.r, cand) {
                    continue;
                }
            }
            return Triple { t: cand, ..pos };
        }
        // Fallback: accept a possibly-false negative rather than loop forever.
        let mut cand = EntityId(rng.below(self.num_entities) as u32);
        if cand == pos.t {
            cand = EntityId((cand.0 + 1) % self.num_entities as u32);
        }
        Triple { t: cand, ..pos }
    }

    /// `k` corrupted versions of `pos`.
    pub fn corrupt_many(&self, pos: Triple, k: usize, rng: &mut Prng) -> Vec<Triple> {
        (0..k).map(|_| self.corrupt(pos, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::KgDataset;
    use crate::vocab::{EntityKind, Vocab};

    fn dataset() -> KgDataset {
        let mut vocab = Vocab::new();
        for i in 0..10 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        KgDataset {
            vocab,
            train: (1..8).map(|t| Triple::new(0, 0, t)).collect(),
            valid: vec![],
            test: vec![],
        }
    }

    #[test]
    fn corruption_changes_tail_only() {
        let s = NegativeSampler::uniform(10);
        let mut rng = Prng::new(0);
        let pos = Triple::new(2, 0, 5);
        for _ in 0..100 {
            let neg = s.corrupt(pos, &mut rng);
            assert_eq!(neg.h, pos.h);
            assert_eq!(neg.r, pos.r);
            assert_ne!(neg.t, pos.t);
        }
    }

    #[test]
    fn filtered_sampler_avoids_known_facts() {
        let d = dataset();
        let filter = d.filter_index();
        let s = NegativeSampler::filtered(10, filter.clone());
        let mut rng = Prng::new(1);
        let pos = d.train[0];
        for _ in 0..200 {
            let neg = s.corrupt(pos, &mut rng);
            assert!(
                !filter.contains(neg.h, neg.r, neg.t),
                "sampled a known fact {neg:?}"
            );
        }
    }

    #[test]
    fn corrupt_many_yields_k() {
        let s = NegativeSampler::uniform(10);
        let mut rng = Prng::new(2);
        let negs = s.corrupt_many(Triple::new(0, 0, 1), 7, &mut rng);
        assert_eq!(negs.len(), 7);
    }

    #[test]
    fn degenerate_graph_still_terminates() {
        // only 2 entities and the other one is a known tail: the fallback
        // must still return something != pos.t
        let mut vocab = Vocab::new();
        vocab.add_entity("a", EntityKind::Other);
        vocab.add_entity("b", EntityKind::Other);
        vocab.add_relation("r");
        let d = KgDataset {
            vocab,
            train: vec![Triple::new(0, 0, 1), Triple::new(0, 0, 0)],
            valid: vec![],
            test: vec![],
        };
        let s = NegativeSampler::filtered(2, d.filter_index());
        let mut rng = Prng::new(3);
        let neg = s.corrupt(Triple::new(0, 0, 1), &mut rng);
        assert_ne!(neg.t, EntityId(1));
    }
}
