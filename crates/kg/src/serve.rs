//! Batched scoring/serving layer over the unified [`KgeModel`] interface.
//!
//! A [`ScoringEngine`] pairs a trained model with its parameter store and
//! answers two kinds of requests through one batched, tape-free scoring
//! path:
//!
//! * **full ranking** ([`ScoringEngine::evaluate`]) — the filtered-ranking
//!   protocol of [`crate::eval`], rebuilt on flat score buffers: one
//!   `[B, N]` buffer is reused across query batches and ranked in place by
//!   the shared rank core, so evaluation allocates nothing per query.
//! * **top-k retrieval** ([`ScoringEngine::top_k`]) — "which tails complete
//!   `(h, r)`?", the serving question. Selection is a partial sort
//!   (`select_nth_unstable` + sort of the short prefix) with a total,
//!   deterministic order: score descending, entity id ascending on ties —
//!   exactly the first `k` rows of a full sort.
//!
//! Scores come from [`KgeModel::score_into`], which runs on tape-free
//! inference graphs ([`came_tensor::Graph::inference`]) and shards the
//! candidate axis across the backend thread pool, so both request kinds get
//! the same execution path the benchmarks measure.

use came_tensor::{ParamStore, Prng};

use crate::dataset::{FilterIndex, KgDataset, Split};
use crate::eval::{self, EvalConfig};
use crate::metrics::RankMetrics;
use crate::model::KgeModel;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};

/// Serving options.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Queries scored per batched forward (`CAME_SERVE_BATCH`).
    pub batch_size: usize,
    /// `k` used when a request does not name one (`CAME_TOPK`).
    pub default_k: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 128,
            default_k: 10,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `CAME_SERVE_BATCH` / `CAME_TOPK` when set to
    /// positive integers.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        let read = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        if let Some(b) = read("CAME_SERVE_BATCH") {
            cfg.batch_size = b;
        }
        if let Some(k) = read("CAME_TOPK") {
            cfg.default_k = k;
        }
        cfg
    }
}

/// One retrieval request: rank tail candidates of `(head, relation)`.
#[derive(Clone, Copy, Debug)]
pub struct TopKRequest {
    /// Query head entity.
    pub head: EntityId,
    /// Query relation (inverse-augmented space `[0, 2R)`).
    pub relation: RelationId,
    /// Number of candidates to return; `None` uses the engine default.
    pub k: Option<usize>,
}

impl TopKRequest {
    /// Request the engine-default number of candidates for `(h, r)`.
    pub fn new(head: EntityId, relation: RelationId) -> Self {
        TopKRequest {
            head,
            relation,
            k: None,
        }
    }

    /// Request exactly `k` candidates for `(h, r)`.
    pub fn with_k(head: EntityId, relation: RelationId, k: usize) -> Self {
        TopKRequest {
            head,
            relation,
            k: Some(k),
        }
    }
}

/// One ranked candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredEntity {
    /// Candidate tail entity.
    pub entity: EntityId,
    /// Model score (higher is more plausible).
    pub score: f32,
}

/// Response to a [`TopKRequest`]: candidates in serving order — score
/// descending, entity id ascending among exact ties.
#[derive(Clone, Debug)]
pub struct TopKResponse {
    /// Echo of the query head.
    pub head: EntityId,
    /// Echo of the query relation.
    pub relation: RelationId,
    /// The top candidates, best first.
    pub hits: Vec<ScoredEntity>,
}

/// Batched scoring engine: a [`KgeModel`] plus its [`ParamStore`], serving
/// full-ranking evaluation and top-k retrieval from one flat-buffer path.
pub struct ScoringEngine<'a> {
    model: &'a dyn KgeModel,
    store: &'a ParamStore,
    cfg: ServeConfig,
}

impl<'a> ScoringEngine<'a> {
    /// Engine with environment-derived [`ServeConfig`].
    pub fn new(model: &'a dyn KgeModel, store: &'a ParamStore) -> Self {
        ScoringEngine::with_config(model, store, ServeConfig::from_env())
    }

    /// Engine with an explicit configuration.
    pub fn with_config(model: &'a dyn KgeModel, store: &'a ParamStore, cfg: ServeConfig) -> Self {
        assert!(cfg.batch_size > 0, "serve batch size must be positive");
        ScoringEngine { model, store, cfg }
    }

    /// The model being served.
    pub fn model(&self) -> &dyn KgeModel {
        self.model
    }

    /// Candidate entities per query.
    pub fn num_entities(&self) -> usize {
        self.model.num_entities()
    }

    /// Score `queries` into the row-major `[queries.len(), N]` buffer `out`.
    ///
    /// When observability is on, each call records into the
    /// `serve.batch_ns` latency histogram (p50/p95/p99 per scoring batch),
    /// bumps the `serve.queries` counter, and refreshes the `serve.qps`
    /// gauge with this batch's instantaneous throughput.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * num_entities()`.
    pub fn score_into(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        if !came_obs::enabled() {
            self.model.score_into(self.store, queries, out);
            return;
        }
        let t0 = std::time::Instant::now();
        self.model.score_into(self.store, queries, out);
        let ns = t0.elapsed().as_nanos() as u64;
        let r = came_obs::registry();
        r.histogram("serve.batch_ns").record(ns);
        r.counter("serve.queries").add(queries.len() as u64);
        if ns > 0 {
            let qps = queries.len() as f64 * 1e9 / ns as f64;
            r.gauge("serve.qps").set(qps as i64);
        }
    }

    /// Full filtered-ranking evaluation of a split (inverse-augmented, both
    /// directions), bit-equal to [`eval::evaluate`] over the same model:
    /// identical triple order, scores, and rank arithmetic — only the buffer
    /// discipline differs (one reused flat block instead of per-query rows).
    pub fn evaluate(
        &self,
        dataset: &KgDataset,
        split: Split,
        filter: &FilterIndex,
        cfg: &EvalConfig,
    ) -> RankMetrics {
        let mut triples = dataset.augmented(split);
        if let Some(cap) = cfg.max_triples {
            let mut rng = Prng::new(cfg.seed);
            rng.shuffle(&mut triples);
            triples.truncate(cap);
        }
        self.rank_triples(&triples, filter, cfg.batch_size)
    }

    /// Rank an explicit triple list (used by [`ScoringEngine::evaluate`] and
    /// directly by benchmarks that pre-select triples).
    pub fn rank_triples(
        &self,
        triples: &[Triple],
        filter: &FilterIndex,
        batch_size: usize,
    ) -> RankMetrics {
        let n = self.num_entities();
        let batch = if batch_size > 0 {
            batch_size
        } else {
            self.cfg.batch_size
        };
        let mut flat = vec![0.0f32; batch * n];
        let mut metrics = RankMetrics::new();
        for chunk in triples.chunks(batch) {
            let queries: Vec<(EntityId, RelationId)> = chunk.iter().map(|t| (t.h, t.r)).collect();
            let block = &mut flat[..chunk.len() * n];
            self.score_into(&queries, block);
            let mut ranks = vec![0.0f64; chunk.len()];
            let rows: Vec<(&Triple, &[f32], &mut f64)> = chunk
                .iter()
                .zip(block.chunks(n))
                .zip(ranks.iter_mut())
                .map(|((t, s), slot)| (t, s, slot))
                .collect();
            eval::rank_block(rows, filter);
            for r in ranks {
                metrics.push(r);
            }
        }
        metrics
    }

    /// Answer one retrieval request. `filter`, when given, excludes every
    /// known tail of `(h, r)` — serving predicts *new* links.
    pub fn top_k(&self, req: TopKRequest, filter: Option<&FilterIndex>) -> TopKResponse {
        self.top_k_batch(std::slice::from_ref(&req), filter)
            .pop()
            .expect("one request yields one response")
    }

    /// Answer a batch of retrieval requests, scoring
    /// [`ServeConfig::batch_size`] queries per forward.
    pub fn top_k_batch(
        &self,
        reqs: &[TopKRequest],
        filter: Option<&FilterIndex>,
    ) -> Vec<TopKResponse> {
        let n = self.num_entities();
        let batch = self.cfg.batch_size;
        let mut flat = vec![0.0f32; batch.min(reqs.len().max(1)) * n];
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(batch) {
            let queries: Vec<(EntityId, RelationId)> =
                chunk.iter().map(|r| (r.head, r.relation)).collect();
            let block = &mut flat[..chunk.len() * n];
            self.score_into(&queries, block);
            for (req, row) in chunk.iter().zip(block.chunks(n)) {
                let k = req.k.unwrap_or(self.cfg.default_k);
                let known = filter.and_then(|f| f.known_tails(req.head, req.relation));
                out.push(TopKResponse {
                    head: req.head,
                    relation: req.relation,
                    hits: select_top_k(row, k, known),
                });
            }
        }
        out
    }
}

/// The serving order: score descending, entity id ascending among exact
/// ties. Total (via `total_cmp`), so partial selection and a full sort agree
/// on every prefix.
fn serve_order(row: &[f32]) -> impl Fn(&u32, &u32) -> std::cmp::Ordering + '_ {
    |&a, &b| row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b))
}

/// Top `k` candidates of one score row under [`serve_order`], excluding the
/// (sorted) `exclude` mask via a lockstep cursor. Equals the first `k`
/// entries of a full sort of the surviving candidates, ties included.
fn select_top_k(row: &[f32], k: usize, exclude: Option<&[EntityId]>) -> Vec<ScoredEntity> {
    let exclude = exclude.unwrap_or_default();
    let mut ids: Vec<u32> = Vec::with_capacity(row.len());
    let mut cursor = 0usize;
    for e in 0..row.len() as u32 {
        while cursor < exclude.len() && exclude[cursor].0 < e {
            cursor += 1;
        }
        if cursor < exclude.len() && exclude[cursor].0 == e {
            cursor += 1;
            continue;
        }
        ids.push(e);
    }
    let cmp = serve_order(row);
    if ids.len() > k && k > 0 {
        ids.select_nth_unstable_by(k - 1, &cmp);
        ids.truncate(k);
    }
    ids.sort_unstable_by(&cmp);
    ids.truncate(k);
    ids.into_iter()
        .map(|e| ScoredEntity {
            entity: EntityId(e),
            score: row[e as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-scorer: score(h, r, t) hashes the triple ids.
    struct HashModel {
        n: usize,
    }

    impl KgeModel for HashModel {
        fn name(&self) -> &str {
            "hash"
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn score_into(
            &self,
            _store: &ParamStore,
            queries: &[(EntityId, RelationId)],
            out: &mut [f32],
        ) {
            assert_eq!(out.len(), queries.len() * self.n);
            for (q, row) in queries.iter().zip(out.chunks_mut(self.n)) {
                for (t, slot) in row.iter_mut().enumerate() {
                    let x = (q.0 .0 as u64)
                        .wrapping_mul(0x9E37)
                        .wrapping_add((q.1 .0 as u64) << 7)
                        .wrapping_add(t as u64)
                        .wrapping_mul(0x85EB_CA6B);
                    // few distinct values => plenty of exact ties
                    *slot = (x % 7) as f32;
                }
            }
        }
        fn state_bytes(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
            Ok(())
        }
    }

    fn engine_fixture(n: usize) -> (HashModel, ParamStore) {
        (HashModel { n }, ParamStore::new())
    }

    fn full_sort_reference(row: &[f32], k: usize, exclude: Option<&[EntityId]>) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..row.len() as u32)
            .filter(|e| !exclude.is_some_and(|m| m.binary_search(&EntityId(*e)).is_ok()))
            .collect();
        ids.sort_by(|&a, &b| row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b)));
        ids.truncate(k);
        ids
    }

    #[test]
    fn top_k_equals_full_sort_reference_including_ties() {
        let (model, store) = engine_fixture(31);
        let eng = ScoringEngine::with_config(&model, &store, ServeConfig::default());
        for (h, r) in [(0u32, 0u32), (3, 1), (7, 5), (11, 2)] {
            for k in [0usize, 1, 3, 7, 31, 64] {
                let resp = eng.top_k(TopKRequest::with_k(EntityId(h), RelationId(r), k), None);
                let mut row = vec![0.0f32; 31];
                eng.score_into(&[(EntityId(h), RelationId(r))], &mut row);
                let want = full_sort_reference(&row, k, None);
                let got: Vec<u32> = resp.hits.iter().map(|s| s.entity.0).collect();
                assert_eq!(got, want, "h={h} r={r} k={k}");
            }
        }
    }

    #[test]
    fn top_k_excludes_known_tails() {
        let (model, store) = engine_fixture(16);
        let eng = ScoringEngine::with_config(&model, &store, ServeConfig::default());
        let mask = [EntityId(1), EntityId(4), EntityId(9)];
        let mut row = vec![0.0f32; 16];
        eng.score_into(&[(EntityId(2), RelationId(0))], &mut row);
        let got = select_top_k(&row, 16, Some(&mask));
        assert_eq!(got.len(), 13);
        for s in &got {
            assert!(
                !mask.contains(&s.entity),
                "{:?} should be excluded",
                s.entity
            );
        }
        let want = full_sort_reference(&row, 16, Some(&mask));
        let got_ids: Vec<u32> = got.iter().map(|s| s.entity.0).collect();
        assert_eq!(got_ids, want);
    }

    #[test]
    fn batched_requests_match_single_requests() {
        let (model, store) = engine_fixture(12);
        let cfg = ServeConfig {
            batch_size: 2, // force multiple chunks
            default_k: 4,
        };
        let eng = ScoringEngine::with_config(&model, &store, cfg);
        let reqs: Vec<TopKRequest> = (0..5)
            .map(|i| TopKRequest::new(EntityId(i), RelationId(i % 3)))
            .collect();
        let batched = eng.top_k_batch(&reqs, None);
        assert_eq!(batched.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&batched) {
            let single = eng.top_k(*req, None);
            assert_eq!(resp.hits, single.hits);
            assert_eq!(resp.hits.len(), 4); // default_k
        }
    }

    #[test]
    fn serve_config_env_round_trip() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.default_k, 10);
    }
}
