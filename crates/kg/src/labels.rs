//! 1-N training batches: multi-hot tail labels per `(head, relation)` pair.
//!
//! The paper optimises with "1-to-many scoring" (Section IV-D): a forward
//! pass scores *all* entities as candidate tails of each `(h, r)` query and a
//! Bernoulli negative log-likelihood is taken against the multi-hot vector of
//! known train tails. [`OneToNBatcher`] also supports the sampled variant
//! ("1-to-1000" on OMAHA-MM) through a 0/1 weight mask.

use std::collections::HashMap;

use came_tensor::{Prng, Shape, Tensor};

use crate::dataset::KgDataset;
use crate::vocab::{EntityId, RelationId};

/// One 1-N training batch.
#[derive(Clone, Debug)]
pub struct OneToNBatch {
    /// Head entity ids, length `B`.
    pub heads: Vec<u32>,
    /// Relation ids (inverse-augmented space `[0, 2R)`), length `B`.
    pub rels: Vec<u32>,
    /// Multi-hot (optionally label-smoothed) targets `[B, N]`.
    pub targets: Tensor,
    /// Optional 0/1 scoring mask `[B, N]`; present only in sampled mode.
    pub weights: Option<Tensor>,
}

impl OneToNBatch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }
}

/// Negative-candidate policy for 1-N scoring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativePolicy {
    /// Score all `N` entities (the paper's DRKG-MM setting).
    Full,
    /// Score the positives plus `k` sampled negatives (the paper's
    /// "1-to-1000" OMAHA-MM setting), via a BCE weight mask.
    Sampled(usize),
}

/// Iterates epochs of shuffled 1-N batches over the inverse-augmented train
/// split.
pub struct OneToNBatcher {
    pairs: Vec<(EntityId, RelationId)>,
    labels: HashMap<(EntityId, RelationId), Vec<EntityId>>,
    num_entities: usize,
    batch_size: usize,
    label_smoothing: f32,
    policy: NegativePolicy,
}

impl OneToNBatcher {
    /// Build from a dataset. `label_smoothing` is the ConvE-style ε applied
    /// as `y*(1-ε) + ε/N`.
    pub fn new(
        dataset: &KgDataset,
        batch_size: usize,
        label_smoothing: f32,
        policy: NegativePolicy,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!((0.0..1.0).contains(&label_smoothing));
        let labels = dataset.train_label_index();
        let mut pairs: Vec<_> = labels.keys().copied().collect();
        pairs.sort_unstable(); // deterministic base order before shuffling
        OneToNBatcher {
            pairs,
            labels,
            num_entities: dataset.num_entities(),
            batch_size,
            label_smoothing,
            policy,
        }
    }

    /// Number of `(h, r)` query pairs per epoch.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.pairs.len().div_ceil(self.batch_size)
    }

    /// Produce the batches of one epoch, shuffled by `rng`.
    pub fn epoch(&mut self, rng: &mut Prng) -> Vec<OneToNBatch> {
        let mut order: Vec<usize> = (0..self.pairs.len()).collect();
        rng.shuffle(&mut order);
        order
            .chunks(self.batch_size)
            .map(|chunk| self.make_batch(chunk, rng))
            .collect()
    }

    fn make_batch(&self, idxs: &[usize], rng: &mut Prng) -> OneToNBatch {
        let b = idxs.len();
        let n = self.num_entities;
        let mut heads = Vec::with_capacity(b);
        let mut rels = Vec::with_capacity(b);
        let smooth_off = self.label_smoothing / n as f32;
        let smooth_on = 1.0 - self.label_smoothing + smooth_off;
        let mut targets = Tensor::full(Shape::d2(b, n), smooth_off);
        let mut weights = match self.policy {
            NegativePolicy::Full => None,
            NegativePolicy::Sampled(_) => Some(Tensor::zeros(Shape::d2(b, n))),
        };
        for (row, &i) in idxs.iter().enumerate() {
            let (h, r) = self.pairs[i];
            heads.push(h.0);
            rels.push(r.0);
            let tails = &self.labels[&(h, r)];
            for t in tails {
                targets.data_mut()[row * n + t.0 as usize] = smooth_on;
            }
            if let (Some(w), NegativePolicy::Sampled(k)) = (&mut weights, self.policy) {
                let wrow = &mut w.data_mut()[row * n..(row + 1) * n];
                for t in tails {
                    wrow[t.0 as usize] = 1.0;
                }
                // sample k negatives (with replacement; collisions just
                // re-mark a column, matching the paper's sampled scoring)
                for _ in 0..k.min(n) {
                    wrow[rng.below(n)] = 1.0;
                }
            }
        }
        OneToNBatch {
            heads,
            rels,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;
    use crate::vocab::{EntityKind, Vocab};

    fn toy() -> KgDataset {
        let mut vocab = Vocab::new();
        for i in 0..8 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        let triples: Vec<Triple> = (0..16)
            .map(|i| Triple::new(i % 4, 0, 4 + (i % 4)))
            .collect();
        let mut rng = Prng::new(1);
        KgDataset::split(vocab, triples, (1.0, 0.0, 0.0), &mut rng)
    }

    #[test]
    fn batches_cover_all_pairs_once() {
        let d = toy();
        let mut b = OneToNBatcher::new(&d, 3, 0.0, NegativePolicy::Full);
        let mut rng = Prng::new(2);
        let batches = b.epoch(&mut rng);
        let total: usize = batches.iter().map(|x| x.len()).sum();
        assert_eq!(total, b.num_pairs());
        assert_eq!(batches.len(), b.batches_per_epoch());
    }

    #[test]
    fn targets_mark_known_tails() {
        let d = toy();
        let idx = d.train_label_index();
        let mut b = OneToNBatcher::new(&d, 64, 0.0, NegativePolicy::Full);
        let mut rng = Prng::new(3);
        for batch in b.epoch(&mut rng) {
            let n = d.num_entities();
            for row in 0..batch.len() {
                let key = (EntityId(batch.heads[row]), RelationId(batch.rels[row]));
                let tails = &idx[&key];
                let ones: Vec<u32> = (0..n)
                    .filter(|&j| batch.targets.data()[row * n + j] > 0.5)
                    .map(|j| j as u32)
                    .collect();
                let expect: Vec<u32> = tails.iter().map(|t| t.0).collect();
                assert_eq!(ones, expect);
            }
        }
    }

    #[test]
    fn label_smoothing_shifts_targets() {
        let d = toy();
        let mut b = OneToNBatcher::new(&d, 64, 0.1, NegativePolicy::Full);
        let mut rng = Prng::new(4);
        let batch = &b.epoch(&mut rng)[0];
        let n = d.num_entities() as f32;
        for &v in batch.targets.data() {
            let off = 0.1 / n;
            let on = 0.9 + off;
            assert!(
                (v - off).abs() < 1e-6 || (v - on).abs() < 1e-6,
                "unexpected target {v}"
            );
        }
    }

    #[test]
    fn sampled_policy_masks_positives_and_some_negatives() {
        let d = toy();
        let mut b = OneToNBatcher::new(&d, 64, 0.0, NegativePolicy::Sampled(3));
        let mut rng = Prng::new(5);
        let batch = &b.epoch(&mut rng)[0];
        let w = batch.weights.as_ref().expect("sampled mode has weights");
        let n = d.num_entities();
        for row in 0..batch.len() {
            let wrow = &w.data()[row * n..(row + 1) * n];
            let trow = &batch.targets.data()[row * n..(row + 1) * n];
            // every positive column is scored
            for j in 0..n {
                if trow[j] > 0.5 {
                    assert_eq!(wrow[j], 1.0);
                }
            }
            let scored = wrow.iter().filter(|&&x| x > 0.0).count();
            let positives = trow.iter().filter(|&&x| x > 0.5).count();
            assert!(scored >= positives);
            assert!(scored <= positives + 3);
        }
    }
}
