//! The unified knowledge-graph-embedding model interface.
//!
//! [`KgeModel`] is the one contract every model in the reproduction — CamE
//! and all thirteen baselines — is evaluated and served through: it exposes
//! the entity count, batched candidate scoring into a caller-provided flat
//! buffer, and the opaque state bytes checkpoints carry. Parameters stay in
//! an external [`ParamStore`] (the codebase-wide convention), so the same
//! trait object works for a borrowed bench model and a boxed registry model.
//!
//! Two adapters cover the two scoring disciplines:
//! [`OneToNKge`] runs one batched `[B, N]` forward per query batch
//! (1-N models), and [`TripleKge`] tiles each query over entity shards
//! scored across the backend thread pool (per-triple models). Both run on
//! tape-free inference graphs ([`Graph::inference`]).

use came_tensor::{Graph, ParamStore};

use crate::eval::TailScorer;
use crate::snapshot::Snapshot;
use crate::train::{OneToNModel, TripleModel};
use crate::vocab::{EntityId, RelationId};

/// A trained knowledge-graph-embedding model, ready to score tail
/// candidates. Object-safe: registry, eval, serving, and checkpointing all
/// hold `&dyn KgeModel` / `Box<dyn KgeModel>`.
pub trait KgeModel {
    /// Human-readable model name (for logs and bench tables).
    fn name(&self) -> &str;

    /// Number of candidate entities every query is scored against.
    fn num_entities(&self) -> usize;

    /// Score each `(head, relation)` query against all entities, writing
    /// row-major `[queries.len(), num_entities]` scores into `out`. Higher
    /// is more plausible. Relations are in the inverse-augmented space.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * num_entities()`.
    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]);

    /// Whether [`KgeModel::score_range_into`] computes only the requested
    /// candidate range (`true`) or falls back to scoring full rows and
    /// copying the slice out (`false`, the default).
    ///
    /// Per-triple models slice natively — the candidate axis is their task
    /// axis. 1-N models compute all candidates inside one fused forward, so
    /// sharding the candidate axis saves them nothing; the serving tier uses
    /// this flag to score full rows once and shard only the selection work.
    fn supports_range_scoring(&self) -> bool {
        false
    }

    /// Score each query against the candidate entities in `lo..hi` only,
    /// writing row-major `[queries.len(), hi - lo]` scores into `out` —
    /// column `c` of a row is the score of entity `lo + c`. Bit-identical
    /// to the corresponding columns of [`KgeModel::score_into`].
    ///
    /// The default implementation scores full rows into a scratch buffer
    /// and copies the range out (correct for every model); adapters that
    /// can score a candidate slice natively override it.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or `out` is missized.
    fn score_range_into(
        &self,
        store: &ParamStore,
        queries: &[(EntityId, RelationId)],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        let n = self.num_entities();
        assert!(lo <= hi && hi <= n, "candidate range {lo}..{hi} out of {n}");
        let w = hi - lo;
        assert_eq!(out.len(), queries.len() * w, "range buffer size mismatch");
        if queries.is_empty() || w == 0 {
            return;
        }
        if lo == 0 && hi == n {
            return self.score_into(store, queries, out);
        }
        let mut full = vec![0.0f32; queries.len() * n];
        self.score_into(store, queries, &mut full);
        for (row, slice) in full.chunks(n).zip(out.chunks_mut(w)) {
            slice.copy_from_slice(&row[lo..hi]);
        }
    }

    /// Whether scores for `entity` as query head come from a degraded path
    /// — a modality the model normally consumes is absent for this entity,
    /// so a learned fallback stood in. The serving layer stamps responses
    /// for such heads `degraded: true`. Default: never degraded.
    fn degraded(&self, _entity: u32) -> bool {
        false
    }

    /// Opaque model-side mutable state for checkpoints (see
    /// [`OneToNModel::state_bytes`]). Parameters are captured separately
    /// from the [`ParamStore`].
    fn state_bytes(&self) -> Vec<u8>;

    /// Restore state captured by [`KgeModel::state_bytes`].
    fn restore_state(&self, bytes: &[u8]) -> Result<(), String>;

    /// Hook called when this model goes behind a scoring engine: freeze
    /// serving-side structures (e.g. a compact entity store selected by
    /// `CAME_EMBED_STORE`). Infallible — implementations fall back to their
    /// dense scoring path on failure. Default: nothing to prepare.
    fn prepare_serving(&self, _store: &ParamStore) {}

    /// Serialise the model's frozen entity store for checkpoints, if one is
    /// active (see [`came_tensor::EntityHead::to_blob`]). Default: none.
    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore an entity store captured by [`KgeModel::entity_store_blob`].
    /// Errs if the model cannot host one.
    fn restore_entity_store(&self, _bytes: &[u8]) -> Result<(), String> {
        Err("model has no entity store to restore".into())
    }
}

/// [`KgeModel`] adapter for 1-N models: one batched inference forward per
/// query batch, logits copied straight out of the graph.
pub struct OneToNKge<M: OneToNModel> {
    name: String,
    model: M,
    num_entities: usize,
}

impl<M: OneToNModel> OneToNKge<M> {
    /// Wrap a 1-N model scoring `num_entities` candidates.
    pub fn new(name: impl Into<String>, model: M, num_entities: usize) -> Self {
        OneToNKge {
            name: name.into(),
            model,
            num_entities,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: OneToNModel> KgeModel for OneToNKge<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        let n = self.num_entities;
        assert_eq!(out.len(), queries.len() * n, "score buffer size mismatch");
        if queries.is_empty() {
            return;
        }
        if self.model.entity_head().is_some() {
            return self.score_range_into(store, queries, 0, n, out);
        }
        let g = Graph::inference();
        let heads: Vec<u32> = queries.iter().map(|q| q.0 .0).collect();
        let rels: Vec<u32> = queries.iter().map(|q| q.1 .0).collect();
        let scores = self.model.forward(&g, store, &heads, &rels);
        g.with_value(scores, |t| {
            assert_eq!(t.numel(), out.len(), "forward produced wrong shape");
            out.copy_from_slice(t.data());
        });
    }

    // 1-N models normally compute all candidates in one fused forward, so
    // candidate slicing saves nothing — unless serving froze an entity head,
    // whose fused dequant-scoring kernels do score candidate ranges natively.
    fn supports_range_scoring(&self) -> bool {
        self.model.entity_head().is_some()
    }

    fn score_range_into(
        &self,
        store: &ParamStore,
        queries: &[(EntityId, RelationId)],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        let n = self.num_entities;
        assert!(lo <= hi && hi <= n, "candidate range {lo}..{hi} out of {n}");
        let w = hi - lo;
        assert_eq!(out.len(), queries.len() * w, "range buffer size mismatch");
        if queries.is_empty() || w == 0 {
            return;
        }
        if let Some(head) = self.model.entity_head() {
            let g = Graph::inference();
            let heads: Vec<u32> = queries.iter().map(|q| q.0 .0).collect();
            let rels: Vec<u32> = queries.iter().map(|q| q.1 .0).collect();
            let hidden = self
                .model
                .forward_hidden(&g, store, &heads, &rels)
                .expect("a model exposing an entity head must expose forward_hidden");
            return g.with_value(hidden, |t| {
                head.score_into(t.data(), queries.len(), lo, hi, out);
            });
        }
        if lo == 0 && hi == n {
            return self.score_into(store, queries, out);
        }
        let mut full = vec![0.0f32; queries.len() * n];
        self.score_into(store, queries, &mut full);
        for (row, slice) in full.chunks(n).zip(out.chunks_mut(w)) {
            slice.copy_from_slice(&row[lo..hi]);
        }
    }

    fn degraded(&self, entity: u32) -> bool {
        self.model.degraded(entity)
    }

    fn state_bytes(&self) -> Vec<u8> {
        self.model.state_bytes()
    }

    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        self.model.restore_state(bytes)
    }

    fn prepare_serving(&self, store: &ParamStore) {
        self.model.prepare_serving(store);
    }

    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        self.model.entity_store_blob()
    }

    fn restore_entity_store(&self, bytes: &[u8]) -> Result<(), String> {
        self.model.restore_entity_store(bytes)
    }
}

/// [`KgeModel`] adapter for per-triple models: every query is tiled over
/// entity shards, each shard scored by an independent inference pass on its
/// own thread (the candidate axis is the parallel dimension).
pub struct TripleKge<M: TripleModel> {
    name: String,
    model: M,
    num_entities: usize,
}

impl<M: TripleModel> TripleKge<M> {
    /// Wrap a per-triple model scoring `num_entities` candidates.
    pub fn new(name: impl Into<String>, model: M, num_entities: usize) -> Self {
        TripleKge {
            name: name.into(),
            model,
            num_entities,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: TripleModel> KgeModel for TripleKge<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        // Each (query, entity-shard) cell is an independent inference pass
        // writing a disjoint slice of its query's row, so sharding is exact.
        // Under the Scalar backend (or one thread) there is one shard per
        // query and this degenerates to a sequential loop.
        self.score_range_into(store, queries, 0, self.num_entities, out);
    }

    fn supports_range_scoring(&self) -> bool {
        true
    }

    fn score_range_into(
        &self,
        store: &ParamStore,
        queries: &[(EntityId, RelationId)],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        use came_tensor::backend::{self, BackendKind};
        let n = self.num_entities;
        assert!(lo <= hi && hi <= n, "candidate range {lo}..{hi} out of {n}");
        let w = hi - lo;
        assert_eq!(out.len(), queries.len() * w, "range buffer size mismatch");
        if queries.is_empty() || w == 0 {
            return;
        }
        // Same per-(query, chunk) independent inference passes as
        // `score_into`, tiled over the requested range only: each candidate's
        // score is a row-local function of its (h, r, t) triple, so chunk
        // boundaries never change values and the slice is bit-identical to
        // the full-row path.
        let shard = match backend::kind() {
            BackendKind::Scalar => w,
            BackendKind::Parallel | BackendKind::Simd => {
                w.div_ceil(backend::num_threads()).max(512)
            }
        }
        .max(1);
        let mut tasks: Vec<(EntityId, RelationId, usize, &mut [f32])> = Vec::new();
        for (q, row) in queries.iter().zip(out.chunks_mut(w)) {
            for (si, chunk) in row.chunks_mut(shard).enumerate() {
                tasks.push((q.0, q.1, lo + si * shard, chunk));
            }
        }
        backend::run_tasks(tasks, |(h, r, start, chunk)| {
            let g = Graph::inference();
            let len = chunk.len();
            let hs = vec![h.0; len];
            let rs = vec![r.0; len];
            let ts: Vec<u32> = (start as u32..(start + len) as u32).collect();
            let s = self.model.score(&g, store, &hs, &rs, &ts);
            g.with_value(s, |t| chunk.copy_from_slice(t.data()));
        });
    }

    fn state_bytes(&self) -> Vec<u8> {
        self.model.state_bytes()
    }

    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        self.model.restore_state(bytes)
    }
}

/// The one [`TailScorer`] adapter left: bridges a [`KgeModel`] (+ its store)
/// into the legacy row-per-query scoring interface used by epoch hooks and
/// the taped evaluation path.
pub struct KgeScorer<'a> {
    model: &'a dyn KgeModel,
    store: &'a ParamStore,
}

impl<'a> KgeScorer<'a> {
    /// Wrap a model and its parameter store for evaluation.
    pub fn new(model: &'a dyn KgeModel, store: &'a ParamStore) -> Self {
        KgeScorer { model, store }
    }
}

impl TailScorer for KgeScorer<'_> {
    fn score_tails(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>> {
        let n = self.model.num_entities();
        let mut flat = vec![0.0f32; queries.len() * n];
        self.model.score_into(self.store, queries, &mut flat);
        flat.chunks(n).map(|row| row.to_vec()).collect()
    }
}

/// Capture a training checkpoint through the trait object: parameters from
/// `store`, model state via [`KgeModel::state_bytes`].
pub fn capture_kge(
    model: &dyn KgeModel,
    store: &ParamStore,
    fingerprint: u64,
    epoch_next: usize,
    history: &[crate::train::EpochStats],
) -> Snapshot {
    Snapshot::capture(
        store,
        fingerprint,
        epoch_next,
        1.0,
        0,
        model.state_bytes(),
        history,
    )
    .with_embed_store(model.entity_store_blob())
}

/// Restore a snapshot through the trait object: parameters into `store`,
/// model state via [`KgeModel::restore_state`], and — for version-2
/// snapshots — the frozen entity store via
/// [`KgeModel::restore_entity_store`]. The round trip is bit-identical
/// (PR 3's resume guarantee survives the trait indirection, and a restored
/// quantized store scores bit-identically to the captured one).
pub fn restore_kge(
    model: &dyn KgeModel,
    store: &mut ParamStore,
    snap: &Snapshot,
) -> Result<(), String> {
    snap.restore_into(store).map_err(|e| e.to_string())?;
    model.restore_state(&snap.model_state)?;
    if let Some(blob) = &snap.embed_store {
        model.restore_entity_store(blob)?;
    }
    Ok(())
}
