//! Triples and triple collections.

use crate::vocab::{EntityId, RelationId};

/// A single `(head, relation, tail)` fact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Head entity.
    pub h: EntityId,
    /// Relation.
    pub r: RelationId,
    /// Tail entity.
    pub t: EntityId,
}

impl Triple {
    /// Construct from raw ids.
    pub fn new(h: u32, r: u32, t: u32) -> Self {
        Triple {
            h: EntityId(h),
            r: RelationId(r),
            t: EntityId(t),
        }
    }

    /// The inverse fact `(t, r⁻¹, h)` where `r⁻¹ = r + num_relations`.
    pub fn inverse(self, num_relations: usize) -> Triple {
        Triple {
            h: self.t,
            r: RelationId(self.r.0 + num_relations as u32),
            t: self.h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_swaps_and_offsets() {
        let t = Triple::new(3, 1, 7);
        let inv = t.inverse(10);
        assert_eq!(inv, Triple::new(7, 11, 3));
        // inverting twice with the doubled vocabulary returns the ids
        let back = inv.inverse(10);
        assert_eq!(back.h, t.h);
        assert_eq!(back.t, t.t);
    }
}
