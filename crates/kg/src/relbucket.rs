//! Relation families: the entity-type pairs the paper profiles in Table IV.

use crate::triple::Triple;
use crate::vocab::{EntityKind, Vocab};

/// The six relation families of Table IV plus a catch-all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelationFamily {
    /// Disease–Gene associations.
    DiseaseGene,
    /// Gene–Gene interactions.
    GeneGene,
    /// Compound–Compound (drug–drug) interactions.
    CompoundCompound,
    /// Compound–Side-effect links.
    CompoundSideEffect,
    /// Compound–Gene (drug target) links.
    CompoundGene,
    /// Compound–Disease (indication / repurposing) links.
    CompoundDisease,
    /// Any other endpoint-type combination.
    Other,
}

impl RelationFamily {
    /// The family of a triple, from its endpoint entity kinds
    /// (order-insensitive, matching the paper's table rows).
    pub fn of(vocab: &Vocab, t: &Triple) -> RelationFamily {
        use EntityKind::*;
        let a = vocab.entity_kind(t.h);
        let b = vocab.entity_kind(t.t);
        let pair = if (a as u8) <= (b as u8) {
            (a, b)
        } else {
            (b, a)
        };
        match pair {
            (Gene, Disease) | (Disease, Gene) => RelationFamily::DiseaseGene,
            (Gene, Gene) => RelationFamily::GeneGene,
            (Compound, Compound) => RelationFamily::CompoundCompound,
            (Compound, SideEffect) | (SideEffect, Compound) => RelationFamily::CompoundSideEffect,
            (Gene, Compound) | (Compound, Gene) => RelationFamily::CompoundGene,
            (Compound, Disease) | (Disease, Compound) => RelationFamily::CompoundDisease,
            _ => RelationFamily::Other,
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            RelationFamily::DiseaseGene => "Disease-Gene",
            RelationFamily::GeneGene => "Gene-Gene",
            RelationFamily::CompoundCompound => "Compound-Compound",
            RelationFamily::CompoundSideEffect => "Compound-Side-Effect",
            RelationFamily::CompoundGene => "Compound-Gene",
            RelationFamily::CompoundDisease => "Compound-Disease",
            RelationFamily::Other => "Other",
        }
    }

    /// All profiled families in table order.
    pub fn all() -> [RelationFamily; 6] {
        [
            RelationFamily::DiseaseGene,
            RelationFamily::GeneGene,
            RelationFamily::CompoundCompound,
            RelationFamily::CompoundSideEffect,
            RelationFamily::CompoundGene,
            RelationFamily::CompoundDisease,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    #[test]
    fn family_is_order_insensitive() {
        let mut v = Vocab::new();
        let g = v.add_entity("g", EntityKind::Gene);
        let c = v.add_entity("c", EntityKind::Compound);
        v.add_relation("r");
        let t1 = Triple {
            h: g,
            r: crate::vocab::RelationId(0),
            t: c,
        };
        let t2 = Triple {
            h: c,
            r: crate::vocab::RelationId(0),
            t: g,
        };
        assert_eq!(RelationFamily::of(&v, &t1), RelationFamily::CompoundGene);
        assert_eq!(RelationFamily::of(&v, &t2), RelationFamily::CompoundGene);
    }

    #[test]
    fn all_pairings_map_to_expected_family() {
        let mut v = Vocab::new();
        let g1 = v.add_entity("g1", EntityKind::Gene);
        let g2 = v.add_entity("g2", EntityKind::Gene);
        let c1 = v.add_entity("c1", EntityKind::Compound);
        let c2 = v.add_entity("c2", EntityKind::Compound);
        let d = v.add_entity("d", EntityKind::Disease);
        let s = v.add_entity("s", EntityKind::SideEffect);
        let sym = v.add_entity("sym", EntityKind::Symptom);
        let r = v.add_relation("r");
        let mk = |h, t| Triple { h, r, t };
        assert_eq!(
            RelationFamily::of(&v, &mk(g1, g2)),
            RelationFamily::GeneGene
        );
        assert_eq!(
            RelationFamily::of(&v, &mk(c1, c2)),
            RelationFamily::CompoundCompound
        );
        assert_eq!(
            RelationFamily::of(&v, &mk(d, g1)),
            RelationFamily::DiseaseGene
        );
        assert_eq!(
            RelationFamily::of(&v, &mk(c1, s)),
            RelationFamily::CompoundSideEffect
        );
        assert_eq!(
            RelationFamily::of(&v, &mk(c1, d)),
            RelationFamily::CompoundDisease
        );
        assert_eq!(RelationFamily::of(&v, &mk(sym, d)), RelationFamily::Other);
    }

    #[test]
    fn labels_are_table_iv_rows() {
        assert_eq!(RelationFamily::all().len(), 6);
        assert_eq!(RelationFamily::GeneGene.label(), "Gene-Gene");
        assert_eq!(
            RelationFamily::CompoundSideEffect.label(),
            "Compound-Side-Effect"
        );
    }
}
