//! Entity and relation vocabularies.

use std::collections::HashMap;

/// Dense entity identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Dense relation identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

/// Coarse biological entity category. Kept in the KG substrate (rather than
/// the data generator) because evaluation buckets (Table IV) and several
/// baselines need to know entity types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// Genes / proteins.
    Gene,
    /// Drugs / chemical compounds.
    Compound,
    /// Diseases.
    Disease,
    /// Drug side effects.
    SideEffect,
    /// Clinical symptoms (OMAHA-style).
    Symptom,
    /// Anything else.
    Other,
}

impl EntityKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::Gene => "Gene",
            EntityKind::Compound => "Compound",
            EntityKind::Disease => "Disease",
            EntityKind::SideEffect => "Side-Effect",
            EntityKind::Symptom => "Symptom",
            EntityKind::Other => "Other",
        }
    }
}

/// Entity/relation naming plus entity typing for a knowledge graph.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    entity_names: Vec<String>,
    entity_kinds: Vec<EntityKind>,
    relation_names: Vec<String>,
    entity_index: HashMap<String, EntityId>,
    relation_index: HashMap<String, RelationId>,
}

impl Vocab {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entity; returns its id. Names must be unique.
    ///
    /// # Panics
    /// Panics on duplicate entity names.
    pub fn add_entity(&mut self, name: impl Into<String>, kind: EntityKind) -> EntityId {
        let name = name.into();
        assert!(
            !self.entity_index.contains_key(&name),
            "duplicate entity name {name:?}"
        );
        let id = EntityId(self.entity_names.len() as u32);
        self.entity_index.insert(name.clone(), id);
        self.entity_names.push(name);
        self.entity_kinds.push(kind);
        id
    }

    /// Register a relation; returns its id.
    ///
    /// # Panics
    /// Panics on duplicate relation names.
    pub fn add_relation(&mut self, name: impl Into<String>) -> RelationId {
        let name = name.into();
        assert!(
            !self.relation_index.contains_key(&name),
            "duplicate relation name {name:?}"
        );
        let id = RelationId(self.relation_names.len() as u32);
        self.relation_index.insert(name.clone(), id);
        self.relation_names.push(name);
        id
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relations (without inverse augmentation).
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Name of an entity.
    pub fn entity_name(&self, id: EntityId) -> &str {
        &self.entity_names[id.0 as usize]
    }

    /// Kind of an entity.
    pub fn entity_kind(&self, id: EntityId) -> EntityKind {
        self.entity_kinds[id.0 as usize]
    }

    /// Name of a relation.
    pub fn relation_name(&self, id: RelationId) -> &str {
        &self.relation_names[id.0 as usize]
    }

    /// Look up an entity by name.
    pub fn entity(&self, name: &str) -> Option<EntityId> {
        self.entity_index.get(name).copied()
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<RelationId> {
        self.relation_index.get(name).copied()
    }

    /// All entity ids of a kind.
    pub fn entities_of_kind(&self, kind: EntityKind) -> Vec<EntityId> {
        (0..self.num_entities() as u32)
            .map(EntityId)
            .filter(|&e| self.entity_kind(e) == kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_lookup_roundtrips() {
        let mut v = Vocab::new();
        let a = v.add_entity("aspirin", EntityKind::Compound);
        let b = v.add_entity("BRCA1", EntityKind::Gene);
        let r = v.add_relation("targets");
        assert_eq!(a, EntityId(0));
        assert_eq!(b, EntityId(1));
        assert_eq!(r, RelationId(0));
        assert_eq!(v.entity("BRCA1"), Some(b));
        assert_eq!(v.entity_name(a), "aspirin");
        assert_eq!(v.relation("targets"), Some(r));
        assert_eq!(v.entity("nope"), None);
        assert_eq!(v.entity_kind(b), EntityKind::Gene);
    }

    #[test]
    fn entities_of_kind_filters() {
        let mut v = Vocab::new();
        v.add_entity("d1", EntityKind::Disease);
        v.add_entity("c1", EntityKind::Compound);
        v.add_entity("d2", EntityKind::Disease);
        let ds = v.entities_of_kind(EntityKind::Disease);
        assert_eq!(ds, vec![EntityId(0), EntityId(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate entity")]
    fn duplicate_entity_panics() {
        let mut v = Vocab::new();
        v.add_entity("x", EntityKind::Other);
        v.add_entity("x", EntityKind::Other);
    }
}
