//! The single-caller batched scoring engine (PR 4), now with typed
//! admission: configuration and request problems come back as
//! [`ServeError`] instead of panicking in the serving path.

use came_tensor::{ParamStore, Prng};

use super::merge::select_top_k;
use super::{ServeConfig, ServeError, TopKRequest, TopKResponse};
use crate::dataset::{FilterIndex, KgDataset, Split};
use crate::eval::{self, EvalConfig};
use crate::metrics::RankMetrics;
use crate::model::KgeModel;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};

/// Reject a request naming ids outside the served space or asking for zero
/// candidates. Shared by the engine, the sharded engine, and the router's
/// admission control so every entry point rejects identically.
pub(super) fn validate_request(
    req: &TopKRequest,
    num_entities: usize,
    relation_bound: Option<usize>,
) -> Result<(), ServeError> {
    if (req.head.0 as usize) >= num_entities {
        return Err(ServeError::EntityOutOfRange {
            entity: req.head,
            num_entities,
        });
    }
    if let Some(bound) = relation_bound {
        if (req.relation.0 as usize) >= bound {
            return Err(ServeError::RelationOutOfRange {
                relation: req.relation,
                num_relations: bound,
            });
        }
    }
    if req.k == Some(0) {
        return Err(ServeError::ZeroK);
    }
    Ok(())
}

/// Record one scoring batch into the serve metrics (`serve.batch_ns`
/// histogram, `serve.queries` counter, `serve.qps` gauge). Callers guard on
/// [`came_obs::enabled`].
pub(super) fn record_batch(queries: usize, ns: u64) {
    let r = came_obs::registry();
    r.histogram("serve.batch_ns").record(ns);
    r.counter("serve.queries").add(queries as u64);
    if ns > 0 {
        let qps = queries as f64 * 1e9 / ns as f64;
        r.gauge("serve.qps").set(qps as i64);
    }
}

/// Draw the evaluation triples for a split: inverse-augmented, optionally
/// shuffled and truncated to `cfg.max_triples` with the eval seed. Shared
/// by the single-engine and sharded `evaluate` so both rank the exact same
/// triple sequence.
pub(super) fn eval_triples(dataset: &KgDataset, split: Split, cfg: &EvalConfig) -> Vec<Triple> {
    let mut triples = dataset.augmented(split);
    if let Some(cap) = cfg.max_triples {
        let mut rng = Prng::new(cfg.seed);
        rng.shuffle(&mut triples);
        triples.truncate(cap);
    }
    triples
}

/// Batched scoring engine: a [`KgeModel`] plus its [`ParamStore`], serving
/// full-ranking evaluation and top-k retrieval from one flat-buffer path.
pub struct ScoringEngine<'a> {
    model: &'a dyn KgeModel,
    store: &'a ParamStore,
    cfg: ServeConfig,
}

impl<'a> ScoringEngine<'a> {
    /// Engine with environment-derived [`ServeConfig`]. Infallible: the env
    /// parser only accepts positive overrides of valid defaults.
    pub fn new(model: &'a dyn KgeModel, store: &'a ParamStore) -> Self {
        match ScoringEngine::with_config(model, store, ServeConfig::from_env()) {
            Ok(engine) => engine,
            Err(_) => unreachable!("env-derived serve config is always valid"),
        }
    }

    /// Engine with an explicit configuration; rejects unusable ones
    /// (`batch_size == 0`, `default_k == 0`) with a typed error.
    pub fn with_config(
        model: &'a dyn KgeModel,
        store: &'a ParamStore,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        // Putting a model behind an engine is the serving boundary: let it
        // freeze serving-side structures (e.g. the CAME_EMBED_STORE entity
        // store) once, before the first request.
        model.prepare_serving(store);
        Ok(ScoringEngine { model, store, cfg })
    }

    /// The model being served.
    pub fn model(&self) -> &dyn KgeModel {
        self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Candidate entities per query.
    pub fn num_entities(&self) -> usize {
        self.model.num_entities()
    }

    /// Score `queries` into the row-major `[queries.len(), N]` buffer `out`.
    ///
    /// When observability is on, each call records into the
    /// `serve.batch_ns` latency histogram (p50/p95/p99 per scoring batch),
    /// bumps the `serve.queries` counter, and refreshes the `serve.qps`
    /// gauge with this batch's instantaneous throughput.
    ///
    /// # Panics
    /// Panics if `out.len() != queries.len() * num_entities()`.
    pub fn score_into(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        if !came_obs::enabled() {
            self.model.score_into(self.store, queries, out);
            return;
        }
        let t0 = std::time::Instant::now();
        self.model.score_into(self.store, queries, out);
        record_batch(queries.len(), t0.elapsed().as_nanos() as u64);
    }

    /// Full filtered-ranking evaluation of a split (inverse-augmented, both
    /// directions), bit-equal to [`eval::evaluate`] over the same model:
    /// identical triple order, scores, and rank arithmetic — only the buffer
    /// discipline differs (one reused flat block instead of per-query rows).
    pub fn evaluate(
        &self,
        dataset: &KgDataset,
        split: Split,
        filter: &FilterIndex,
        cfg: &EvalConfig,
    ) -> RankMetrics {
        let triples = eval_triples(dataset, split, cfg);
        self.rank_triples(&triples, filter, cfg.batch_size)
    }

    /// Rank an explicit triple list (used by [`ScoringEngine::evaluate`] and
    /// directly by benchmarks that pre-select triples).
    pub fn rank_triples(
        &self,
        triples: &[Triple],
        filter: &FilterIndex,
        batch_size: usize,
    ) -> RankMetrics {
        let n = self.num_entities();
        let batch = if batch_size > 0 {
            batch_size
        } else {
            self.cfg.batch_size
        };
        let mut flat = vec![0.0f32; batch * n];
        let mut metrics = RankMetrics::new();
        for chunk in triples.chunks(batch) {
            let queries: Vec<(EntityId, RelationId)> = chunk.iter().map(|t| (t.h, t.r)).collect();
            let block = &mut flat[..chunk.len() * n];
            self.score_into(&queries, block);
            let mut ranks = vec![0.0f64; chunk.len()];
            let rows: Vec<(&Triple, &[f32], &mut f64)> = chunk
                .iter()
                .zip(block.chunks(n))
                .zip(ranks.iter_mut())
                .map(|((t, s), slot)| (t, s, slot))
                .collect();
            eval::rank_block(rows, filter);
            for r in ranks {
                metrics.push(r);
            }
        }
        metrics
    }

    /// Answer one retrieval request. `filter`, when given, excludes every
    /// known tail of `(h, r)` — serving predicts *new* links.
    pub fn top_k(
        &self,
        req: TopKRequest,
        filter: Option<&FilterIndex>,
    ) -> Result<TopKResponse, ServeError> {
        self.top_k_batch(std::slice::from_ref(&req), filter)?
            .pop()
            .ok_or(ServeError::ShutDown)
    }

    /// Answer a batch of retrieval requests, scoring
    /// [`ServeConfig::batch_size`] queries per forward. Admission is
    /// all-or-nothing: every request is validated before any is scored, so a
    /// bad id in the batch rejects the whole batch without wasted compute.
    /// `k` larger than the entity count is clamped to it.
    pub fn top_k_batch(
        &self,
        reqs: &[TopKRequest],
        filter: Option<&FilterIndex>,
    ) -> Result<Vec<TopKResponse>, ServeError> {
        let n = self.num_entities();
        for req in reqs {
            validate_request(req, n, self.cfg.relation_bound)?;
        }
        let batch = self.cfg.batch_size;
        let mut flat = vec![0.0f32; batch.min(reqs.len().max(1)) * n];
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(batch) {
            let queries: Vec<(EntityId, RelationId)> =
                chunk.iter().map(|r| (r.head, r.relation)).collect();
            let block = &mut flat[..chunk.len() * n];
            self.score_into(&queries, block);
            for (req, row) in chunk.iter().zip(block.chunks(n)) {
                let k = req.k.unwrap_or(self.cfg.default_k).min(n);
                let known = filter.and_then(|f| f.known_tails(req.head, req.relation));
                out.push(TopKResponse {
                    head: req.head,
                    relation: req.relation,
                    hits: select_top_k(row, k, known),
                    degraded: self.model.degraded(req.head.0),
                    partial: false,
                    trace: None,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-scorer: score(h, r, t) hashes the triple ids.
    pub(crate) struct HashModel {
        pub(crate) n: usize,
    }

    impl KgeModel for HashModel {
        fn name(&self) -> &str {
            "hash"
        }
        fn num_entities(&self) -> usize {
            self.n
        }
        fn score_into(
            &self,
            _store: &ParamStore,
            queries: &[(EntityId, RelationId)],
            out: &mut [f32],
        ) {
            assert_eq!(out.len(), queries.len() * self.n);
            for (q, row) in queries.iter().zip(out.chunks_mut(self.n)) {
                for (t, slot) in row.iter_mut().enumerate() {
                    let x = (q.0 .0 as u64)
                        .wrapping_mul(0x9E37)
                        .wrapping_add((q.1 .0 as u64) << 7)
                        .wrapping_add(t as u64)
                        .wrapping_mul(0x85EB_CA6B);
                    // few distinct values => plenty of exact ties
                    *slot = (x % 7) as f32;
                }
            }
        }
        fn state_bytes(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
            Ok(())
        }
    }

    fn engine_fixture(n: usize) -> (HashModel, ParamStore) {
        (HashModel { n }, ParamStore::new())
    }

    fn full_sort_reference(row: &[f32], k: usize, exclude: Option<&[EntityId]>) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..row.len() as u32)
            .filter(|e| !exclude.is_some_and(|m| m.binary_search(&EntityId(*e)).is_ok()))
            .collect();
        ids.sort_by(|&a, &b| row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b)));
        ids.truncate(k);
        ids
    }

    #[test]
    fn top_k_equals_full_sort_reference_including_ties() {
        let (model, store) = engine_fixture(31);
        let eng = ScoringEngine::with_config(&model, &store, ServeConfig::default()).unwrap();
        for (h, r) in [(0u32, 0u32), (3, 1), (7, 5), (11, 2)] {
            for k in [1usize, 3, 7, 31] {
                let resp = eng
                    .top_k(TopKRequest::with_k(EntityId(h), RelationId(r), k), None)
                    .unwrap();
                let mut row = vec![0.0f32; 31];
                eng.score_into(&[(EntityId(h), RelationId(r))], &mut row);
                let want = full_sort_reference(&row, k, None);
                let got: Vec<u32> = resp.hits.iter().map(|s| s.entity.0).collect();
                assert_eq!(got, want, "h={h} r={r} k={k}");
            }
        }
    }

    #[test]
    fn top_k_clamps_oversized_k_to_entity_count() {
        let (model, store) = engine_fixture(31);
        let eng = ScoringEngine::with_config(&model, &store, ServeConfig::default()).unwrap();
        let resp = eng
            .top_k(TopKRequest::with_k(EntityId(3), RelationId(1), 64), None)
            .unwrap();
        assert_eq!(resp.hits.len(), 31, "k > N must clamp to N");
        let mut row = vec![0.0f32; 31];
        eng.score_into(&[(EntityId(3), RelationId(1))], &mut row);
        let want = full_sort_reference(&row, 31, None);
        let got: Vec<u32> = resp.hits.iter().map(|s| s.entity.0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn top_k_excludes_known_tails() {
        let (model, store) = engine_fixture(16);
        let eng = ScoringEngine::with_config(&model, &store, ServeConfig::default()).unwrap();
        let mask = [EntityId(1), EntityId(4), EntityId(9)];
        let mut row = vec![0.0f32; 16];
        eng.score_into(&[(EntityId(2), RelationId(0))], &mut row);
        let got = select_top_k(&row, 16, Some(&mask));
        assert_eq!(got.len(), 13);
        for s in &got {
            assert!(
                !mask.contains(&s.entity),
                "{:?} should be excluded",
                s.entity
            );
        }
        let want = full_sort_reference(&row, 16, Some(&mask));
        let got_ids: Vec<u32> = got.iter().map(|s| s.entity.0).collect();
        assert_eq!(got_ids, want);
    }

    #[test]
    fn batched_requests_match_single_requests() {
        let (model, store) = engine_fixture(12);
        let cfg = ServeConfig {
            batch_size: 2, // force multiple chunks
            default_k: 4,
            ..ServeConfig::default()
        };
        let eng = ScoringEngine::with_config(&model, &store, cfg).unwrap();
        let reqs: Vec<TopKRequest> = (0..5)
            .map(|i| TopKRequest::new(EntityId(i), RelationId(i % 3)))
            .collect();
        let batched = eng.top_k_batch(&reqs, None).unwrap();
        assert_eq!(batched.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&batched) {
            let single = eng.top_k(*req, None).unwrap();
            assert_eq!(resp.hits, single.hits);
            assert_eq!(resp.hits.len(), 4); // default_k
        }
    }

    #[test]
    fn admission_rejects_bad_requests_with_typed_errors() {
        let (model, store) = engine_fixture(8);
        let cfg = ServeConfig::default().with_relation_bound(4);
        let eng = ScoringEngine::with_config(&model, &store, cfg).unwrap();

        let bad_entity = TopKRequest::new(EntityId(8), RelationId(0));
        assert_eq!(
            eng.top_k(bad_entity, None).unwrap_err(),
            ServeError::EntityOutOfRange {
                entity: EntityId(8),
                num_entities: 8,
            }
        );

        let bad_relation = TopKRequest::new(EntityId(0), RelationId(4));
        assert_eq!(
            eng.top_k(bad_relation, None).unwrap_err(),
            ServeError::RelationOutOfRange {
                relation: RelationId(4),
                num_relations: 4,
            }
        );

        let zero_k = TopKRequest::with_k(EntityId(0), RelationId(0), 0);
        assert_eq!(eng.top_k(zero_k, None).unwrap_err(), ServeError::ZeroK);

        // One bad request rejects the whole batch before any scoring.
        let batch = [TopKRequest::new(EntityId(0), RelationId(0)), bad_entity];
        assert!(eng.top_k_batch(&batch, None).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (model, store) = engine_fixture(8);
        let zero_batch = ServeConfig {
            batch_size: 0,
            ..ServeConfig::default()
        };
        assert_eq!(
            ScoringEngine::with_config(&model, &store, zero_batch).err(),
            Some(ServeError::InvalidBatchSize)
        );
        let zero_k = ServeConfig {
            default_k: 0,
            ..ServeConfig::default()
        };
        assert_eq!(
            ScoringEngine::with_config(&model, &store, zero_k).err(),
            Some(ServeError::ZeroK)
        );
    }

    #[test]
    fn serve_config_env_round_trip() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.default_k, 10);
        assert_eq!(cfg.relation_bound, None);
    }
}
