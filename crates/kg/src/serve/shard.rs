//! The shard layer: partition the entity candidate axis into contiguous
//! per-shard ranges and scatter-gather the results.
//!
//! Two scoring disciplines, one bit-equality story:
//!
//! * **per-triple models** ([`KgeModel::supports_range_scoring`] is `true`)
//!   score their column stripe natively on a worker thread — candidate
//!   scores are row-local functions of `(h, r, t)`, so a stripe holds the
//!   exact bytes the full row would.
//! * **1-N models** compute every candidate inside one fused forward, so
//!   splitting the forward would cost `S×` redundant compute. The sharded
//!   engine scores full rows once and fans only the *selection* work out
//!   across stripes.
//!
//! Either way, reassembling stripes reproduces the single-engine `[Q, N]`
//! buffer byte-for-byte, and per-stripe top-k partials merge (comparisons
//! only) into the single-engine full-sort prefix — see
//! [`merge`](super::merge).

use came_tensor::ParamStore;

use super::engine::{eval_triples, record_batch, validate_request};
use super::merge::{merge_top_k, select_top_k_range};
use super::{ScoredEntity, ServeConfig, ServeError, TopKRequest, TopKResponse};
use crate::dataset::{FilterIndex, KgDataset, Split};
use crate::eval::{self, EvalConfig};
use crate::metrics::RankMetrics;
use crate::model::KgeModel;
use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId};

/// A balanced contiguous partition of the candidate axis `0..num_entities`
/// into at most `shards` non-empty ranges (fewer when there are fewer
/// entities than requested shards).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    num_entities: usize,
    ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Partition `num_entities` candidates into `shards` balanced ranges;
    /// range sizes differ by at most one. `shards == 0` is rejected.
    pub fn new(num_entities: usize, shards: usize) -> Result<Self, ServeError> {
        if shards == 0 {
            return Err(ServeError::InvalidShardCount);
        }
        let s = shards.min(num_entities.max(1));
        let base = num_entities / s;
        let rem = num_entities % s;
        let mut ranges = Vec::with_capacity(s);
        let mut lo = 0usize;
        for i in 0..s {
            let w = base + usize::from(i < rem);
            ranges.push((lo, lo + w));
            lo += w;
        }
        Ok(ShardPlan {
            num_entities,
            ranges,
        })
    }

    /// The per-shard `(lo, hi)` candidate ranges, in id order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The partitioned entity count.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }
}

/// A [`ScoringEngine`](super::ScoringEngine) over a [`ShardPlan`]: the same
/// request surface, with scoring/selection scatter-gathered across shard
/// threads and results bit-identical to the single-engine path.
pub struct ShardedEngine<'a> {
    model: &'a (dyn KgeModel + Sync),
    store: &'a ParamStore,
    cfg: ServeConfig,
    plan: ShardPlan,
}

impl<'a> ShardedEngine<'a> {
    /// Sharded engine with environment-derived configuration: shard count
    /// from `CAME_SHARDS` (default 1), serving knobs from
    /// [`ServeConfig::from_env`].
    pub fn new(
        model: &'a (dyn KgeModel + Sync),
        store: &'a ParamStore,
    ) -> Result<Self, ServeError> {
        let shards = super::env_usize("CAME_SHARDS").unwrap_or(1);
        ShardedEngine::with_config(model, store, shards, ServeConfig::from_env())
    }

    /// Sharded engine with an explicit shard count and configuration.
    pub fn with_config(
        model: &'a (dyn KgeModel + Sync),
        store: &'a ParamStore,
        shards: usize,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let plan = ShardPlan::new(model.num_entities(), shards)?;
        // Serving boundary: freeze the model's serving-side structures (e.g.
        // the CAME_EMBED_STORE entity store) before the first request.
        model.prepare_serving(store);
        Ok(ShardedEngine {
            model,
            store,
            cfg,
            plan,
        })
    }

    /// The shard plan in effect.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Candidate entities per query.
    pub fn num_entities(&self) -> usize {
        self.model.num_entities()
    }

    /// Score `queries` into the row-major `[queries.len(), N]` buffer `out`,
    /// bit-identical to the single-engine path: range-scoring models compute
    /// per-shard stripes on worker threads which are reassembled column-wise;
    /// 1-N models run their one fused forward directly (splitting it would
    /// only repeat work). Records the same serve metrics as the engine.
    pub fn score_into(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        if !came_obs::enabled() {
            self.score_block(queries, out);
            return;
        }
        let t0 = std::time::Instant::now();
        self.score_block(queries, out);
        record_batch(queries.len(), t0.elapsed().as_nanos() as u64);
    }

    fn score_block(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        let n = self.num_entities();
        assert_eq!(out.len(), queries.len() * n, "score buffer size mismatch");
        if queries.is_empty() {
            return;
        }
        if self.plan.num_shards() == 1 || !self.model.supports_range_scoring() {
            self.model.score_into(self.store, queries, out);
            return;
        }
        let stripes = self.score_stripes(queries);
        for (s, &(lo, hi)) in self.plan.ranges().iter().enumerate() {
            let w = hi - lo;
            for (qi, row) in out.chunks_mut(n).enumerate() {
                row[lo..hi].copy_from_slice(&stripes[s][qi * w..(qi + 1) * w]);
            }
        }
    }

    /// Score every query against each shard's stripe on its own thread:
    /// `stripes[s]` is the row-major `[Q, hi - lo]` block for shard `s`.
    fn score_stripes(&self, queries: &[(EntityId, RelationId)]) -> Vec<Vec<f32>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plan
                .ranges()
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let mut buf = vec![0.0f32; queries.len() * (hi - lo)];
                        self.model
                            .score_range_into(self.store, queries, lo, hi, &mut buf);
                        buf
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Full filtered-ranking evaluation, bit-equal to
    /// [`ScoringEngine::evaluate`](super::ScoringEngine::evaluate): the
    /// sharded path reassembles the exact `[Q, N]` score buffer and feeds
    /// the same rank core over the same triple sequence.
    pub fn evaluate(
        &self,
        dataset: &KgDataset,
        split: Split,
        filter: &FilterIndex,
        cfg: &EvalConfig,
    ) -> RankMetrics {
        let triples = eval_triples(dataset, split, cfg);
        self.rank_triples(&triples, filter, cfg.batch_size)
    }

    /// Rank an explicit triple list through the sharded scoring path.
    pub fn rank_triples(
        &self,
        triples: &[Triple],
        filter: &FilterIndex,
        batch_size: usize,
    ) -> RankMetrics {
        let n = self.num_entities();
        let batch = if batch_size > 0 {
            batch_size
        } else {
            self.cfg.batch_size
        };
        let mut flat = vec![0.0f32; batch * n];
        let mut metrics = RankMetrics::new();
        for chunk in triples.chunks(batch) {
            let queries: Vec<(EntityId, RelationId)> = chunk.iter().map(|t| (t.h, t.r)).collect();
            let block = &mut flat[..chunk.len() * n];
            self.score_into(&queries, block);
            let mut ranks = vec![0.0f64; chunk.len()];
            let rows: Vec<(&Triple, &[f32], &mut f64)> = chunk
                .iter()
                .zip(block.chunks(n))
                .zip(ranks.iter_mut())
                .map(|((t, s), slot)| (t, s, slot))
                .collect();
            eval::rank_block(rows, filter);
            for r in ranks {
                metrics.push(r);
            }
        }
        metrics
    }

    /// Answer one retrieval request through the sharded path.
    pub fn top_k(
        &self,
        req: TopKRequest,
        filter: Option<&FilterIndex>,
    ) -> Result<TopKResponse, ServeError> {
        self.top_k_batch(std::slice::from_ref(&req), filter)?
            .pop()
            .ok_or(ServeError::ShutDown)
    }

    /// Answer a batch of retrieval requests: each shard produces sorted
    /// top-k partials over its stripe, merged per query into the global
    /// top-k — bit-identical (ties included) to the single-engine full-sort
    /// prefix. Admission and `k > N` clamping match
    /// [`ScoringEngine::top_k_batch`](super::ScoringEngine::top_k_batch).
    pub fn top_k_batch(
        &self,
        reqs: &[TopKRequest],
        filter: Option<&FilterIndex>,
    ) -> Result<Vec<TopKResponse>, ServeError> {
        let n = self.num_entities();
        for req in reqs {
            validate_request(req, n, self.cfg.relation_bound)?;
        }
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(self.cfg.batch_size) {
            let queries: Vec<(EntityId, RelationId)> =
                chunk.iter().map(|r| (r.head, r.relation)).collect();
            let ks: Vec<usize> = chunk
                .iter()
                .map(|r| r.k.unwrap_or(self.cfg.default_k).min(n))
                .collect();
            let knowns: Vec<Option<&[EntityId]>> = chunk
                .iter()
                .map(|r| filter.and_then(|f| f.known_tails(r.head, r.relation)))
                .collect();
            // partials[q][s]: shard s's sorted top-k over its stripe of
            // query q's row.
            let partials = self.select_partials(&queries, &ks, &knowns);
            for ((req, k), shard_lists) in chunk.iter().zip(&ks).zip(partials) {
                out.push(TopKResponse {
                    head: req.head,
                    relation: req.relation,
                    hits: merge_top_k(&shard_lists, *k),
                    degraded: self.model.degraded(req.head.0),
                    partial: false,
                    trace: None,
                });
            }
        }
        Ok(out)
    }

    /// Scatter: score + select per shard, each on its own worker thread.
    /// Returns per-query, per-shard sorted partials ready for the merge.
    fn select_partials(
        &self,
        queries: &[(EntityId, RelationId)],
        ks: &[usize],
        knowns: &[Option<&[EntityId]>],
    ) -> Vec<Vec<Vec<ScoredEntity>>> {
        let n = self.num_entities();
        let ranged = self.model.supports_range_scoring() && self.plan.num_shards() > 1;
        // 1-N models: one fused forward for the whole block, shards then
        // select over column stripes of the shared buffer.
        let full = if ranged {
            Vec::new()
        } else {
            let mut buf = vec![0.0f32; queries.len() * n];
            self.score_into(queries, &mut buf);
            buf
        };
        let full = &full;
        let per_shard: Vec<Vec<Vec<ScoredEntity>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plan
                .ranges()
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let w = hi - lo;
                        let stripe;
                        let rows: &[f32] = if ranged {
                            let mut buf = vec![0.0f32; queries.len() * w];
                            self.model
                                .score_range_into(self.store, queries, lo, hi, &mut buf);
                            stripe = buf;
                            &stripe
                        } else {
                            full
                        };
                        (0..queries.len())
                            .map(|qi| {
                                let row = if ranged {
                                    &rows[qi * w..(qi + 1) * w]
                                } else {
                                    &rows[qi * n + lo..qi * n + hi]
                                };
                                select_top_k_range(row, lo as u32, ks[qi], knowns[qi])
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Transpose shard-major -> query-major for the per-query merge.
        (0..queries.len())
            .map(|qi| per_shard.iter().map(|s| s[qi].clone()).collect())
            .collect()
    }
}
