//! The router layer: a traffic-facing async tier over persistent shard
//! workers.
//!
//! Concurrent callers submit through a [`TierHandle`] into one bounded
//! request queue. A router thread coalesces whatever has accumulated into a
//! continuous batch — flushed when it reaches the serve batch size or when
//! the oldest request has waited `flush_us` — then scatter-gathers the
//! batch across shard workers and replies per request. While a batch is
//! scoring, new arrivals pile up in the queue and form the next batch; a
//! full queue rejects immediately with [`ServeError::Overloaded`] (typed
//! backpressure instead of unbounded buffering).
//!
//! Everything is `std`: scoped threads so workers can borrow the model and
//! store, `sync_channel` for the bounded queue and the depth-1 per-shard
//! dispatch slots, and per-request reply channels for completion.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use came_tensor::ParamStore;

use super::engine::{record_batch, validate_request};
use super::merge::{merge_top_k, select_top_k_range};
use super::shard::ShardPlan;
use super::trace::{RequestTrace, TraceStamps};
use super::{ScoredEntity, ServeConfig, ServeError, TopKRequest, TopKResponse};
use crate::dataset::FilterIndex;
use crate::model::KgeModel;
use crate::vocab::{EntityId, RelationId};

/// Tier options: shard count, queue bound, flush deadline, plus the
/// engine-level [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Entity-axis shard workers (`CAME_SHARDS`).
    pub shards: usize,
    /// Bounded request-queue capacity (`CAME_SERVE_QUEUE`); a full queue
    /// rejects with [`ServeError::Overloaded`].
    pub queue: usize,
    /// Microseconds the oldest queued request may wait before a partial
    /// batch is flushed (`CAME_SERVE_FLUSH_US`).
    pub flush_us: u64,
    /// Per-request deadline in microseconds (`CAME_SERVE_DEADLINE_US`):
    /// a request still queued past this age is shed with
    /// [`ServeError::DeadlineExceeded`] instead of being scored late.
    /// `None` disables deadline shedding.
    pub deadline_us: Option<u64>,
    /// Fault injection (`CAME_FAULTS=shard_panic@batch=N`): shard worker 0
    /// panics once while serving the `N`-th coalesced batch, exercising the
    /// catch-and-respawn recovery path. `None` disables injection.
    pub panic_at_batch: Option<u64>,
    /// Engine-level serving options; `serve.batch_size` is also the
    /// router's maximum coalesced batch.
    pub serve: ServeConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            shards: 1,
            queue: 1024,
            flush_us: 200,
            deadline_us: None,
            panic_at_batch: None,
            serve: ServeConfig::default(),
        }
    }
}

impl TierConfig {
    /// Defaults overridden by `CAME_SHARDS`, `CAME_SERVE_QUEUE`,
    /// `CAME_SERVE_FLUSH_US`, `CAME_SERVE_DEADLINE_US` (positive integers),
    /// the `shard_panic@batch=N` form of `CAME_FAULTS`, and the
    /// [`ServeConfig::from_env`] knobs.
    pub fn from_env() -> Self {
        let mut cfg = TierConfig {
            serve: ServeConfig::from_env(),
            ..TierConfig::default()
        };
        if let Some(s) = super::env_usize("CAME_SHARDS") {
            cfg.shards = s;
        }
        if let Some(q) = super::env_usize("CAME_SERVE_QUEUE") {
            cfg.queue = q;
        }
        if let Some(us) = super::env_usize("CAME_SERVE_FLUSH_US") {
            cfg.flush_us = us as u64;
        }
        if let Some(us) = super::env_usize("CAME_SERVE_DEADLINE_US") {
            cfg.deadline_us = Some(us as u64);
        }
        cfg.panic_at_batch = crate::runtime::FaultPlan::from_env().shard_panic_at_batch;
        cfg
    }
}

/// One queued request: the payload, its admission time (for deadline
/// shedding), its trace stamps (when tracing is on), and its private
/// reply channel.
enum Job {
    TopK {
        req: TopKRequest,
        at: Instant,
        trace: Option<TraceStamps>,
        reply: mpsc::Sender<Result<TopKResponse, ServeError>>,
    },
    Scores {
        query: (EntityId, RelationId),
        at: Instant,
        reply: mpsc::Sender<Result<Vec<f32>, ServeError>>,
    },
}

impl Job {
    /// Stamp the moment the router pulled this job out of the queue.
    fn stamp_dequeued(&mut self) {
        if let Job::TopK {
            trace: Some(stamps),
            ..
        } = self
        {
            stamps.dequeued_ns = came_obs::now_ns();
        }
    }
}

/// An in-flight [`TierHandle::submit`]; [`PendingTopK::wait`] blocks for
/// the response.
pub struct PendingTopK {
    rx: mpsc::Receiver<Result<TopKResponse, ServeError>>,
}

impl PendingTopK {
    /// Block until the tier answers (or shuts down).
    ///
    /// Completion is also where a traced request's timeline is closed:
    /// `completed_ns` is stamped here, and the finished trace is recorded
    /// into the per-stage histograms, the rolling SLO window, and the
    /// exemplar reservoir — on the caller's thread, keeping the router and
    /// shard hot paths free of reservoir and SLO work.
    pub fn wait(self) -> Result<TopKResponse, ServeError> {
        let mut resp = self.rx.recv().map_err(|_| ServeError::ShutDown)??;
        if let Some(t) = resp.trace.as_mut() {
            t.completed_ns = came_obs::now_ns();
            if came_obs::enabled() {
                super::trace::record_completion(t);
            }
        }
        Ok(resp)
    }
}

/// An in-flight [`TierHandle::submit_scores`]; [`PendingScores::wait`]
/// blocks for the full score row.
pub struct PendingScores {
    rx: mpsc::Receiver<Result<Vec<f32>, ServeError>>,
}

impl PendingScores {
    /// Block until the tier answers (or shuts down).
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShutDown)?
    }
}

/// A caller's entry point into the tier: validating, non-blocking
/// admission into the bounded queue. Clone freely — one handle per client
/// thread.
pub struct TierHandle {
    tx: mpsc::SyncSender<Job>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
    num_entities: usize,
    relation_bound: Option<usize>,
}

impl Clone for TierHandle {
    fn clone(&self) -> Self {
        TierHandle {
            tx: self.tx.clone(),
            depth: self.depth.clone(),
            capacity: self.capacity,
            num_entities: self.num_entities,
            relation_bound: self.relation_bound,
        }
    }
}

impl TierHandle {
    /// Submit a retrieval request without blocking: admission validates ids
    /// and `k`, and a full queue rejects with
    /// [`ServeError::Overloaded`] (bumping `serve.router.rejected`).
    ///
    /// With `came-obs` enabled, admission also mints the request's trace
    /// context — a monotonic trace ID plus the admission timestamp — which
    /// the tier stamps at every later stage and returns on the response.
    pub fn submit(&self, req: TopKRequest) -> Result<PendingTopK, ServeError> {
        validate_request(&req, self.num_entities, self.relation_bound)?;
        let trace = came_obs::enabled().then(TraceStamps::admit);
        let (reply, rx) = mpsc::channel();
        self.admit(Job::TopK {
            req,
            at: Instant::now(),
            trace,
            reply,
        })?;
        Ok(PendingTopK { rx })
    }

    /// Submit and wait: the synchronous convenience wrapper over
    /// [`TierHandle::submit`].
    pub fn top_k(&self, req: TopKRequest) -> Result<TopKResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Submit a full-row scoring request (the bit-equality audit surface:
    /// the exact `[N]` score row the tier serves for one query).
    pub fn submit_scores(
        &self,
        query: (EntityId, RelationId),
    ) -> Result<PendingScores, ServeError> {
        let probe = TopKRequest::new(query.0, query.1);
        validate_request(&probe, self.num_entities, self.relation_bound)?;
        let (reply, rx) = mpsc::channel();
        self.admit(Job::Scores {
            query,
            at: Instant::now(),
            reply,
        })?;
        Ok(PendingScores { rx })
    }

    /// Submit-and-wait wrapper over [`TierHandle::submit_scores`].
    pub fn scores(&self, query: (EntityId, RelationId)) -> Result<Vec<f32>, ServeError> {
        self.submit_scores(query)?.wait()
    }

    fn admit(&self, job: Job) -> Result<(), ServeError> {
        // Count the job before it is visible to the router, so the router's
        // matching decrement can never underflow the gauge.
        self.depth.fetch_add(1, SeqCst);
        match self.tx.try_send(job) {
            Ok(()) => {
                if came_obs::enabled() {
                    came_obs::registry()
                        .gauge("serve.router.queue_depth")
                        .set(self.depth.load(SeqCst) as i64);
                }
                Ok(())
            }
            Err(mpsc::TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, SeqCst);
                if came_obs::enabled() {
                    came_obs::registry().counter("serve.router.rejected").add(1);
                }
                Err(ServeError::Overloaded {
                    capacity: self.capacity,
                })
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, SeqCst);
                Err(ServeError::ShutDown)
            }
        }
    }
}

/// One coalesced batch's shared work order, read by every shard worker.
struct BatchPlan<'e> {
    queries: Vec<(EntityId, RelationId)>,
    ks: Vec<usize>,
    knowns: Vec<Option<&'e [EntityId]>>,
    /// 1-N models: the pre-scored `[Q, N]` block (shards only select).
    /// Range-scoring models: `None` — each shard scores its own stripe.
    full: Option<Vec<f32>>,
}

/// One dispatch to a shard worker: the shared plan plus the batch's
/// gather channel. The reply carries the shard index, the worker's
/// scoring wall time (for the per-shard trace vector), and `None`
/// partials when the worker panicked while serving this task — the router
/// merges the surviving shards instead.
struct ShardTask<'e> {
    plan: Arc<BatchPlan<'e>>,
    /// Fault injection: the worker panics on this task instead of scoring.
    poison: bool,
    reply: mpsc::Sender<(usize, u64, Option<Vec<Vec<ScoredEntity>>>)>,
}

/// The serving tier: shard workers + router over a bounded queue, run as a
/// scoped-thread region so workers borrow the model and store directly.
pub struct ServeTier;

impl ServeTier {
    /// Start the tier, hand the caller a [`TierHandle`], and tear the tier
    /// down when the closure returns. `filter`, when given, excludes known
    /// tails from every response (serve *new* links).
    ///
    /// The closure runs on the calling thread; clone the handle into any
    /// client threads spawned inside it. Handles that outlive the closure
    /// fail all calls with [`ServeError::ShutDown`].
    pub fn run<R>(
        model: &(dyn KgeModel + Sync),
        store: &ParamStore,
        filter: Option<&FilterIndex>,
        cfg: TierConfig,
        f: impl FnOnce(&TierHandle) -> R,
    ) -> Result<R, ServeError> {
        cfg.serve.validate()?;
        // Expose the tier's registry/SLO/exemplar state over the live
        // telemetry endpoint when `CAME_OBS_ADDR` is configured (no-op,
        // once, otherwise).
        came_obs::telemetry_from_env();
        let plan = ShardPlan::new(model.num_entities(), cfg.shards)?;
        let capacity = cfg.queue.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = TierHandle {
            tx,
            depth: Arc::clone(&depth),
            capacity,
            num_entities: model.num_entities(),
            relation_bound: cfg.serve.relation_bound,
        };
        let result = std::thread::scope(|scope| {
            let mut shard_txs = Vec::with_capacity(plan.num_shards());
            for (i, &(lo, hi)) in plan.ranges().iter().enumerate() {
                // Depth-1 dispatch slot: a busy shard stalls the router,
                // the queue fills, and admission starts rejecting — the
                // backpressure chain.
                let (stx, srx) = mpsc::sync_channel::<ShardTask<'_>>(1);
                shard_txs.push(stx);
                scope.spawn(move || shard_loop(i, lo, hi, srx, model, store));
            }
            {
                let depth = Arc::clone(&depth);
                let stop = Arc::clone(&stop);
                let cfg = cfg.clone();
                scope.spawn(move || {
                    router_loop(rx, shard_txs, model, store, filter, &cfg, &depth, &stop)
                });
            }
            let r = f(&handle);
            stop.store(true, SeqCst);
            drop(handle);
            r
        });
        Ok(result)
    }
}

/// Coalesce queued jobs into continuous batches and dispatch them.
#[allow(clippy::too_many_arguments)]
fn router_loop<'e>(
    rx: mpsc::Receiver<Job>,
    shard_txs: Vec<mpsc::SyncSender<ShardTask<'e>>>,
    model: &(dyn KgeModel + Sync),
    store: &ParamStore,
    filter: Option<&'e FilterIndex>,
    cfg: &TierConfig,
    depth: &AtomicUsize,
    stop: &AtomicBool,
) {
    let max_batch = cfg.serve.batch_size;
    let flush = Duration::from_micros(cfg.flush_us);
    // Fault injection: arm the shard-panic for the Nth coalesced batch; it
    // stays armed until a batch actually reaches the shard workers (a
    // scores-only batch never does), then fires exactly once.
    let mut armed = cfg.panic_at_batch;
    let mut batches: u64 = 0;
    loop {
        // Block for the first job; wake periodically to notice shutdown
        // even when a cloned handle keeps the channel open.
        let mut first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(SeqCst) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        depth.fetch_sub(1, SeqCst);
        first.stamp_dequeued();
        let mut batch = vec![first];
        // Continuous batching: drain whatever arrives before the oldest
        // request's flush deadline, up to the serve batch size.
        let deadline = Instant::now() + flush;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(mut job) => {
                    depth.fetch_sub(1, SeqCst);
                    job.stamp_dequeued();
                    batch.push(job);
                }
                Err(_) => break,
            }
        }
        if came_obs::enabled() {
            let r = came_obs::registry();
            r.histogram("serve.router.batch_size")
                .record(batch.len() as u64);
            r.gauge("serve.router.queue_depth")
                .set(depth.load(SeqCst) as i64);
        }
        batches += 1;
        let poison = armed.is_some_and(|n| batches >= n);
        let dispatched = process_batch(batch, &shard_txs, model, store, filter, cfg, poison);
        if poison && dispatched {
            armed = None;
        }
    }
}

/// Score one coalesced batch: full rows for score requests, scatter-gather
/// top-k for retrieval requests. Returns true when the batch was dispatched
/// to the shard workers (i.e. it contained at least one top-k request).
fn process_batch<'e>(
    batch: Vec<Job>,
    shard_txs: &[mpsc::SyncSender<ShardTask<'e>>],
    model: &(dyn KgeModel + Sync),
    store: &ParamStore,
    filter: Option<&'e FilterIndex>,
    cfg: &TierConfig,
    poison: bool,
) -> bool {
    let serve = &cfg.serve;
    let n = model.num_entities();
    type TopKEntry = (
        TopKRequest,
        Option<TraceStamps>,
        mpsc::Sender<Result<TopKResponse, ServeError>>,
    );
    let mut topk: Vec<TopKEntry> = Vec::new();
    let mut scores: Vec<(
        (EntityId, RelationId),
        mpsc::Sender<Result<Vec<f32>, ServeError>>,
    )> = Vec::new();
    let limit = cfg.deadline_us.map(Duration::from_micros);
    let mut shed = 0u64;
    for job in batch {
        // Deadline shedding: a request that already waited past its
        // per-request deadline is answered with a typed rejection instead
        // of being scored late and holding the batch's other requests back.
        let expired = match (&job, limit) {
            (Job::TopK { at, .. } | Job::Scores { at, .. }, Some(limit)) => at.elapsed() > limit,
            (_, None) => false,
        };
        if expired {
            shed += 1;
            let deadline_us = cfg.deadline_us.unwrap_or(0);
            match job {
                Job::TopK { reply, .. } => {
                    let _ = reply.send(Err(ServeError::DeadlineExceeded { deadline_us }));
                }
                Job::Scores { reply, .. } => {
                    let _ = reply.send(Err(ServeError::DeadlineExceeded { deadline_us }));
                }
            }
            continue;
        }
        match job {
            Job::TopK {
                req, trace, reply, ..
            } => topk.push((req, trace, reply)),
            Job::Scores { query, reply, .. } => scores.push((query, reply)),
        }
    }
    if shed > 0 && came_obs::enabled() {
        came_obs::registry()
            .counter("serve.router.deadline_exceeded")
            .add(shed);
    }

    if !scores.is_empty() {
        let queries: Vec<(EntityId, RelationId)> = scores.iter().map(|s| s.0).collect();
        let t0 = Instant::now();
        let mut flat = vec![0.0f32; queries.len() * n];
        model.score_into(store, &queries, &mut flat);
        if came_obs::enabled() {
            record_batch(queries.len(), t0.elapsed().as_nanos() as u64);
        }
        for ((_, reply), row) in scores.into_iter().zip(flat.chunks(n)) {
            let _ = reply.send(Ok(row.to_vec()));
        }
    }

    if topk.is_empty() {
        return false;
    }
    let queries: Vec<(EntityId, RelationId)> =
        topk.iter().map(|(r, _, _)| (r.head, r.relation)).collect();
    let ks: Vec<usize> = topk
        .iter()
        .map(|(r, _, _)| r.k.unwrap_or(serve.default_k).min(n))
        .collect();
    let knowns: Vec<Option<&[EntityId]>> = topk
        .iter()
        .map(|(r, _, _)| filter.and_then(|f| f.known_tails(r.head, r.relation)))
        .collect();
    // The score stage starts here: for 1-N models the router itself scores
    // the full block before the shards select, and that work belongs to
    // "score", not "coalesce".
    let traced = topk.iter().any(|(_, t, _)| t.is_some());
    let dispatched_ns = if traced { came_obs::now_ns() } else { 0 };
    let t0 = Instant::now();
    // 1-N models score the whole block once; shards then only select over
    // column stripes (splitting a fused forward would repeat its work).
    let full = if model.supports_range_scoring() && shard_txs.len() > 1 {
        None
    } else {
        let mut flat = vec![0.0f32; queries.len() * n];
        model.score_into(store, &queries, &mut flat);
        Some(flat)
    };
    let nq = queries.len();
    let plan = Arc::new(BatchPlan {
        queries,
        ks,
        knowns,
        full,
    });
    let (gather_tx, gather_rx) = mpsc::channel();
    for (si, stx) in shard_txs.iter().enumerate() {
        let task = ShardTask {
            plan: Arc::clone(&plan),
            poison: poison && si == 0,
            reply: gather_tx.clone(),
        };
        if stx.send(task).is_err() {
            // A shard worker's channel is gone (tier tearing down); fail
            // the whole batch.
            for (_, _, reply) in topk {
                let _ = reply.send(Err(ServeError::ShutDown));
            }
            return true;
        }
    }
    drop(gather_tx);
    let mut per_shard: Vec<Option<Vec<Vec<ScoredEntity>>>> = vec![None; shard_txs.len()];
    let mut per_shard_ns = vec![0u64; shard_txs.len()];
    let mut failed = 0usize;
    for _ in 0..shard_txs.len() {
        match gather_rx.recv() {
            Ok((idx, elapsed_ns, Some(partials))) => {
                per_shard[idx] = Some(partials);
                per_shard_ns[idx] = elapsed_ns;
            }
            // A worker panicked on this task (its shard_ns stays 0); merge
            // the survivors below.
            Ok((_, _, None)) => failed += 1,
            Err(_) => {
                for (_, _, reply) in topk {
                    let _ = reply.send(Err(ServeError::ShutDown));
                }
                return true;
            }
        }
    }
    if failed == shard_txs.len() {
        // Every shard failed this batch — nothing to merge.
        for (_, _, reply) in topk {
            let _ = reply.send(Err(ServeError::ShutDown));
        }
        return true;
    }
    let scored_ns = if traced { came_obs::now_ns() } else { 0 };
    if came_obs::enabled() {
        record_batch(nq, t0.elapsed().as_nanos() as u64);
    }
    let partial = failed > 0;
    let shard_ns: Arc<[u64]> = per_shard_ns.into();
    let per_shard: Vec<Vec<Vec<ScoredEntity>>> = per_shard.into_iter().flatten().collect();
    for (qi, (req, stamps, reply)) in topk.into_iter().enumerate() {
        let lists: Vec<Vec<ScoredEntity>> = per_shard.iter().map(|s| s[qi].clone()).collect();
        let hits = merge_top_k(&lists, plan.ks[qi]);
        let degraded = model.degraded(req.head.0);
        // The merge stamp is per-request: a request merged late in the
        // batch sees the earlier merges' time in its own merge stage.
        let trace = stamps.map(|s| RequestTrace {
            trace_id: s.trace_id,
            admitted_ns: s.admitted_ns,
            dequeued_ns: s.dequeued_ns,
            dispatched_ns,
            scored_ns,
            merged_ns: came_obs::now_ns(),
            completed_ns: 0,
            shard_ns: Arc::clone(&shard_ns),
            batch_size: nq,
            degraded,
            partial,
        });
        let resp = TopKResponse {
            head: req.head,
            relation: req.relation,
            hits,
            degraded,
            partial,
            trace,
        };
        let _ = reply.send(Ok(resp));
    }
    true
}

/// One shard worker: receive a batch plan, produce this shard's sorted
/// top-k partial for every query, send it to the batch's gather channel.
///
/// A panic while serving one task (injected or real) is caught: the worker
/// reports the failure to the batch's gather channel (`None`), bumps
/// `serve.shard{idx}.panics`, and keeps draining its queue — recovery is
/// staying alive for the next batch, not dying and stalling the router.
fn shard_loop(
    idx: usize,
    lo: usize,
    hi: usize,
    rx: mpsc::Receiver<ShardTask<'_>>,
    model: &(dyn KgeModel + Sync),
    store: &ParamStore,
) {
    let n = model.num_entities();
    let w = hi - lo;
    // Satellite: resolve the per-shard metric handles once at spawn — the
    // hot/panic paths below update leaked `'static` handles with relaxed
    // RMWs instead of paying `format!` + a registry lock per task. Handles
    // are resolved unconditionally so flipping observability on mid-run
    // still reaches pre-registered metrics.
    let queue_gauge = came_obs::registry().gauge(&format!("serve.shard{idx}.queue"));
    let panics = came_obs::registry().counter(&format!("serve.shard{idx}.panics"));
    while let Ok(task) = rx.recv() {
        if came_obs::enabled() {
            queue_gauge.set(1);
        }
        let plan = &task.plan;
        let t0 = Instant::now();
        let scored = catch_unwind(AssertUnwindSafe(|| {
            if task.poison {
                panic!("injected shard panic (CAME_FAULTS shard_panic@batch)");
            }
            let nq = plan.queries.len();
            let stripe: Option<Vec<f32>> = if plan.full.is_none() {
                let mut buf = vec![0.0f32; nq * w];
                model.score_range_into(store, &plan.queries, lo, hi, &mut buf);
                Some(buf)
            } else {
                None
            };
            (0..nq)
                .map(|qi| {
                    let row: &[f32] = match (&stripe, &plan.full) {
                        (Some(s), _) => &s[qi * w..(qi + 1) * w],
                        (None, Some(full)) => &full[qi * n + lo..qi * n + hi],
                        (None, None) => unreachable!("shard task carries stripe or full block"),
                    };
                    select_top_k_range(row, lo as u32, plan.ks[qi], plan.knowns[qi])
                })
                .collect::<Vec<Vec<ScoredEntity>>>()
        }));
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        match scored {
            Ok(partials) => {
                let _ = task.reply.send((idx, elapsed_ns, Some(partials)));
            }
            Err(_) => {
                if came_obs::enabled() {
                    panics.add(1);
                }
                let _ = task.reply.send((idx, 0, None));
            }
        }
        if came_obs::enabled() {
            queue_gauge.set(0);
        }
    }
}
