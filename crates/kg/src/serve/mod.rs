//! The serving tier: batched scoring, entity-axis sharding, continuous
//! request batching, and scatter-gather top-k merge over the unified
//! [`KgeModel`](crate::model::KgeModel) interface.
//!
//! The tier is four layers, std-only (threads + channels), each usable on
//! its own:
//!
//! * **engine** ([`ScoringEngine`]) — the single-caller batched scoring
//!   core from PR 4: full-ranking evaluation and top-k retrieval over one
//!   flat `[B, N]` score buffer, now with typed [`ServeError`] admission
//!   (out-of-range ids, `k == 0`, zero batch sizes) instead of panics.
//! * **shard** ([`ShardedEngine`], [`ShardPlan`]) — partitions the entity
//!   candidate axis into contiguous per-shard ranges. Per-triple models
//!   score their range natively
//!   ([`KgeModel::score_range_into`](crate::model::KgeModel::score_range_into));
//!   1-N models score full rows once and shard the selection work. Either
//!   way results are bit-identical to the single-engine path.
//! * **router** ([`ServeTier`], [`TierHandle`]) — a traffic-facing async
//!   tier: concurrent `top_k`/`scores` submissions land in a bounded queue
//!   and are coalesced into continuous batches (flushed on size or
//!   deadline). A full queue rejects with [`ServeError::Overloaded`] —
//!   typed backpressure, never unbounded buffering.
//! * **merge** ([`merge_top_k`]) — scatter-gather merge of per-shard
//!   top-k partials under the total serving order (score descending,
//!   entity id ascending), equal to the first `k` rows of a full sort,
//!   ties included.
//!
//! Observability: with `came-obs` enabled the tier records the coalesced
//! batch-size histogram (`serve.router.batch_size`), a queue-depth gauge
//! (`serve.router.queue_depth`), per-shard queue gauges
//! (`serve.shard{i}.queue`), a rejected-request counter
//! (`serve.router.rejected`), and the engine's existing `serve.batch_ns` /
//! `serve.queries` / `serve.qps` metrics. The robustness layer adds a
//! deadline-shed counter (`serve.router.deadline_exceeded`), per-shard
//! panic counters (`serve.shard{i}.panics`), and a feature-coverage gauge
//! (`serve.degraded_entities`, set at cache preflight).
//!
//! Per-request tracing ([`trace`], [`RequestTrace`]): every admitted
//! retrieval request is minted a monotonic trace ID and stamped at each
//! pipeline stage (queue-wait → coalesce → per-shard score → merge →
//! reply); the completed timeline rides back on the [`TopKResponse`] and
//! is recorded into the `serve.stage.*` histograms, the rolling SLO
//! window, and the K-slowest exemplar reservoir — all inspectable live
//! over the `CAME_OBS_ADDR` telemetry endpoint.

mod engine;
mod error;
mod merge;
mod router;
mod shard;
pub mod trace;

pub use engine::ScoringEngine;
pub use error::ServeError;
pub use merge::merge_top_k;
pub use router::{PendingScores, PendingTopK, ServeTier, TierConfig, TierHandle};
pub use shard::{ShardPlan, ShardedEngine};
pub use trace::RequestTrace;

use crate::vocab::{EntityId, RelationId};

/// Serving options.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Queries scored per batched forward (`CAME_SERVE_BATCH`); also the
    /// router's maximum coalesced batch.
    pub batch_size: usize,
    /// `k` used when a request does not name one (`CAME_TOPK`).
    pub default_k: usize,
    /// Inverse-augmented relation count, when known: requests naming a
    /// relation `>=` this bound are rejected at admission. `None` skips
    /// relation validation (the model interface only exposes the entity
    /// count).
    pub relation_bound: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 128,
            default_k: 10,
            relation_bound: None,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `CAME_SERVE_BATCH` / `CAME_TOPK` when set to
    /// positive integers.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(b) = env_usize("CAME_SERVE_BATCH") {
            cfg.batch_size = b;
        }
        if let Some(k) = env_usize("CAME_TOPK") {
            cfg.default_k = k;
        }
        cfg
    }

    /// Reject unusable configurations with a typed error.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.batch_size == 0 {
            return Err(ServeError::InvalidBatchSize);
        }
        if self.default_k == 0 {
            return Err(ServeError::ZeroK);
        }
        Ok(())
    }

    /// Bound the relation space for admission validation (builder style).
    pub fn with_relation_bound(mut self, num_relations_aug: usize) -> Self {
        self.relation_bound = Some(num_relations_aug);
        self
    }
}

/// Positive-integer environment knob.
pub(crate) fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
}

/// One retrieval request: rank tail candidates of `(head, relation)`.
#[derive(Clone, Copy, Debug)]
pub struct TopKRequest {
    /// Query head entity.
    pub head: EntityId,
    /// Query relation (inverse-augmented space `[0, 2R)`).
    pub relation: RelationId,
    /// Number of candidates to return; `None` uses the engine default.
    /// Values larger than the entity count are clamped to it.
    pub k: Option<usize>,
}

impl TopKRequest {
    /// Request the engine-default number of candidates for `(h, r)`.
    pub fn new(head: EntityId, relation: RelationId) -> Self {
        TopKRequest {
            head,
            relation,
            k: None,
        }
    }

    /// Request exactly `k` candidates for `(h, r)`.
    pub fn with_k(head: EntityId, relation: RelationId, k: usize) -> Self {
        TopKRequest {
            head,
            relation,
            k: Some(k),
        }
    }
}

/// One ranked candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredEntity {
    /// Candidate tail entity.
    pub entity: EntityId,
    /// Model score (higher is more plausible).
    pub score: f32,
}

/// Response to a [`TopKRequest`]: candidates in serving order — score
/// descending, entity id ascending among exact ties.
#[derive(Clone, Debug)]
pub struct TopKResponse {
    /// Echo of the query head.
    pub head: EntityId,
    /// Echo of the query relation.
    pub relation: RelationId,
    /// The top candidates, best first.
    pub hits: Vec<ScoredEntity>,
    /// True when the model scored this head through a degraded path (a
    /// modality it normally consumes is absent for this entity and a
    /// learned fallback stood in). Scores are still exact for the degraded
    /// model; the flag tells callers the answer used less evidence.
    pub degraded: bool,
    /// True when one or more shard workers failed while serving this batch
    /// and the hits were merged from the surviving shards only — candidates
    /// owned by the failed shard(s) are missing from `hits`.
    pub partial: bool,
    /// The request's stage timeline, present when the response came
    /// through the tier with `came-obs` enabled (the single-caller
    /// [`ScoringEngine`]/[`ShardedEngine`] paths have no queue or merge
    /// pipeline to attribute and leave this `None`).
    pub trace: Option<RequestTrace>,
}
