//! Per-request trace context for the serving tier.
//!
//! A trace is minted at [`TierHandle`](super::TierHandle) admission — a
//! process-monotonic trace ID plus the admission timestamp — and stamped
//! at every pipeline stage as the request moves through the router, the
//! shard workers, and the merge. The completed timeline rides back on the
//! [`TopKResponse`](super::TopKResponse), so every caller can see exactly
//! where its latency went:
//!
//! ```text
//! admitted --queue--> dequeued --coalesce--> dispatched --score-->
//!   scored --merge--> merged --reply--> completed
//! ```
//!
//! * **queue** — sitting in the bounded admission queue before the router
//!   picked it up.
//! * **coalesce** — waiting in the router's continuous-batching window for
//!   the batch to fill or the flush deadline to pass.
//! * **score** — the scatter-gather scoring pass; batch-scoped, with the
//!   per-shard scoring durations kept as a vector (`shard_ns`) so one
//!   straggler shard is visible, not averaged away.
//! * **merge** — top-k merge of the shard partials (includes any wait for
//!   earlier requests of the same batch to merge first).
//! * **reply** — channel delivery from the router to the waiting caller.
//!
//! Timestamps use the `came_obs` process-monotonic nanosecond clock, so
//! they are directly comparable within one process. Score and merge work
//! is shared by every request of a coalesced batch (`batch_size` records
//! how many), so batch-stage durations are attributed wall-clock, not
//! divided. Tracing is enabled exactly when [`came_obs::enabled`] is on;
//! with it off, responses carry `trace: None` and the only per-request
//! cost is one branch at admission.
//!
//! Completion ([`PendingTopK::wait`](super::PendingTopK::wait)) records
//! the per-stage histograms (`serve.stage.*`), feeds the end-to-end
//! latency into the rolling SLO window, and offers the full timeline to
//! the exemplar reservoir, which keeps the K slowest traces for the JSONL
//! sink and the live `/trace` telemetry command.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Mint the next process-monotonic trace ID (1-based; never reused).
pub(super) fn mint_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Relaxed)
}

/// The in-flight stamps carried by a queued job until its response is
/// built (the batch-scoped stamps live on the router's stack instead).
#[derive(Clone, Copy, Debug)]
pub(super) struct TraceStamps {
    pub(super) trace_id: u64,
    pub(super) admitted_ns: u64,
    pub(super) dequeued_ns: u64,
}

impl TraceStamps {
    /// Mint a trace at admission time.
    pub(super) fn admit() -> TraceStamps {
        TraceStamps {
            trace_id: mint_trace_id(),
            admitted_ns: came_obs::now_ns(),
            dequeued_ns: 0,
        }
    }
}

/// A completed request's stage timeline (nanosecond timestamps on the
/// process-monotonic clock) plus the serving flags it completed with.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Process-monotonic request ID, minted at admission.
    pub trace_id: u64,
    /// Admission into the bounded queue.
    pub admitted_ns: u64,
    /// Picked up by the router thread.
    pub dequeued_ns: u64,
    /// Coalesced batch dispatched for scoring.
    pub dispatched_ns: u64,
    /// Every shard's partial gathered.
    pub scored_ns: u64,
    /// This request's top-k merge finished.
    pub merged_ns: u64,
    /// Response received by the caller (stamped in `wait()`; 0 until
    /// then).
    pub completed_ns: u64,
    /// Per-shard scoring duration (ns), indexed by shard; 0 marks a shard
    /// that failed this batch. Shared by every request of the batch.
    pub shard_ns: Arc<[u64]>,
    /// Requests coalesced into the batch that scored this request.
    pub batch_size: usize,
    /// Echo of [`TopKResponse::degraded`](super::TopKResponse::degraded).
    pub degraded: bool,
    /// Echo of [`TopKResponse::partial`](super::TopKResponse::partial).
    pub partial: bool,
}

impl RequestTrace {
    /// Time spent in the admission queue.
    pub fn queue_ns(&self) -> u64 {
        self.dequeued_ns.saturating_sub(self.admitted_ns)
    }

    /// Time spent in the router's coalescing window.
    pub fn coalesce_ns(&self) -> u64 {
        self.dispatched_ns.saturating_sub(self.dequeued_ns)
    }

    /// Scatter-gather scoring time of the whole batch.
    pub fn score_ns(&self) -> u64 {
        self.scored_ns.saturating_sub(self.dispatched_ns)
    }

    /// Merge time (including earlier same-batch merges).
    pub fn merge_ns(&self) -> u64 {
        self.merged_ns.saturating_sub(self.scored_ns)
    }

    /// Reply-channel delivery time (0 until `wait()` stamps completion).
    pub fn reply_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.merged_ns)
    }

    /// End-to-end admission-to-completion latency.
    pub fn e2e_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.admitted_ns)
    }

    /// The slowest shard's scoring duration (0 when unsharded).
    pub fn slowest_shard_ns(&self) -> u64 {
        self.shard_ns.iter().copied().max().unwrap_or(0)
    }

    /// Whether the stage timestamps are complete and monotone
    /// (`admitted <= dequeued <= dispatched <= scored <= merged <=
    /// completed`, all stamped).
    pub fn is_complete(&self) -> bool {
        self.admitted_ns > 0
            && self.admitted_ns <= self.dequeued_ns
            && self.dequeued_ns <= self.dispatched_ns
            && self.dispatched_ns <= self.scored_ns
            && self.scored_ns <= self.merged_ns
            && self.merged_ns <= self.completed_ns
    }

    /// Serialise the full timeline as one JSON object (the exemplar
    /// payload format served by the `/trace` telemetry command).
    pub fn to_json(&self) -> String {
        let mut shard = String::from("[");
        for (i, ns) in self.shard_ns.iter().enumerate() {
            if i > 0 {
                shard.push(',');
            }
            shard.push_str(&ns.to_string());
        }
        shard.push(']');
        format!(
            "{{\"trace_id\":{},\"admitted_ns\":{},\"queue_ns\":{},\"coalesce_ns\":{},\
             \"score_ns\":{},\"merge_ns\":{},\"reply_ns\":{},\"e2e_ns\":{},\
             \"shard_ns\":{},\"batch_size\":{},\"degraded\":{},\"partial\":{}}}",
            self.trace_id,
            self.admitted_ns,
            self.queue_ns(),
            self.coalesce_ns(),
            self.score_ns(),
            self.merge_ns(),
            self.reply_ns(),
            self.e2e_ns(),
            shard,
            self.batch_size,
            self.degraded,
            self.partial
        )
    }
}

/// The per-stage histogram handles, resolved once per waiter thread.
/// `record_completion` runs on every traced request, so it must not pay a
/// name lookup (even the thread-local `record_ns` cache hashes the name on
/// each call) — registry handles are `&'static`, so one resolution amortises
/// over the thread's lifetime.
struct StageHists {
    queue: &'static came_obs::Histogram,
    coalesce: &'static came_obs::Histogram,
    score: &'static came_obs::Histogram,
    merge: &'static came_obs::Histogram,
    reply: &'static came_obs::Histogram,
    e2e: &'static came_obs::Histogram,
}

thread_local! {
    static STAGE_HISTS: StageHists = {
        let r = came_obs::registry();
        StageHists {
            queue: r.histogram("serve.stage.queue_ns"),
            coalesce: r.histogram("serve.stage.coalesce_ns"),
            score: r.histogram("serve.stage.score_ns"),
            merge: r.histogram("serve.stage.merge_ns"),
            reply: r.histogram("serve.stage.reply_ns"),
            e2e: r.histogram("serve.req.e2e_ns"),
        }
    };
}

/// Record a completed trace: per-stage histograms, the rolling SLO window,
/// and the exemplar reservoir. Called from `wait()` after `completed_ns`
/// is stamped; the caller checks [`came_obs::enabled`].
pub(super) fn record_completion(t: &RequestTrace) {
    STAGE_HISTS.with(|h| {
        h.queue.record(t.queue_ns());
        h.coalesce.record(t.coalesce_ns());
        h.score.record(t.score_ns());
        h.merge.record(t.merge_ns());
        h.reply.record(t.reply_ns());
        h.e2e.record(t.e2e_ns());
    });
    let e2e = t.e2e_ns();
    // `completed_ns` was just stamped off the same process-monotonic clock
    // the SLO window slots by, so reuse it instead of reading the clock
    // again on the completion path.
    came_obs::slo().record_at(t.completed_ns / 1_000_000_000, e2e);
    came_obs::exemplars().offer_with(e2e, || t.to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequestTrace {
        RequestTrace {
            trace_id: 7,
            admitted_ns: 100,
            dequeued_ns: 150,
            dispatched_ns: 300,
            scored_ns: 900,
            merged_ns: 950,
            completed_ns: 1000,
            shard_ns: Arc::from(vec![500u64, 580]),
            batch_size: 4,
            degraded: false,
            partial: true,
        }
    }

    #[test]
    fn stage_durations_decompose_the_e2e() {
        let t = sample();
        assert_eq!(t.queue_ns(), 50);
        assert_eq!(t.coalesce_ns(), 150);
        assert_eq!(t.score_ns(), 600);
        assert_eq!(t.merge_ns(), 50);
        assert_eq!(t.reply_ns(), 50);
        assert_eq!(t.e2e_ns(), 900);
        assert_eq!(
            t.queue_ns() + t.coalesce_ns() + t.score_ns() + t.merge_ns() + t.reply_ns(),
            t.e2e_ns(),
            "stages partition the end-to-end latency exactly"
        );
        assert_eq!(t.slowest_shard_ns(), 580);
        assert!(t.is_complete());
    }

    #[test]
    fn incomplete_timelines_are_detected() {
        let mut t = sample();
        t.completed_ns = 0;
        assert!(!t.is_complete());
        let mut t = sample();
        t.dequeued_ns = 0;
        assert!(!t.is_complete());
    }

    #[test]
    fn trace_ids_are_unique_and_monotone() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert!(b > a);
    }

    #[test]
    fn trace_json_is_parseable() {
        let t = sample();
        let v = came_obs::json::parse(&t.to_json()).expect("trace JSON must parse");
        assert_eq!(v.get("trace_id").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("e2e_ns").unwrap().as_f64(), Some(900.0));
        assert_eq!(v.get("batch_size").unwrap().as_f64(), Some(4.0));
    }
}
