//! Typed serving errors: every rejection the tier can hand back to a
//! caller, replacing the panics of the PR 4 engine. Admission problems
//! (bad ids, `k == 0`, bad configuration) and capacity problems
//! (`Overloaded`, `ShutDown`) share one enum so traffic-facing callers
//! match on a single type.

use crate::vocab::{EntityId, RelationId};

/// Why the serving tier rejected a request or configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// `ServeConfig::batch_size` was zero.
    InvalidBatchSize,
    /// A shard plan asked for zero shards.
    InvalidShardCount,
    /// A request named an entity outside `[0, num_entities)`.
    EntityOutOfRange {
        /// The offending entity id.
        entity: EntityId,
        /// The model's entity count.
        num_entities: usize,
    },
    /// A request named a relation outside the configured bound.
    RelationOutOfRange {
        /// The offending relation id.
        relation: RelationId,
        /// The configured inverse-augmented relation count.
        num_relations: usize,
    },
    /// A request (or `ServeConfig::default_k`) asked for zero candidates.
    ZeroK,
    /// The tier's bounded request queue was full; retry later or shed the
    /// request. This is backpressure, not a failure of the request itself.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request waited in the queue past its per-request deadline
    /// (`CAME_SERVE_DEADLINE_US`) and was shed before scoring.
    DeadlineExceeded {
        /// The configured deadline in microseconds.
        deadline_us: u64,
    },
    /// The tier has shut down (or a worker disappeared) before the request
    /// completed.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidBatchSize => write!(f, "serve batch size must be positive"),
            ServeError::InvalidShardCount => write!(f, "shard count must be positive"),
            ServeError::EntityOutOfRange {
                entity,
                num_entities,
            } => write!(
                f,
                "entity id {} out of range (model has {num_entities} entities)",
                entity.0
            ),
            ServeError::RelationOutOfRange {
                relation,
                num_relations,
            } => write!(
                f,
                "relation id {} out of range (serving {num_relations} relations)",
                relation.0
            ),
            ServeError::ZeroK => write!(f, "k must be positive"),
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "serving queue full (capacity {capacity}); request rejected"
                )
            }
            ServeError::DeadlineExceeded { deadline_us } => write!(
                f,
                "request exceeded its {deadline_us}us serving deadline in the queue"
            ),
            ServeError::ShutDown => write!(f, "serving tier has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}
