//! The serving order and the scatter-gather top-k merge.
//!
//! Everything here is comparisons and copies — no float arithmetic — so a
//! merge of per-shard partials is bit-identical to selecting from the full
//! row: each candidate's `(score, id)` pair is unchanged by sharding, and
//! [`serve_order`] is total (`total_cmp`), so the global first-`k` prefix
//! is the same set in the same order no matter how the candidate axis was
//! partitioned.

use super::ScoredEntity;
use crate::vocab::EntityId;

/// The serving order: score descending, entity id ascending among exact
/// ties. Total (via `total_cmp`), so partial selection and a full sort
/// agree on every prefix.
pub(super) fn serve_order(row: &[f32]) -> impl Fn(&u32, &u32) -> std::cmp::Ordering + '_ {
    |&a, &b| row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b))
}

/// Top `k` candidates of one score row under [`serve_order`], excluding the
/// (sorted) `exclude` mask via a lockstep cursor. Equals the first `k`
/// entries of a full sort of the surviving candidates, ties included.
pub(super) fn select_top_k(
    row: &[f32],
    k: usize,
    exclude: Option<&[EntityId]>,
) -> Vec<ScoredEntity> {
    select_top_k_range(row, 0, k, exclude)
}

/// [`select_top_k`] for a shard's column stripe: `row[c]` is the score of
/// entity `lo + c`. The `exclude` mask is global (sorted entity ids); the
/// cursor starts at the first id `>= lo` so only in-range exclusions apply.
pub(super) fn select_top_k_range(
    row: &[f32],
    lo: u32,
    k: usize,
    exclude: Option<&[EntityId]>,
) -> Vec<ScoredEntity> {
    let exclude = exclude.unwrap_or_default();
    let mut cursor = exclude.partition_point(|e| e.0 < lo);
    let mut ids: Vec<u32> = Vec::with_capacity(row.len());
    for c in 0..row.len() as u32 {
        let e = lo + c;
        while cursor < exclude.len() && exclude[cursor].0 < e {
            cursor += 1;
        }
        if cursor < exclude.len() && exclude[cursor].0 == e {
            cursor += 1;
            continue;
        }
        ids.push(c);
    }
    let cmp = serve_order(row);
    if ids.len() > k && k > 0 {
        ids.select_nth_unstable_by(k - 1, &cmp);
        ids.truncate(k);
    }
    ids.sort_unstable_by(&cmp);
    ids.truncate(k);
    ids.into_iter()
        .map(|c| ScoredEntity {
            entity: EntityId(lo + c),
            score: row[c as usize],
        })
        .collect()
}

/// Merge per-shard top-k partials into the global top `k`.
///
/// Each partial must already be in serving order (score descending, id
/// ascending) over a candidate range disjoint from every other partial —
/// exactly what [`select_top_k_range`] produces for a shard stripe. The
/// merge repeatedly picks the best remaining head across partials, so the
/// output equals the first `k` rows of a full sort of the union, ties
/// included.
pub fn merge_top_k(partials: &[Vec<ScoredEntity>], k: usize) -> Vec<ScoredEntity> {
    let mut cursors = vec![0usize; partials.len()];
    let total: usize = partials.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(k.min(total));
    while out.len() < k {
        let mut best: Option<usize> = None;
        for (i, partial) in partials.iter().enumerate() {
            let Some(cand) = partial.get(cursors[i]) else {
                continue;
            };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cur = &partials[b][cursors[b]];
                    let better = cand
                        .score
                        .total_cmp(&cur.score)
                        .then(cur.entity.0.cmp(&cand.entity.0))
                        .is_gt();
                    Some(if better { i } else { b })
                }
            };
        }
        let Some(b) = best else { break };
        out.push(partials[b][cursors[b]]);
        cursors[b] += 1;
    }
    out
}
