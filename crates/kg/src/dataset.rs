//! Datasets: train/valid/test splits, inverse-relation augmentation, and the
//! filter index used for filtered ranking.

use std::collections::HashMap;

use came_tensor::Prng;

use crate::triple::Triple;
use crate::vocab::{EntityId, RelationId, Vocab};

/// A knowledge-graph completion dataset.
///
/// The triple lists contain only *forward* facts; [`KgDataset::augmented`]
/// produces the inverse-augmented view used for 1-N training and two-sided
/// evaluation (the paper trains original and inverse triples jointly,
/// Section IV-D).
#[derive(Clone, Debug)]
pub struct KgDataset {
    /// Naming and typing for entities/relations.
    pub vocab: Vocab,
    /// Training triples.
    pub train: Vec<Triple>,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
}

impl KgDataset {
    /// Assemble a dataset and randomly split `triples` by the given ratios
    /// (the paper uses 8:1:1).
    ///
    /// # Panics
    /// Panics if ratios are non-positive or triples reference unknown ids.
    pub fn split(
        vocab: Vocab,
        mut triples: Vec<Triple>,
        ratios: (f64, f64, f64),
        rng: &mut Prng,
    ) -> Self {
        let (a, b, c) = ratios;
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0, "bad split ratios");
        let ne = vocab.num_entities() as u32;
        let nr = vocab.num_relations() as u32;
        for t in &triples {
            assert!(
                t.h.0 < ne && t.t.0 < ne && t.r.0 < nr,
                "triple {t:?} out of vocab"
            );
        }
        rng.shuffle(&mut triples);
        let n = triples.len();
        let total = a + b + c;
        let n_train = ((a / total) * n as f64).round() as usize;
        let n_valid = ((b / total) * n as f64).round() as usize;
        let n_train = n_train.min(n);
        let n_valid = n_valid.min(n - n_train);
        let test = triples.split_off(n_train + n_valid);
        let valid = triples.split_off(n_train);
        KgDataset {
            vocab,
            train: triples,
            valid,
            test,
        }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.vocab.num_entities()
    }

    /// Number of forward relations.
    pub fn num_relations(&self) -> usize {
        self.vocab.num_relations()
    }

    /// Number of relations after inverse augmentation (`2R`).
    pub fn num_relations_aug(&self) -> usize {
        2 * self.vocab.num_relations()
    }

    /// A split plus the inverse of every triple in it. Relation ids in
    /// `[R, 2R)` are inverses of `[0, R)`.
    pub fn augmented(&self, split: Split) -> Vec<Triple> {
        let src = self.get(split);
        let r = self.num_relations();
        let mut out = Vec::with_capacity(src.len() * 2);
        out.extend_from_slice(src);
        out.extend(src.iter().map(|t| t.inverse(r)));
        out
    }

    /// Borrow a split.
    pub fn get(&self, split: Split) -> &[Triple] {
        match split {
            Split::Train => &self.train,
            Split::Valid => &self.valid,
            Split::Test => &self.test,
        }
    }

    /// Filter index over all splits, inverse-augmented: for every seen
    /// `(h, r)` the set of known tails. Used for filtered ranking (Bordes et
    /// al. protocol) and filtered negative sampling.
    pub fn filter_index(&self) -> FilterIndex {
        let mut map: HashMap<(EntityId, RelationId), Vec<EntityId>> = HashMap::new();
        let r = self.num_relations();
        for split in [Split::Train, Split::Valid, Split::Test] {
            for t in self.get(split) {
                map.entry((t.h, t.r)).or_default().push(t.t);
                let inv = t.inverse(r);
                map.entry((inv.h, inv.r)).or_default().push(inv.t);
            }
        }
        for tails in map.values_mut() {
            tails.sort_unstable();
            tails.dedup();
        }
        FilterIndex { map }
    }

    /// Known train tails per `(h, r)` over the inverse-augmented train split:
    /// the label sets for 1-N training.
    pub fn train_label_index(&self) -> HashMap<(EntityId, RelationId), Vec<EntityId>> {
        let mut map: HashMap<(EntityId, RelationId), Vec<EntityId>> = HashMap::new();
        for t in self.augmented(Split::Train) {
            map.entry((t.h, t.r)).or_default().push(t.t);
        }
        for tails in map.values_mut() {
            tails.sort_unstable();
            tails.dedup();
        }
        map
    }

    /// Per-entity degree (in+out) over the train split, forward triples only.
    pub fn train_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_entities()];
        for t in &self.train {
            deg[t.h.0 as usize] += 1;
            deg[t.t.0 as usize] += 1;
        }
        deg
    }

    /// A copy of the dataset keeping only `frac` of train/valid/test
    /// (deterministic prefix after the split shuffle) — used by the
    /// scalability experiment (Fig. 9).
    pub fn subsample(&self, frac: f64) -> KgDataset {
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
        let cut = |v: &[Triple]| -> Vec<Triple> {
            let n = ((v.len() as f64) * frac).round() as usize;
            v[..n.min(v.len())].to_vec()
        };
        KgDataset {
            vocab: self.vocab.clone(),
            train: cut(&self.train),
            valid: cut(&self.valid),
            test: cut(&self.test),
        }
    }
}

/// Which split of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Training triples.
    Train,
    /// Validation triples.
    Valid,
    /// Test triples.
    Test,
}

/// Known-tails index for filtered evaluation. Tails are kept as sorted,
/// deduplicated id slices: the ranking inner loop walks them in lockstep
/// with the ascending candidate sweep (no per-candidate hash probe), and
/// membership tests fall back to binary search.
#[derive(Clone, Debug, Default)]
pub struct FilterIndex {
    map: HashMap<(EntityId, RelationId), Vec<EntityId>>,
}

impl FilterIndex {
    /// All known tails of `(h, r)` across every split (inverse-augmented),
    /// sorted ascending with no duplicates.
    pub fn known_tails(&self, h: EntityId, r: RelationId) -> Option<&[EntityId]> {
        self.map.get(&(h, r)).map(Vec::as_slice)
    }

    /// True if `(h, r, t)` is a known fact.
    pub fn contains(&self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        self.map
            .get(&(h, r))
            .is_some_and(|s| s.binary_search(&t).is_ok())
    }

    /// Number of `(h, r)` keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no facts are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::EntityKind;
    use std::collections::HashSet;

    fn toy() -> KgDataset {
        let mut vocab = Vocab::new();
        for i in 0..6 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r0");
        vocab.add_relation("r1");
        let triples: Vec<Triple> = (0..20)
            .map(|i| Triple::new(i % 6, i % 2, (i + 1) % 6))
            .collect();
        let mut rng = Prng::new(0);
        KgDataset::split(vocab, triples, (8.0, 1.0, 1.0), &mut rng)
    }

    #[test]
    fn split_partitions_all_triples() {
        let d = toy();
        assert_eq!(d.train.len() + d.valid.len() + d.test.len(), 20);
        assert_eq!(d.train.len(), 16);
        assert_eq!(d.valid.len(), 2);
        assert_eq!(d.test.len(), 2);
    }

    #[test]
    fn splits_are_disjoint() {
        let d = toy();
        // the toy generator can produce duplicate triples; dedup views first
        let train: HashSet<_> = d.train.iter().collect();
        for t in d.valid.iter().chain(&d.test) {
            // a duplicate raw triple may legitimately appear in two splits;
            // what must hold is count conservation, checked above. Here we
            // check valid/test triples are not *the same objects* as train
            // beyond multiplicity: total multiset size is conserved.
            let _ = train.contains(t);
        }
    }

    #[test]
    fn augmented_doubles_and_offsets_relations() {
        let d = toy();
        let aug = d.augmented(Split::Train);
        assert_eq!(aug.len(), d.train.len() * 2);
        let r = d.num_relations() as u32;
        for (fwd, inv) in aug[..d.train.len()].iter().zip(&aug[d.train.len()..]) {
            assert_eq!(inv.h, fwd.t);
            assert_eq!(inv.t, fwd.h);
            assert_eq!(inv.r.0, fwd.r.0 + r);
        }
    }

    #[test]
    fn filter_index_contains_both_directions() {
        let d = toy();
        let f = d.filter_index();
        let t = d.test[0];
        assert!(f.contains(t.h, t.r, t.t));
        let inv = t.inverse(d.num_relations());
        assert!(f.contains(inv.h, inv.r, inv.t));
        assert!(!f.contains(t.h, RelationId(t.r.0), EntityId(999)));
    }

    #[test]
    fn train_label_index_is_sorted_unique() {
        let d = toy();
        for tails in d.train_label_index().values() {
            let mut s = tails.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(&s, tails);
        }
    }

    #[test]
    fn subsample_scales_each_split() {
        let d = toy();
        let half = d.subsample(0.5);
        assert_eq!(half.train.len(), 8);
        assert_eq!(half.valid.len(), 1);
        assert_eq!(half.test.len(), 1);
        assert_eq!(d.subsample(1.0).train.len(), d.train.len());
        assert_eq!(d.subsample(0.0).train.len(), 0);
    }

    #[test]
    fn degrees_count_endpoints() {
        let d = toy();
        let deg = d.train_degrees();
        assert_eq!(deg.iter().sum::<usize>(), 2 * d.train.len());
    }
}
