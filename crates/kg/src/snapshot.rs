//! Atomic, dependency-free training checkpoints.
//!
//! A snapshot is a single binary file holding everything needed to continue
//! a training run bit-identically: every [`ParamStore`] tensor with its Adam
//! moments and step counter, opaque model-side state (e.g. a dropout RNG),
//! the per-epoch loss history, and the sentinel's learning-rate scale.
//!
//! ## File format (versions 1–2, little-endian)
//!
//! ```text
//! magic    8 B   b"CAMECKPT"
//! version  u32   1 or 2
//! crc32    u32   IEEE CRC-32 of the payload bytes
//! len      u64   payload length in bytes
//! payload  len B
//! ```
//!
//! The payload is a flat field sequence (see [`Snapshot::encode`]); strings
//! and arrays carry `u64` length prefixes. Floats are stored as raw IEEE-754
//! bit patterns, so a restore reproduces training *exactly*, not just
//! approximately.
//!
//! Version 2 appends one field to the version-1 payload: the serialised
//! frozen entity store (an [`came_tensor::EntityHead`] blob), so quantized
//! serving state survives checkpoints bit-identically. Snapshots without an
//! entity store still encode as version 1, and version-1 checkpoints decode
//! with `embed_store: None` — old checkpoints keep loading and serve through
//! the default f32 path.
//!
//! ## Durability
//!
//! [`write_atomic`] never leaves a half-written file visible: the snapshot is
//! written to a temp file, synced, then renamed over `latest.ckpt` after the
//! previous `latest` is rotated to `prev.ckpt`. [`resume_or_init`] verifies
//! the CRC and run fingerprint of `latest` and silently falls back to `prev`
//! when `latest` is truncated or corrupt — a crash mid-write loses at most
//! one checkpoint interval, never the run.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use came_tensor::ParamStore;

use crate::train::EpochStats;

const MAGIC: &[u8; 8] = b"CAMECKPT";
const VERSION: u32 = 1;
/// Format version carrying the trailing entity-store blob.
const VERSION_EMBED: u32 = 2;
/// Header bytes before the payload: magic + version + crc + length.
const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Why a snapshot file was rejected.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error (with the path involved).
    Io(PathBuf, io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file declares an unsupported format version.
    BadVersion(u32),
    /// The file is shorter than its header declares.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload checksum does not match the header.
    CrcMismatch {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the bytes on disk.
        actual: u32,
    },
    /// The snapshot belongs to a different (model, config) run.
    FingerprintMismatch {
        /// Fingerprint of the running configuration.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        got: u64,
    },
    /// Structurally invalid payload.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(p, e) => write!(f, "checkpoint I/O error at {}: {e}", p.display()),
            SnapshotError::BadMagic => write!(f, "not a CamE checkpoint (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            SnapshotError::Truncated { expected, got } => {
                write!(f, "truncated checkpoint: expected {expected} bytes, got {got}")
            }
            SnapshotError::CrcMismatch { expected, actual } => write!(
                f,
                "checkpoint CRC mismatch: header {expected:08x}, payload {actual:08x}"
            ),
            SnapshotError::FingerprintMismatch { expected, got } => write!(
                f,
                "checkpoint belongs to a different run: fingerprint {got:016x}, expected {expected:016x}"
            ),
            SnapshotError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One parameter's checkpointed optimiser state.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamRecord {
    /// Registration name (must match the rebuilt model).
    pub name: String,
    /// Current value.
    pub value: Vec<f32>,
    /// Adam first moment.
    pub m: Vec<f32>,
    /// Adam second moment.
    pub v: Vec<f32>,
}

/// A decoded training snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Hash of (trainer, config, param names/shapes); guards against resuming
    /// an unrelated run's checkpoint.
    pub fingerprint: u64,
    /// First epoch still to run (epochs `0..epoch_next` are complete).
    pub epoch_next: usize,
    /// Sentinel learning-rate multiplier in effect.
    pub lr_scale: f32,
    /// Total sentinel trips so far.
    pub divergences: u32,
    /// Opaque model-side state (e.g. dropout RNG words).
    pub model_state: Vec<u8>,
    /// Per-epoch stats of the completed epochs.
    pub history: Vec<EpochStats>,
    /// Optimiser step counter ([`ParamStore::step`]).
    pub store_step: u64,
    /// Every parameter in registration order.
    pub params: Vec<ParamRecord>,
    /// Serialised frozen entity store (an [`came_tensor::EntityHead`] blob),
    /// when serving had one active at capture time. `Some` bumps the on-disk
    /// format to version 2; version-1 checkpoints decode as `None`.
    pub embed_store: Option<Vec<u8>>,
}

/// Slicing-by-8 lookup tables for the reflected 0xEDB88320 polynomial,
/// built at compile time. Snapshots run to megabytes, so the checksum is on
/// the per-epoch checkpoint path; the 8-byte-at-a-time form keeps it an
/// order of magnitude under the 5% overhead budget where the naive
/// bit-by-bit loop alone would blow it.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---- payload encoding helpers ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u64(out, xs.len() as u64);
    // Bulk write: resize once and fill 4-byte lanes in place. Parameter
    // tensors dominate snapshot bytes, so this loop must not go through
    // per-element Vec growth checks.
    let start = out.len();
    out.resize(start + xs.len() * 4, 0);
    for (lane, x) in out[start..].chunks_exact_mut(4).zip(xs) {
        lane.copy_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_bytes(out: &mut Vec<u8>, xs: &[u8]) {
    put_u64(out, xs.len() as u64);
    out.extend_from_slice(xs);
}

/// Bounded little-endian reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Malformed(format!(
                "payload ends at byte {} but field needs {n} more",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        // reject length prefixes that overrun the buffer before allocating
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(SnapshotError::Malformed(format!(
                "length prefix {n} overruns payload"
            )));
        }
        Ok(n)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.len_prefix(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::Malformed("non-UTF8 param name".into()))
    }
}

impl Snapshot {
    /// Capture the complete training state of `store` (plus opaque
    /// `model_state`) into a snapshot.
    pub fn capture(
        store: &ParamStore,
        fingerprint: u64,
        epoch_next: usize,
        lr_scale: f32,
        divergences: u32,
        model_state: Vec<u8>,
        history: &[EpochStats],
    ) -> Snapshot {
        Snapshot {
            fingerprint,
            epoch_next,
            lr_scale,
            divergences,
            model_state,
            history: history.to_vec(),
            store_step: store.step,
            params: store
                .state_views()
                .map(|s| ParamRecord {
                    name: s.name.to_string(),
                    value: s.value.data().to_vec(),
                    m: s.m.data().to_vec(),
                    v: s.v.data().to_vec(),
                })
                .collect(),
            embed_store: None,
        }
    }

    /// Attach (or clear) the serialised entity store; `Some` makes the
    /// snapshot encode as format version 2.
    pub fn with_embed_store(mut self, blob: Option<Vec<u8>>) -> Snapshot {
        self.embed_store = blob;
        self
    }

    /// Write this snapshot's state back into a freshly constructed `store`
    /// (same model, same registration order). Bit-exact: after this call the
    /// store is indistinguishable from the one that was captured.
    pub fn restore_into(&self, store: &mut ParamStore) -> Result<(), SnapshotError> {
        if self.params.len() != store.len() {
            return Err(SnapshotError::Malformed(format!(
                "checkpoint has {} params, store has {}",
                self.params.len(),
                store.len()
            )));
        }
        for (i, p) in self.params.iter().enumerate() {
            store
                .restore_entry(i, &p.name, &p.value, &p.m, &p.v)
                .map_err(SnapshotError::Malformed)?;
        }
        store.step = self.store_step;
        store.zero_grad();
        Ok(())
    }

    /// Serialise to the on-disk byte format (header + CRC + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload_guess: usize = self
            .params
            .iter()
            .map(|r| 4 * (r.value.len() + r.m.len() + r.v.len()) + r.name.len() + 32)
            .sum::<usize>()
            + self.model_state.len()
            + 20 * self.history.len()
            + 128;
        let mut p = Vec::with_capacity(payload_guess);
        put_u64(&mut p, self.fingerprint);
        put_u64(&mut p, self.epoch_next as u64);
        put_u32(&mut p, self.lr_scale.to_bits());
        put_u32(&mut p, self.divergences);
        put_bytes(&mut p, &self.model_state);
        put_u64(&mut p, self.history.len() as u64);
        for h in &self.history {
            put_u64(&mut p, h.epoch as u64);
            put_u32(&mut p, h.loss.to_bits());
            put_u64(&mut p, h.elapsed_s.to_bits());
        }
        put_u64(&mut p, self.store_step);
        put_u64(&mut p, self.params.len() as u64);
        for r in &self.params {
            put_bytes(&mut p, r.name.as_bytes());
            put_f32s(&mut p, &r.value);
            put_f32s(&mut p, &r.m);
            put_f32s(&mut p, &r.v);
        }
        // Trailing v2 field: written only when present, so store-less
        // snapshots stay byte-for-byte version 1 and older readers accept
        // them.
        let version = if let Some(blob) = &self.embed_store {
            put_bytes(&mut p, blob);
            VERSION_EMBED
        } else {
            VERSION
        };

        let mut out = Vec::with_capacity(HEADER_LEN + p.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&crc32(&p).to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Parse and CRC-verify the on-disk byte format.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION && version != VERSION_EMBED {
            return Err(SnapshotError::BadVersion(version));
        }
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        if bytes.len() < HEADER_LEN + len {
            return Err(SnapshotError::Truncated {
                expected: HEADER_LEN + len,
                got: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
        let actual = crc32(payload);
        if actual != crc {
            return Err(SnapshotError::CrcMismatch {
                expected: crc,
                actual,
            });
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let fingerprint = r.u64()?;
        let epoch_next = r.u64()? as usize;
        let lr_scale = f32::from_bits(r.u32()?);
        let divergences = r.u32()?;
        let model_state = r.bytes()?;
        let n_hist = r.len_prefix(20)?;
        let mut history = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            history.push(EpochStats {
                epoch: r.u64()? as usize,
                loss: f32::from_bits(r.u32()?),
                elapsed_s: f64::from_bits(r.u64()?),
            });
        }
        let store_step = r.u64()?;
        let n_params = r.len_prefix(8)?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(ParamRecord {
                name: r.string()?,
                value: r.f32s()?,
                m: r.f32s()?,
                v: r.f32s()?,
            });
        }
        let embed_store = if version >= VERSION_EMBED {
            Some(r.bytes()?)
        } else {
            None
        };
        Ok(Snapshot {
            fingerprint,
            epoch_next,
            lr_scale,
            divergences,
            model_state,
            history,
            store_step,
            params,
            embed_store,
        })
    }
}

/// Path of the most recent checkpoint in `dir`.
pub fn latest_path(dir: &Path) -> PathBuf {
    dir.join("latest.ckpt")
}

/// Path of the previous (rotated) checkpoint in `dir`.
pub fn prev_path(dir: &Path) -> PathBuf {
    dir.join("prev.ckpt")
}

/// Atomically persist `snap` as `dir/latest.ckpt`, rotating the prior
/// `latest` to `prev.ckpt`. Returns the path written. The rename-based
/// protocol guarantees a reader never observes a partially written `latest`;
/// a crash between the two renames leaves `prev` intact for fallback.
pub fn write_atomic(dir: &Path, snap: &Snapshot) -> Result<PathBuf, SnapshotError> {
    fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(dir.to_path_buf(), e))?;
    let tmp = dir.join(format!("tmp-{}.ckpt", std::process::id()));
    let bytes = snap.encode();
    {
        let mut f = fs::File::create(&tmp).map_err(|e| SnapshotError::Io(tmp.clone(), e))?;
        f.write_all(&bytes)
            .map_err(|e| SnapshotError::Io(tmp.clone(), e))?;
        // No fsync: a blocking sync_all costs ~10 ms per megabyte-class
        // snapshot, an order of magnitude more than encode+CRC+write, and
        // correctness does not need it — a crash that tears the renamed
        // `latest` is caught by the CRC on resume, which falls back to
        // `prev`. Durability-vs-overhead is thus traded for the same
        // recovery path the torn-write fault test exercises.
    }
    let latest = latest_path(dir);
    let prev = prev_path(dir);
    // Rotate via unlink + rename-to-fresh-name only: ext4's auto_da_alloc
    // heuristic turns a rename *over an existing file* into a synchronous
    // writeback of the new file's data (~10-20 ms per MB-class snapshot);
    // renaming onto names that don't exist skips that stall. Every crash
    // window still leaves either an intact `latest` or an intact `prev` for
    // `resume_or_init` to fall back to.
    if prev.exists() {
        fs::remove_file(&prev).map_err(|e| SnapshotError::Io(prev.clone(), e))?;
    }
    if latest.exists() {
        fs::rename(&latest, &prev).map_err(|e| SnapshotError::Io(latest.clone(), e))?;
    }
    fs::rename(&tmp, &latest).map_err(|e| SnapshotError::Io(latest.clone(), e))?;
    Ok(latest)
}

/// Load and verify the snapshot at `path`, checking its fingerprint.
pub fn read_verified(path: &Path, fingerprint: u64) -> Result<Snapshot, SnapshotError> {
    let bytes = fs::read(path).map_err(|e| SnapshotError::Io(path.to_path_buf(), e))?;
    let snap = Snapshot::decode(&bytes)?;
    if snap.fingerprint != fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            expected: fingerprint,
            got: snap.fingerprint,
        });
    }
    Ok(snap)
}

/// Result of probing a checkpoint directory for a resumable state.
pub struct ResumeReport {
    /// The best usable snapshot, with the file it came from.
    pub snapshot: Option<(Snapshot, PathBuf)>,
    /// Files that existed but were rejected (corrupt, truncated, foreign run).
    pub rejected: Vec<(PathBuf, SnapshotError)>,
}

/// Probe `dir` for a resumable snapshot: prefer `latest.ckpt`, fall back to
/// `prev.ckpt` when `latest` is missing, truncated, corrupt, or belongs to a
/// different run. Never hard-fails — an unreadable directory just means a
/// fresh start, with the rejects reported for logging.
pub fn resume_or_init(dir: &Path, fingerprint: u64) -> ResumeReport {
    let mut rejected = Vec::new();
    for path in [latest_path(dir), prev_path(dir)] {
        if !path.exists() {
            continue;
        }
        match read_verified(&path, fingerprint) {
            Ok(snap) => {
                return ResumeReport {
                    snapshot: Some((snap, path)),
                    rejected,
                }
            }
            Err(e) => rejected.push((path, e)),
        }
    }
    ResumeReport {
        snapshot: None,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_snapshot() -> Snapshot {
        Snapshot {
            fingerprint: 0xFEED_CAFE,
            epoch_next: 3,
            lr_scale: 0.5,
            divergences: 1,
            model_state: vec![1, 2, 3, 4],
            history: vec![
                EpochStats {
                    epoch: 0,
                    loss: 0.7,
                    elapsed_s: 1.25,
                },
                EpochStats {
                    epoch: 1,
                    loss: std::f32::consts::PI,
                    elapsed_s: 2.5,
                },
            ],
            store_step: 42,
            params: vec![
                ParamRecord {
                    name: "ent".into(),
                    value: vec![1.0, -2.5, f32::MIN_POSITIVE],
                    m: vec![0.1, 0.2, 0.3],
                    v: vec![0.01, 0.02, 0.03],
                },
                ParamRecord {
                    name: "rel.w".into(),
                    value: vec![0.0; 4],
                    m: vec![0.0; 4],
                    v: vec![0.0; 4],
                },
            ],
            embed_store: None,
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let s = toy_snapshot();
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn embed_store_blob_bumps_version_and_round_trips() {
        let v1 = toy_snapshot().encode();
        assert_eq!(v1[8], 1, "store-less snapshots stay version 1");
        let s = toy_snapshot().with_embed_store(Some(vec![9, 8, 7, 6, 5]));
        let bytes = s.encode();
        assert_eq!(bytes[8], 2, "embed store bumps the format version");
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.embed_store.as_deref(), Some(&[9, 8, 7, 6, 5][..]));
        // a v1 file keeps decoding, with no store attached
        assert_eq!(Snapshot::decode(&v1).unwrap().embed_store, None);
    }

    #[test]
    fn crc_detects_a_single_flipped_bit() {
        let s = toy_snapshot();
        let mut bytes = s.encode();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        match Snapshot::decode(&bytes) {
            Err(SnapshotError::CrcMismatch { .. }) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected_before_crc() {
        let s = toy_snapshot();
        let bytes = s.encode();
        let cut = &bytes[..bytes.len() / 2];
        match Snapshot::decode(cut) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let s = toy_snapshot();
        let mut bytes = s.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = s.encode();
        bytes[8] = 9;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadVersion(9))
        ));
    }

    #[test]
    fn write_rotates_and_resume_prefers_latest() {
        let dir = std::env::temp_dir().join(format!("came-snap-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = toy_snapshot();
        s.epoch_next = 1;
        write_atomic(&dir, &s).unwrap();
        s.epoch_next = 2;
        write_atomic(&dir, &s).unwrap();
        assert!(latest_path(&dir).exists() && prev_path(&dir).exists());
        let rep = resume_or_init(&dir, s.fingerprint);
        let (snap, path) = rep.snapshot.unwrap();
        assert_eq!(snap.epoch_next, 2);
        assert_eq!(path, latest_path(&dir));

        // truncate latest: CRC/length check rejects it, prev (epoch 1) wins
        let bytes = fs::read(latest_path(&dir)).unwrap();
        fs::write(latest_path(&dir), &bytes[..bytes.len() / 3]).unwrap();
        let rep = resume_or_init(&dir, s.fingerprint);
        let (snap, path) = rep.snapshot.unwrap();
        assert_eq!(snap.epoch_next, 1);
        assert_eq!(path, prev_path(&dir));
        assert_eq!(rep.rejected.len(), 1);

        // a foreign fingerprint is rejected everywhere
        let rep = resume_or_init(&dir, 0xDEAD);
        assert!(rep.snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
