//! End-to-end observability check: a short checkpointed training run with
//! the JSONL sink attached must produce parseable records of every class —
//! `TrainEvent` (including `EpochEnd` and `CheckpointSaved`), `span`,
//! `phase`, `kernel`, and `pool` — with monotone timestamps.

use std::collections::BTreeSet;
use std::path::PathBuf;

use came_kg::triple::Triple;
use came_kg::{
    train_one_to_n_rt, CheckpointConfig, EntityKind, FaultPlan, KgDataset, OneToNModel,
    RuntimeConfig, TrainConfig, Vocab,
};
use came_obs::json;
use came_tensor::{EmbeddingTable, Graph, ParamStore, Prng, Var};

struct ToyDistMult {
    ent: EmbeddingTable,
    rel: EmbeddingTable,
}

impl OneToNModel for ToyDistMult {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let h = self.ent.lookup(g, store, heads);
        let r = self.rel.lookup(g, store, rels);
        let hr = g.mul(h, r);
        let e_t = g.transpose(self.ent.full(g, store), 0, 1);
        g.matmul(hr, e_t)
    }
}

fn toy_dataset() -> KgDataset {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add_entity(format!("e{i}"), EntityKind::Other);
    }
    vocab.add_relation("r0");
    let triples: Vec<Triple> = (0..10u32)
        .map(|i| Triple::new(i, 0, (i + 1) % 12))
        .collect();
    KgDataset::split(vocab, triples, (1.0, 0.0, 0.0), &mut Prng::new(3))
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("came-obs-{tag}-{}", std::process::id()))
}

#[test]
fn training_run_emits_all_record_classes() {
    let log_path = scratch("log");
    let ckpt_dir = scratch("ckpt");
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    came_obs::set_enabled(true);
    came_obs::set_stderr_mirror(false);
    came_obs::set_log_path(Some(&log_path)).unwrap();

    let d = toy_dataset();
    let mut rng = Prng::new(0);
    let mut store = ParamStore::new();
    let model = ToyDistMult {
        ent: EmbeddingTable::new(&mut store, "ent", d.num_entities(), 16, &mut rng),
        rel: EmbeddingTable::new(&mut store, "rel", d.num_relations_aug(), 16, &mut rng),
    };
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 5e-3,
        ..Default::default()
    };
    let rt = RuntimeConfig {
        checkpoint: Some(CheckpointConfig::new(ckpt_dir.clone())),
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    assert_eq!(run.history.len(), 2);

    came_obs::set_log_path(None).unwrap();
    came_obs::set_enabled(false);

    let text = std::fs::read_to_string(&log_path).unwrap();
    let mut types = BTreeSet::new();
    let mut events = BTreeSet::new();
    let mut phase_names = BTreeSet::new();
    let mut last_ts = 0.0f64;
    let mut lines = 0;
    for line in text.lines() {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("sink line is not valid JSON ({e}): {line}"));
        let ty = v.get("type").unwrap().as_str().unwrap().to_string();
        let ts = v.get("ts_ns").unwrap().as_f64().unwrap();
        assert!(ts >= last_ts, "timestamps must be monotone within the log");
        last_ts = ts;
        if ty == "TrainEvent" {
            events.insert(v.get("event").unwrap().as_str().unwrap().to_string());
        }
        if ty == "phase" {
            phase_names.insert(v.get("name").unwrap().as_str().unwrap().to_string());
        }
        types.insert(ty);
        lines += 1;
    }
    assert!(lines > 0, "log must not be empty");
    for want in ["TrainEvent", "span", "phase", "kernel", "pool"] {
        assert!(
            types.contains(want),
            "missing record class {want} in {types:?}"
        );
    }
    for want in ["EpochEnd", "CheckpointSaved"] {
        assert!(
            events.contains(want),
            "missing TrainEvent {want} in {events:?}"
        );
    }
    for want in ["phase.backward", "phase.optimizer"] {
        assert!(
            phase_names.contains(want),
            "missing phase metric {want} in {phase_names:?}"
        );
    }

    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
