//! End-to-end guarantees of the sharded serving tier: shard plans partition
//! the candidate axis exactly, the scatter-gather top-k merge is
//! bit-identical to the single-engine full-sort prefix (tie runs straddling
//! shard boundaries included), sharded evaluation reproduces single-engine
//! metrics bit for bit, admission control rejects bad requests and overload
//! with typed errors, and the router's events land in the JSONL sink.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::Duration;

use came_kg::triple::Triple;
use came_kg::{
    EntityId, EntityKind, EvalConfig, KgDataset, KgeModel, RelationId, ScoringEngine, ServeConfig,
    ServeError, ServeTier, ShardPlan, ShardedEngine, Split, TierConfig, TopKRequest, TopKResponse,
    Vocab,
};
use came_obs::json;
use came_tensor::{ParamStore, Prng};

/// Deterministic pseudo-scorer with only seven distinct score values, so
/// exact tie runs are everywhere — including straddling shard boundaries.
fn hash_score(h: u32, r: u32, t: usize) -> f32 {
    let x = (h as u64)
        .wrapping_mul(0x9E37)
        .wrapping_add((r as u64) << 7)
        .wrapping_add(t as u64)
        .wrapping_mul(0x85EB_CA6B);
    (x % 7) as f32
}

/// 1-N-style model: no native range scoring (the tier scores full rows once
/// and shards only the selection work).
struct HashModel {
    n: usize,
}

impl KgeModel for HashModel {
    fn name(&self) -> &str {
        "hash-1n"
    }
    fn num_entities(&self) -> usize {
        self.n
    }
    fn score_into(&self, _store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        assert_eq!(out.len(), queries.len() * self.n);
        for (q, row) in queries.iter().zip(out.chunks_mut(self.n)) {
            for (t, slot) in row.iter_mut().enumerate() {
                *slot = hash_score(q.0 .0, q.1 .0, t);
            }
        }
    }
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// Per-triple-style model: scores candidate ranges natively (each shard
/// computes its own stripe), same scores as [`HashModel`].
struct RangedHashModel {
    n: usize,
    range_calls: AtomicUsize,
}

impl RangedHashModel {
    fn new(n: usize) -> Self {
        RangedHashModel {
            n,
            range_calls: AtomicUsize::new(0),
        }
    }
}

impl KgeModel for RangedHashModel {
    fn name(&self) -> &str {
        "hash-ranged"
    }
    fn num_entities(&self) -> usize {
        self.n
    }
    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        self.score_range_into(store, queries, 0, self.n, out);
    }
    fn supports_range_scoring(&self) -> bool {
        true
    }
    fn score_range_into(
        &self,
        _store: &ParamStore,
        queries: &[(EntityId, RelationId)],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        self.range_calls.fetch_add(1, Relaxed);
        let w = hi - lo;
        assert_eq!(out.len(), queries.len() * w);
        for (q, row) in queries.iter().zip(out.chunks_mut(w)) {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = hash_score(q.0 .0, q.1 .0, lo + c);
            }
        }
    }
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// Every candidate scores identically: the whole axis is one tie run, so
/// every shard boundary splits a tie.
struct ConstModel {
    n: usize,
}

impl KgeModel for ConstModel {
    fn name(&self) -> &str {
        "const"
    }
    fn num_entities(&self) -> usize {
        self.n
    }
    fn score_into(&self, _store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        assert_eq!(out.len(), queries.len() * self.n);
        out.fill(1.5);
    }
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// A deliberately slow scorer, to hold the router busy long enough for the
/// bounded queue to fill and reject.
struct SlowModel {
    inner: HashModel,
    delay: Duration,
}

impl KgeModel for SlowModel {
    fn name(&self) -> &str {
        "slow"
    }
    fn num_entities(&self) -> usize {
        self.inner.n
    }
    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        std::thread::sleep(self.delay);
        self.inner.score_into(store, queries, out);
    }
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

fn toy_dataset(entities: usize, triples: u32) -> KgDataset {
    let mut vocab = Vocab::new();
    for i in 0..entities {
        vocab.add_entity(format!("e{i}"), EntityKind::Other);
    }
    vocab.add_relation("r0");
    vocab.add_relation("r1");
    let triples: Vec<Triple> = (0..triples)
        .map(|i| Triple::new(i % entities as u32, i % 2, (i * 3 + 1) % entities as u32))
        .collect();
    KgDataset::split(vocab, triples, (0.6, 0.2, 0.2), &mut Prng::new(3))
}

fn reqs_for(n: u32, count: u32, k: usize) -> Vec<TopKRequest> {
    (0..count)
        .map(|i| TopKRequest::with_k(EntityId(i.wrapping_mul(7) % n), RelationId(i % 4), k))
        .collect()
}

fn ids(resp: &TopKResponse) -> Vec<u32> {
    resp.hits.iter().map(|s| s.entity.0).collect()
}

#[test]
fn shard_plan_is_balanced_contiguous_and_exact() {
    for (n, shards) in [(97usize, 7usize), (10, 3), (5, 5), (3, 8), (1, 4)] {
        let plan = ShardPlan::new(n, shards).unwrap();
        assert!(plan.num_shards() <= shards);
        assert_eq!(plan.num_entities(), n);
        let mut covered = 0usize;
        let mut sizes = Vec::new();
        for &(lo, hi) in plan.ranges() {
            assert_eq!(lo, covered, "ranges must be contiguous in id order");
            assert!(hi > lo, "ranges must be non-empty");
            sizes.push(hi - lo);
            covered = hi;
        }
        assert_eq!(covered, n, "ranges must cover the whole axis");
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "balanced: sizes differ by at most one");
    }
    assert_eq!(
        ShardPlan::new(10, 0).err(),
        Some(ServeError::InvalidShardCount)
    );
}

#[test]
fn sharded_top_k_is_bit_identical_to_single_engine_for_both_disciplines() {
    let n = 53usize;
    let store = ParamStore::new();
    let one_n = HashModel { n };
    let ranged = RangedHashModel::new(n);
    let models: [&(dyn KgeModel + Sync); 2] = [&one_n, &ranged];
    for model in models {
        let single = ScoringEngine::with_config(model, &store, ServeConfig::default()).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let sharded =
                ShardedEngine::with_config(model, &store, shards, ServeConfig::default()).unwrap();
            for k in [1usize, 3, 10, n, n + 40] {
                let reqs = reqs_for(n as u32, 9, k);
                let want = single.top_k_batch(&reqs, None).unwrap();
                let got = sharded.top_k_batch(&reqs, None).unwrap();
                assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(
                        w.hits,
                        g.hits,
                        "{} shards={shards} k={k} h={} r={}",
                        model.name(),
                        w.head.0,
                        w.relation.0
                    );
                }
            }
        }
    }
    assert!(
        ranged.range_calls.load(Relaxed) > 0,
        "ranged model must have scored stripes natively"
    );
}

#[test]
fn tie_runs_straddling_shard_boundaries_merge_in_id_order() {
    // All scores equal: the global top-k under (score desc, id asc) is ids
    // 0..k, and with 5 shards over 23 entities every boundary splits the
    // one big tie run.
    let model = ConstModel { n: 23 };
    let store = ParamStore::new();
    let sharded = ShardedEngine::with_config(&model, &store, 5, ServeConfig::default()).unwrap();
    for k in [1usize, 4, 5, 6, 11, 23] {
        let resp = sharded
            .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), k), None)
            .unwrap();
        let want: Vec<u32> = (0..k as u32).collect();
        assert_eq!(ids(&resp), want, "k={k}");
    }
}

#[test]
fn sharded_evaluate_is_bit_equal_to_single_engine() {
    let d = toy_dataset(41, 120);
    let filter = d.filter_index();
    let store = ParamStore::new();
    let cfg = EvalConfig {
        batch_size: 16,
        ..Default::default()
    };
    let one_n = HashModel {
        n: d.num_entities(),
    };
    let ranged = RangedHashModel::new(d.num_entities());
    let models: [&(dyn KgeModel + Sync); 2] = [&one_n, &ranged];
    for model in models {
        let single = ScoringEngine::with_config(model, &store, ServeConfig::default()).unwrap();
        let want = single.evaluate(&d, Split::Test, &filter, &cfg);
        for shards in [2usize, 5] {
            let sharded =
                ShardedEngine::with_config(model, &store, shards, ServeConfig::default()).unwrap();
            let got = sharded.evaluate(&d, Split::Test, &filter, &cfg);
            assert_eq!(want.count(), got.count(), "{}", model.name());
            assert_eq!(want.mrr(), got.mrr(), "{} MRR", model.name());
            assert_eq!(want.mr(), got.mr(), "{} MR", model.name());
            for k in [1, 3, 10] {
                assert_eq!(want.hits(k), got.hits(k), "{} Hits@{k}", model.name());
            }
        }
    }
}

#[test]
fn sharded_engine_validates_and_clamps_like_the_engine() {
    let model = HashModel { n: 20 };
    let store = ParamStore::new();
    let cfg = ServeConfig::default().with_relation_bound(4);
    let sharded = ShardedEngine::with_config(&model, &store, 3, cfg).unwrap();

    // k > N clamps to N.
    let resp = sharded
        .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), 500), None)
        .unwrap();
    assert_eq!(resp.hits.len(), 20);

    assert_eq!(
        sharded
            .top_k(TopKRequest::new(EntityId(20), RelationId(0)), None)
            .err(),
        Some(ServeError::EntityOutOfRange {
            entity: EntityId(20),
            num_entities: 20,
        })
    );
    assert_eq!(
        sharded
            .top_k(TopKRequest::new(EntityId(0), RelationId(9)), None)
            .err(),
        Some(ServeError::RelationOutOfRange {
            relation: RelationId(9),
            num_relations: 4,
        })
    );
    assert_eq!(
        sharded
            .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), 0), None)
            .err(),
        Some(ServeError::ZeroK)
    );
}

#[test]
fn tier_answers_match_the_single_engine_under_concurrent_clients() {
    let n = 37usize;
    let store = ParamStore::new();
    let model = RangedHashModel::new(n);
    let d = toy_dataset(n, 90);
    let filter = d.filter_index();
    let single = ScoringEngine::with_config(&model, &store, ServeConfig::default()).unwrap();

    // Precompute the single-engine answers: `ScoringEngine` borrows a plain
    // `&dyn KgeModel`, so the comparison happens against owned responses
    // inside the client threads.
    let req_at = |client: u32, i: u32| {
        TopKRequest::with_k(EntityId((client * 8 + i) % n as u32), RelationId(i % 4), 10)
    };
    let want: Vec<Vec<TopKResponse>> = (0..4u32)
        .map(|client| {
            (0..8u32)
                .map(|i| single.top_k(req_at(client, i), Some(&filter)).unwrap())
                .collect()
        })
        .collect();

    let cfg = TierConfig {
        shards: 3,
        flush_us: 100,
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, Some(&filter), cfg, |handle| {
        std::thread::scope(|s| {
            for client in 0..4u32 {
                let handle = handle.clone();
                let want = &want;
                s.spawn(move || {
                    for i in 0..8u32 {
                        let got = handle.top_k(req_at(client, i)).unwrap();
                        let expect = &want[client as usize][i as usize];
                        assert_eq!(got.hits, expect.hits, "client={client} i={i}");
                    }
                });
            }
        });
        // The score-row audit surface is bit-equal to a direct forward.
        let q = (EntityId(5), RelationId(1));
        let row = handle.scores(q).unwrap();
        let mut want = vec![0.0f32; n];
        single.score_into(&[q], &mut want);
        assert_eq!(row, want);
    })
    .unwrap();
}

#[test]
fn tier_rejects_overload_with_typed_backpressure() {
    let model = SlowModel {
        inner: HashModel { n: 64 },
        delay: Duration::from_millis(40),
    };
    let store = ParamStore::new();
    let cfg = TierConfig {
        shards: 2,
        queue: 1,
        flush_us: 1,
        ..TierConfig::default()
    };
    let overloaded = ServeTier::run(&model, &store, None, cfg, |handle| {
        let mut pending = Vec::new();
        let mut rejections = 0usize;
        for i in 0..64u32 {
            let req = TopKRequest::with_k(EntityId(i % 64), RelationId(0), 5);
            match handle.submit(req) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejections += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Accepted requests still complete correctly after the burst.
        for p in pending {
            let resp = p.wait().unwrap();
            assert_eq!(resp.hits.len(), 5);
        }
        rejections
    })
    .unwrap();
    assert!(
        overloaded > 0,
        "a 64-request burst into a capacity-1 queue must shed load"
    );
}

#[test]
fn tier_validates_at_admission_and_fails_escaped_handles() {
    let model = HashModel { n: 16 };
    let store = ParamStore::new();
    let cfg = TierConfig {
        serve: ServeConfig::default().with_relation_bound(4),
        ..TierConfig::default()
    };
    let escaped = ServeTier::run(&model, &store, None, cfg, |handle| {
        assert_eq!(
            handle
                .top_k(TopKRequest::new(EntityId(99), RelationId(0)))
                .err(),
            Some(ServeError::EntityOutOfRange {
                entity: EntityId(99),
                num_entities: 16,
            })
        );
        assert_eq!(
            handle
                .top_k(TopKRequest::new(EntityId(0), RelationId(7)))
                .err(),
            Some(ServeError::RelationOutOfRange {
                relation: RelationId(7),
                num_relations: 4,
            })
        );
        assert_eq!(
            handle
                .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), 0))
                .err(),
            Some(ServeError::ZeroK)
        );
        // k > N clamps through the tier too.
        let resp = handle
            .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), 1000))
            .unwrap();
        assert_eq!(resp.hits.len(), 16);
        handle.clone()
    })
    .unwrap();
    // The tier is torn down when the closure returns; an escaped handle
    // degrades to typed shutdown errors instead of hanging.
    assert_eq!(
        escaped
            .top_k(TopKRequest::new(EntityId(0), RelationId(0)))
            .err(),
        Some(ServeError::ShutDown)
    );
}

/// [`HashModel`] scores with a degraded-head predicate: odd entities are
/// served through a (simulated) fallback path.
struct DegradedHashModel {
    inner: HashModel,
}

impl KgeModel for DegradedHashModel {
    fn name(&self) -> &str {
        "hash-degraded"
    }
    fn num_entities(&self) -> usize {
        self.inner.n
    }
    fn score_into(&self, store: &ParamStore, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        self.inner.score_into(store, queries, out);
    }
    fn degraded(&self, entity: u32) -> bool {
        entity % 2 == 1
    }
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore_state(&self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

#[test]
fn stale_queued_requests_are_shed_with_a_typed_deadline_error() {
    let model = HashModel { n: 32 };
    let store = ParamStore::new();
    // The flush window alone (50 ms) ages a lone queued request far past
    // its 1 ms deadline, so shedding is deterministic.
    let cfg = TierConfig {
        flush_us: 50_000,
        deadline_us: Some(1_000),
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, None, cfg, |handle| {
        assert_eq!(
            handle
                .top_k(TopKRequest::with_k(EntityId(3), RelationId(0), 5))
                .err(),
            Some(ServeError::DeadlineExceeded { deadline_us: 1_000 })
        );
        assert_eq!(
            handle.scores((EntityId(3), RelationId(0))).err(),
            Some(ServeError::DeadlineExceeded { deadline_us: 1_000 })
        );
    })
    .unwrap();

    // A generous deadline leaves the same request untouched.
    let cfg = TierConfig {
        flush_us: 100,
        deadline_us: Some(10_000_000),
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, None, cfg, |handle| {
        let resp = handle
            .top_k(TopKRequest::with_k(EntityId(3), RelationId(0), 5))
            .unwrap();
        assert_eq!(resp.hits.len(), 5);
        assert!(!resp.degraded && !resp.partial);
    })
    .unwrap();
}

#[test]
fn injected_shard_panic_yields_partial_responses_and_the_tier_recovers() {
    let n = 24usize;
    let store = ParamStore::new();
    let one_n = HashModel { n };
    let ranged = RangedHashModel::new(n);
    let models: [&(dyn KgeModel + Sync); 2] = [&one_n, &ranged];
    for model in models {
        let cfg = TierConfig {
            shards: 2,
            flush_us: 100,
            panic_at_batch: Some(1),
            ..TierConfig::default()
        };
        ServeTier::run(model, &store, None, cfg, |handle| {
            // Batch 1: shard 0 (entities 0..12) panics. The response is
            // merged from shard 1 only and tagged partial.
            let resp = handle
                .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), n))
                .unwrap();
            assert!(resp.partial, "{}: batch 1 must be partial", model.name());
            assert_eq!(resp.hits.len(), n / 2, "{}", model.name());
            assert!(
                resp.hits.iter().all(|s| s.entity.0 >= (n / 2) as u32),
                "{}: hits must come from the surviving shard only",
                model.name()
            );

            // Batch 2: the worker caught the panic and kept draining its
            // queue — full coverage is back, bit-identical to a single
            // engine.
            let resp = handle
                .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), n))
                .unwrap();
            assert!(!resp.partial, "{}: batch 2 must be full", model.name());
            assert_eq!(resp.hits.len(), n, "{}", model.name());
            let single = ScoringEngine::with_config(model, &store, ServeConfig::default()).unwrap();
            let want = single
                .top_k(TopKRequest::with_k(EntityId(0), RelationId(0), n), None)
                .unwrap();
            assert_eq!(resp.hits, want.hits, "{}", model.name());
        })
        .unwrap();
    }
}

#[test]
fn degraded_heads_are_tagged_through_engine_shards_and_tier() {
    let n = 16usize;
    let model = DegradedHashModel {
        inner: HashModel { n },
    };
    let store = ParamStore::new();
    let reqs = [
        TopKRequest::with_k(EntityId(2), RelationId(0), 4),
        TopKRequest::with_k(EntityId(5), RelationId(0), 4),
    ];

    let single = ScoringEngine::with_config(&model, &store, ServeConfig::default()).unwrap();
    let resp = single.top_k_batch(&reqs, None).unwrap();
    assert!(!resp[0].degraded && resp[1].degraded);

    let sharded = ShardedEngine::with_config(&model, &store, 3, ServeConfig::default()).unwrap();
    let resp = sharded.top_k_batch(&reqs, None).unwrap();
    assert!(!resp[0].degraded && resp[1].degraded);

    let cfg = TierConfig {
        shards: 2,
        flush_us: 100,
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, None, cfg, |handle| {
        assert!(!handle.top_k(reqs[0]).unwrap().degraded);
        assert!(handle.top_k(reqs[1]).unwrap().degraded);
    })
    .unwrap();
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("came-serve-{tag}-{}", std::process::id()))
}

/// Serialises tests that flip the process-global observability state
/// (`came_obs::set_enabled`, the sink, the exemplar reservoir) — the test
/// binary runs tests concurrently by default.
fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn tier_metrics_land_in_the_jsonl_sink() {
    let _guard = obs_guard();
    let log_path = scratch("log");
    let _ = std::fs::remove_file(&log_path);
    came_obs::set_enabled(true);
    came_obs::set_stderr_mirror(false);
    came_obs::set_log_path(Some(&log_path)).unwrap();

    let model = SlowModel {
        inner: HashModel { n: 32 },
        delay: Duration::from_millis(20),
    };
    let store = ParamStore::new();
    let cfg = TierConfig {
        shards: 2,
        queue: 1,
        flush_us: 1,
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, None, cfg, |handle| {
        let mut pending = Vec::new();
        let mut rejected = false;
        for i in 0..64u32 {
            match handle.submit(TopKRequest::with_k(EntityId(i % 32), RelationId(0), 3)) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { .. }) => rejected = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected, "burst must trip the rejected counter");
        for p in pending {
            p.wait().unwrap();
        }
    })
    .unwrap();

    came_obs::emit_metrics_records();
    came_obs::set_log_path(None).unwrap();
    came_obs::set_enabled(false);

    let text = std::fs::read_to_string(&log_path).unwrap();
    let mut serve_names = BTreeSet::new();
    for line in text.lines() {
        let v = json::parse(line)
            .unwrap_or_else(|e| panic!("sink line is not valid JSON ({e}): {line}"));
        if v.get("type").and_then(|t| t.as_str()) == Some("serve") {
            serve_names.insert(v.get("name").unwrap().as_str().unwrap().to_string());
        }
    }
    for want in [
        "serve.router.batch_size",
        "serve.router.queue_depth",
        "serve.router.rejected",
        "serve.shard0.queue",
        "serve.shard1.queue",
        "serve.batch_ns",
        "serve.queries",
    ] {
        assert!(
            serve_names.contains(want),
            "missing serve metric {want} in {serve_names:?}"
        );
    }

    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn every_traced_response_carries_a_complete_timeline_under_concurrent_clients() {
    let _guard = obs_guard();

    // Tracing off: responses carry no trace at all.
    let n = 41usize;
    let store = ParamStore::new();
    let model = HashModel { n };
    came_obs::set_enabled(false);
    let cfg = TierConfig {
        shards: 3,
        flush_us: 100,
        ..TierConfig::default()
    };
    ServeTier::run(&model, &store, None, cfg.clone(), |handle| {
        let resp = handle
            .top_k(TopKRequest::with_k(EntityId(1), RelationId(0), 5))
            .unwrap();
        assert!(
            resp.trace.is_none(),
            "tracing disabled must not attach timelines"
        );
    })
    .unwrap();

    // Tracing on: every response's stage timeline is complete and monotone,
    // trace IDs are unique, and the reservoir holds exactly the K slowest.
    const K: usize = 4;
    came_obs::set_enabled(true);
    came_obs::exemplars().set_capacity(K);
    let e2e_hist_before = came_obs::registry().histogram("serve.req.e2e_ns").count();

    let clients = 4u32;
    let per_client = 8u32;
    let traces: std::sync::Mutex<Vec<came_kg::RequestTrace>> = std::sync::Mutex::new(Vec::new());
    ServeTier::run(&model, &store, None, cfg, |handle| {
        std::thread::scope(|s| {
            for client in 0..clients {
                let handle = handle.clone();
                let traces = &traces;
                s.spawn(move || {
                    for i in 0..per_client {
                        let req = TopKRequest::with_k(
                            EntityId((client * 9 + i) % n as u32),
                            RelationId(i % 4),
                            6,
                        );
                        let resp = handle.top_k(req).unwrap();
                        assert_eq!(resp.hits.len(), 6);
                        let t = resp.trace.expect("tracing enabled must attach a timeline");
                        traces.lock().unwrap().push(t);
                    }
                });
            }
        });
    })
    .unwrap();
    came_obs::set_enabled(false);

    let traces = traces.into_inner().unwrap();
    assert_eq!(traces.len(), (clients * per_client) as usize);
    let mut ids_seen = BTreeSet::new();
    for t in &traces {
        assert!(
            t.is_complete(),
            "timeline must be complete and monotone: {t:?}"
        );
        assert_eq!(
            t.queue_ns() + t.coalesce_ns() + t.score_ns() + t.merge_ns() + t.reply_ns(),
            t.e2e_ns(),
            "stages must partition the end-to-end latency exactly"
        );
        assert_eq!(t.shard_ns.len(), 3, "one scoring duration per shard");
        assert!(
            t.shard_ns.iter().any(|&ns| ns > 0),
            "at least one shard must report scoring time"
        );
        assert!(t.batch_size >= 1 && t.batch_size <= (clients * per_client) as usize);
        assert!(!t.degraded && !t.partial);
        assert!(ids_seen.insert(t.trace_id), "trace IDs must be unique");
        let parsed = json::parse(&t.to_json()).expect("trace JSON must parse");
        assert_eq!(
            parsed.get("trace_id").unwrap().as_f64(),
            Some(t.trace_id as f64)
        );
    }

    // The per-request histograms saw every completion.
    let e2e_hist_after = came_obs::registry().histogram("serve.req.e2e_ns").count();
    assert_eq!(e2e_hist_after - e2e_hist_before, traces.len() as u64);

    // The reservoir kept exactly the K slowest end-to-end latencies.
    let mut e2e: Vec<u64> = traces.iter().map(|t| t.e2e_ns()).collect();
    e2e.sort_unstable_by(|a, b| b.cmp(a));
    let want: Vec<u64> = e2e[..K].to_vec();
    let kept: Vec<u64> = came_obs::exemplars()
        .snapshot()
        .iter()
        .map(|e| e.latency_ns)
        .collect();
    assert_eq!(
        kept, want,
        "reservoir must hold exactly the {K} slowest traces"
    );
    // Restore the default capacity (and drop this test's entries).
    came_obs::exemplars().set_capacity(8);
}
