//! Property-based tests for knowledge-graph invariants.

use came_kg::{
    filtered_rank, EntityId, EntityKind, FilterIndex, KgDataset, RankMetrics, RelationId, Triple,
    Vocab,
};
use came_tensor::Prng;
use proptest::prelude::*;

fn arb_scores(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, n)
}

proptest! {
    #[test]
    fn rank_is_within_bounds(scores in arb_scores(20), target in 0u32..20) {
        let empty = FilterIndex::default();
        let r = filtered_rank(&scores, EntityId(target), None, EntityId(0), RelationId(0), &empty);
        prop_assert!(r >= 1.0);
        prop_assert!(r <= scores.len() as f64);
    }

    #[test]
    fn best_score_has_rank_one(mut scores in arb_scores(15), target in 0u32..15) {
        // force the target strictly best
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        scores[target as usize] = max + 1.0;
        let empty = FilterIndex::default();
        let r = filtered_rank(&scores, EntityId(target), None, EntityId(0), RelationId(0), &empty);
        prop_assert_eq!(r, 1.0);
    }

    #[test]
    fn filtering_never_hurts_rank(
        scores in arb_scores(12),
        target in 0u32..12,
        known in prop::collection::vec(0u32..12, 0..6),
    ) {
        // build a filter index marking `known` as true tails of (0, r0)
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        let train: Vec<Triple> = known.iter().map(|&t| Triple::new(0, 0, t)).collect();
        let d = KgDataset { vocab, train, valid: vec![], test: vec![] };
        let filter = d.filter_index();
        let empty = FilterIndex::default();
        let filtered = filtered_rank(&scores, EntityId(target), None, EntityId(0), RelationId(0), &filter);
        let raw = filtered_rank(&scores, EntityId(target), None, EntityId(0), RelationId(0), &empty);
        prop_assert!(filtered <= raw, "filtered {filtered} > raw {raw}");
    }

    #[test]
    fn metrics_are_bounded(ranks in prop::collection::vec(1u32..500, 1..50)) {
        let mut m = RankMetrics::new();
        for r in &ranks {
            m.push(*r as f64);
        }
        prop_assert!(m.mrr() > 0.0 && m.mrr() <= 1.0);
        prop_assert!(m.mr() >= 1.0);
        prop_assert!(m.hits(1) <= m.hits(3));
        prop_assert!(m.hits(3) <= m.hits(10));
        prop_assert_eq!(m.count(), ranks.len());
    }

    #[test]
    fn split_conserves_and_is_deterministic(
        n_triples in 10usize..100,
        seed in 0u64..100,
    ) {
        let mut vocab = Vocab::new();
        for i in 0..20 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        let triples: Vec<Triple> = (0..n_triples as u32)
            .map(|i| Triple::new(i % 20, 0, (i * 7 + 1) % 20))
            .collect();
        let d1 = KgDataset::split(vocab.clone(), triples.clone(), (8.0, 1.0, 1.0), &mut Prng::new(seed));
        let d2 = KgDataset::split(vocab, triples.clone(), (8.0, 1.0, 1.0), &mut Prng::new(seed));
        prop_assert_eq!(d1.train.len() + d1.valid.len() + d1.test.len(), n_triples);
        prop_assert_eq!(&d1.train, &d2.train);
        prop_assert_eq!(&d1.test, &d2.test);
        // the split is a permutation of the input multiset
        let mut all: Vec<Triple> = d1.train.iter().chain(&d1.valid).chain(&d1.test).copied().collect();
        let mut orig = triples;
        all.sort();
        orig.sort();
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn inverse_augmentation_is_involution_on_endpoints(
        h in 0u32..50, r in 0u32..7, t in 0u32..50, nrel in 7usize..20,
    ) {
        let tri = Triple::new(h, r, t);
        let inv = tri.inverse(nrel);
        prop_assert_eq!(inv.h, tri.t);
        prop_assert_eq!(inv.t, tri.h);
        prop_assert_eq!(inv.r.0, r + nrel as u32);
    }
}
