//! Seeded randomized tests for knowledge-graph invariants.
//!
//! Formerly `proptest`-based; now driven by the in-repo [`Prng`] so the
//! workspace builds hermetically offline. Every case derives from an explicit
//! seed, so failures reproduce from the assertion message alone.

use came_kg::{
    filtered_rank, EntityId, EntityKind, FilterIndex, KgDataset, RankMetrics, RelationId, Triple,
    Vocab,
};
use came_tensor::Prng;

fn scores(n: usize, rng: &mut Prng) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_in(-10.0, 10.0)).collect()
}

#[test]
fn rank_is_within_bounds() {
    let empty = FilterIndex::default();
    for seed in 0..300u64 {
        let mut rng = Prng::new(seed);
        let s = scores(20, &mut rng);
        let target = rng.below(20) as u32;
        let r = filtered_rank(
            &s,
            EntityId(target),
            None,
            EntityId(0),
            RelationId(0),
            &empty,
        );
        assert!(r >= 1.0, "seed {seed}: rank {r} < 1");
        assert!(r <= s.len() as f64, "seed {seed}: rank {r} > {}", s.len());
    }
}

#[test]
fn best_score_has_rank_one() {
    let empty = FilterIndex::default();
    for seed in 0..300u64 {
        let mut rng = Prng::new(seed ^ 0x11);
        let mut s = scores(15, &mut rng);
        let target = rng.below(15);
        // force the target strictly best
        let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        s[target] = max + 1.0;
        let r = filtered_rank(
            &s,
            EntityId(target as u32),
            None,
            EntityId(0),
            RelationId(0),
            &empty,
        );
        assert_eq!(r, 1.0, "seed {seed}");
    }
}

#[test]
fn filtering_never_hurts_rank() {
    let empty = FilterIndex::default();
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0x22);
        let s = scores(12, &mut rng);
        let target = rng.below(12) as u32;
        let n_known = rng.below(6);
        let known: Vec<u32> = (0..n_known).map(|_| rng.below(12) as u32).collect();
        // build a filter index marking `known` as true tails of (0, r0)
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        let train: Vec<Triple> = known.iter().map(|&t| Triple::new(0, 0, t)).collect();
        let d = KgDataset {
            vocab,
            train,
            valid: vec![],
            test: vec![],
        };
        let filter = d.filter_index();
        let filtered = filtered_rank(
            &s,
            EntityId(target),
            None,
            EntityId(0),
            RelationId(0),
            &filter,
        );
        let raw = filtered_rank(
            &s,
            EntityId(target),
            None,
            EntityId(0),
            RelationId(0),
            &empty,
        );
        assert!(
            filtered <= raw,
            "seed {seed}: filtered {filtered} > raw {raw}"
        );
    }
}

#[test]
fn metrics_are_bounded() {
    for seed in 0..200u64 {
        let mut rng = Prng::new(seed ^ 0x33);
        let n = 1 + rng.below(49);
        let ranks: Vec<u32> = (0..n).map(|_| 1 + rng.below(499) as u32).collect();
        let mut m = RankMetrics::new();
        for r in &ranks {
            m.push(*r as f64);
        }
        assert!(
            m.mrr() > 0.0 && m.mrr() <= 1.0,
            "seed {seed}: mrr {}",
            m.mrr()
        );
        assert!(m.mr() >= 1.0, "seed {seed}: mr {}", m.mr());
        assert!(m.hits(1) <= m.hits(3), "seed {seed}");
        assert!(m.hits(3) <= m.hits(10), "seed {seed}");
        assert_eq!(m.count(), ranks.len(), "seed {seed}");
    }
}

#[test]
fn split_conserves_and_is_deterministic() {
    for seed in 0..100u64 {
        let mut rng = Prng::new(seed ^ 0x44);
        let n_triples = 10 + rng.below(90);
        let mut vocab = Vocab::new();
        for i in 0..20 {
            vocab.add_entity(format!("e{i}"), EntityKind::Other);
        }
        vocab.add_relation("r");
        let triples: Vec<Triple> = (0..n_triples as u32)
            .map(|i| Triple::new(i % 20, 0, (i * 7 + 1) % 20))
            .collect();
        let d1 = KgDataset::split(
            vocab.clone(),
            triples.clone(),
            (8.0, 1.0, 1.0),
            &mut Prng::new(seed),
        );
        let d2 = KgDataset::split(
            vocab,
            triples.clone(),
            (8.0, 1.0, 1.0),
            &mut Prng::new(seed),
        );
        assert_eq!(
            d1.train.len() + d1.valid.len() + d1.test.len(),
            n_triples,
            "seed {seed}"
        );
        assert_eq!(&d1.train, &d2.train, "seed {seed}");
        assert_eq!(&d1.test, &d2.test, "seed {seed}");
        // the split is a permutation of the input multiset
        let mut all: Vec<Triple> = d1
            .train
            .iter()
            .chain(&d1.valid)
            .chain(&d1.test)
            .copied()
            .collect();
        let mut orig = triples;
        all.sort();
        orig.sort();
        assert_eq!(all, orig, "seed {seed}");
    }
}

#[test]
fn inverse_augmentation_is_involution_on_endpoints() {
    for seed in 0..300u64 {
        let mut rng = Prng::new(seed ^ 0x55);
        let (h, t) = (rng.below(50) as u32, rng.below(50) as u32);
        let r = rng.below(7) as u32;
        let nrel = 7 + rng.below(13);
        let tri = Triple::new(h, r, t);
        let inv = tri.inverse(nrel);
        assert_eq!(inv.h, tri.t, "seed {seed}");
        assert_eq!(inv.t, tri.h, "seed {seed}");
        assert_eq!(inv.r.0, r + nrel as u32, "seed {seed}");
    }
}
