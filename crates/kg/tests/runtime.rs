//! Integration tests for the fault-tolerant training runtime: kill/resume
//! bit-identity, divergence rollback, gradient clipping, and corrupted
//! checkpoint fallback — all on a tiny deterministic DistMult.

use std::path::PathBuf;

use came_kg::triple::Triple;
use came_kg::{
    train_negative_sampling_rt, train_one_to_n_rt, CheckpointConfig, FaultPlan, KgDataset,
    NegSamplingConfig, NegWeighting, OneToNModel, RuntimeConfig, TrainConfig, TrainError,
    TrainEvent, TripleModel, Vocab,
};
use came_kg::{EntityKind, Snapshot};
use came_tensor::{EmbeddingTable, Graph, ParamStore, Prng, Var};

struct ToyDistMult {
    ent: EmbeddingTable,
    rel: EmbeddingTable,
}

impl ToyDistMult {
    fn build(dataset: &KgDataset, seed: u64) -> (ToyDistMult, ParamStore) {
        let mut rng = Prng::new(seed);
        let mut store = ParamStore::new();
        let model = ToyDistMult {
            ent: EmbeddingTable::new(&mut store, "ent", dataset.num_entities(), 16, &mut rng),
            rel: EmbeddingTable::new(&mut store, "rel", dataset.num_relations_aug(), 16, &mut rng),
        };
        (model, store)
    }
}

impl OneToNModel for ToyDistMult {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let h = self.ent.lookup(g, store, heads);
        let r = self.rel.lookup(g, store, rels);
        let hr = g.mul(h, r);
        let e_t = g.transpose(self.ent.full(g, store), 0, 1);
        g.matmul(hr, e_t)
    }
}

impl TripleModel for ToyDistMult {
    fn score(&self, g: &Graph, store: &ParamStore, h: &[u32], r: &[u32], t: &[u32]) -> Var {
        let hv = self.ent.lookup(g, store, h);
        let rv = self.rel.lookup(g, store, r);
        let tv = self.ent.lookup(g, store, t);
        let prod = g.mul(g.mul(hv, rv), tv);
        g.sum_axis(prod, 1, false)
    }
}

fn toy_dataset() -> KgDataset {
    let mut vocab = Vocab::new();
    for i in 0..12 {
        vocab.add_entity(format!("e{i}"), EntityKind::Other);
    }
    vocab.add_relation("r0");
    vocab.add_relation("r1");
    let mut triples = Vec::new();
    for i in 0..10u32 {
        triples.push(Triple::new(i, 0, (i + 1) % 12));
        triples.push(Triple::new(i, 1, (i + 2) % 12));
    }
    let mut rng = Prng::new(9);
    KgDataset::split(vocab, triples, (8.0, 1.0, 1.0), &mut rng)
}

/// Bitwise image of every parameter, Adam moment included.
fn store_bits(store: &ParamStore) -> Vec<(String, Vec<u32>)> {
    store
        .state_views()
        .map(|p| {
            let bits = p
                .value
                .data()
                .iter()
                .chain(p.m.data())
                .chain(p.v.data())
                .map(|f| f.to_bits())
                .collect();
            (p.name.to_string(), bits)
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("came-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ckpt_runtime(dir: &PathBuf, faults: FaultPlan) -> RuntimeConfig {
    RuntimeConfig {
        checkpoint: Some(CheckpointConfig::new(dir.clone())),
        faults,
        ..Default::default()
    }
}

#[test]
fn one_to_n_kill_and_resume_is_bit_identical() {
    let d = toy_dataset();
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 8,
        lr: 5e-3,
        ..Default::default()
    };

    // Reference: 4 epochs straight through.
    let dir_a = scratch_dir("straight");
    let (model, mut store) = ToyDistMult::build(&d, 0);
    let rt = ckpt_runtime(&dir_a, FaultPlan::none());
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    assert_eq!(run.history.len(), 4);
    assert_eq!(run.checkpoints_written, 4);
    let want = store_bits(&store);
    let want_losses: Vec<f32> = run.history.iter().map(|s| s.loss).collect();

    // Killed at the start of epoch 2, then resumed in a fresh process-worth
    // of state: same initial seed, new store, new model.
    let dir_b = scratch_dir("killed");
    let (model, mut store) = ToyDistMult::build(&d, 0);
    let rt = ckpt_runtime(
        &dir_b,
        FaultPlan {
            kill_at_epoch: Some(2),
            ..FaultPlan::none()
        },
    );
    match train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}) {
        Err(TrainError::Killed { epoch: 2 }) => {}
        other => panic!("expected kill at epoch 2, got {other:?}"),
    }

    let (model, mut store) = ToyDistMult::build(&d, 0);
    let rt = ckpt_runtime(&dir_b, FaultPlan::none());
    let mut resumed_at = None;
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |ev, _, _| {
        if let TrainEvent::Resumed { epoch_next, .. } = ev {
            resumed_at = Some(*epoch_next);
        }
    })
    .unwrap();
    assert_eq!(resumed_at, Some(2), "resume should continue at epoch 2");
    assert!(run.resumed_from.is_some());
    let got_losses: Vec<f32> = run.history.iter().map(|s| s.loss).collect();
    assert_eq!(got_losses, want_losses, "loss history must match");
    assert_eq!(store_bits(&store), want, "parameters must be bit-identical");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn neg_sampling_kill_and_resume_is_bit_identical() {
    let d = toy_dataset();
    let cfg = NegSamplingConfig {
        base: TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 5e-3,
            ..Default::default()
        },
        k: 4,
        margin: 3.0,
        weighting: NegWeighting::Uniform,
    };

    let dir_a = scratch_dir("neg-straight");
    let (model, mut store) = ToyDistMult::build(&d, 1);
    let rt = ckpt_runtime(&dir_a, FaultPlan::none());
    train_negative_sampling_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    let want = store_bits(&store);

    let dir_b = scratch_dir("neg-killed");
    let (model, mut store) = ToyDistMult::build(&d, 1);
    let rt = ckpt_runtime(
        &dir_b,
        FaultPlan {
            kill_at_epoch: Some(1),
            ..FaultPlan::none()
        },
    );
    assert!(matches!(
        train_negative_sampling_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}),
        Err(TrainError::Killed { epoch: 1 })
    ));

    let (model, mut store) = ToyDistMult::build(&d, 1);
    let rt = ckpt_runtime(&dir_b, FaultPlan::none());
    let run = train_negative_sampling_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    assert!(run.resumed_from.is_some());
    assert_eq!(store_bits(&store), want);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn nan_grad_fault_trips_sentinel_and_recovers() {
    let d = toy_dataset();
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 8,
        lr: 5e-3,
        ..Default::default()
    };
    let (model, mut store) = ToyDistMult::build(&d, 2);
    let rt = RuntimeConfig {
        faults: FaultPlan::parse("nan_grad@step=5").unwrap(),
        ..Default::default()
    };
    let mut diverged = Vec::new();
    let mut recovered = Vec::new();
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |ev, _, _| match ev {
        TrainEvent::Diverged {
            step,
            lr_scale,
            cause,
            ..
        } => diverged.push((*step, *lr_scale, cause.clone())),
        TrainEvent::Recovered {
            step,
            lr_scale,
            retries,
            ..
        } => recovered.push((*step, *lr_scale, *retries)),
        _ => {}
    })
    .unwrap();

    assert_eq!(diverged.len(), 1, "exactly one sentinel trip: {diverged:?}");
    assert_eq!(recovered.len(), 1, "exactly one recovery: {recovered:?}");
    assert_eq!(diverged[0].0, 5, "trip at the injected step");
    assert!(diverged[0].2.contains("non-finite"), "{}", diverged[0].2);
    assert!((recovered[0].1 - 0.5).abs() < 1e-6, "LR halved on rollback");
    assert_eq!(run.divergences, 1);
    assert_eq!(run.history.len(), 3, "training still completes all epochs");
    assert!(run.history.iter().all(|s| s.loss.is_finite()));
    assert!(
        store.state_views().all(|p| !p.value.has_non_finite()),
        "recovered parameters must be finite"
    );
}

#[test]
fn grad_clip_caps_exploding_gradient_norm() {
    let d = toy_dataset();
    let (model, mut store) = ToyDistMult::build(&d, 3);

    // One deliberately exploding step: scale the logits by 1e6 so the
    // backward pass produces a huge global gradient norm.
    let g = Graph::new();
    let logits = model.forward(&g, &store, &[0, 1, 2], &[0, 0, 1]);
    let loss = g.sum_all(g.scale(logits, 1e6));
    g.backward(loss, &mut store);

    let pre = store.clip_grad_norm(1.5);
    assert!(pre > 1e3, "gradient should have exploded, got norm {pre}");
    let post = store.grad_norm();
    assert!(
        (post - 1.5).abs() / 1.5 < 1e-4,
        "post-clip norm {post} must equal the configured cap 1.5"
    );

    // A clip below the cap is a no-op.
    store.zero_grad();
    let g = Graph::new();
    let logits = model.forward(&g, &store, &[0], &[0]);
    let loss = g.sum_all(g.scale(logits, 1e-3));
    g.backward(loss, &mut store);
    let small = store.grad_norm();
    assert!(small < 1.5);
    store.clip_grad_norm(1.5);
    assert_eq!(
        store.grad_norm(),
        small,
        "norms under the cap are untouched"
    );
}

#[test]
fn corrupt_checkpoint_fault_falls_back_cleanly() {
    let d = toy_dataset();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 5e-3,
        ..Default::default()
    };

    // Checkpoint only at the end (interval > epochs), and let the injected
    // fault truncate that sole checkpoint right after writing.
    let dir = scratch_dir("corrupt");
    let (model, mut store) = ToyDistMult::build(&d, 4);
    let mut rt = ckpt_runtime(&dir, FaultPlan::parse("corrupt_checkpoint").unwrap());
    rt.checkpoint.as_mut().unwrap().every_epochs = 5;
    train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();

    // Resume sees the torn file, rejects it with a CRC/truncation error, and
    // starts from scratch — ending bit-identical to an uninterrupted run.
    let cfg2 = cfg.clone();
    let (model, mut store) = ToyDistMult::build(&d, 4);
    let rt = ckpt_runtime(&dir, FaultPlan::none());
    let mut rejections = Vec::new();
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg2, &rt, |ev, _, _| {
        if let TrainEvent::CheckpointRejected { reason, .. } = ev {
            rejections.push(reason.clone());
        }
    })
    .unwrap();
    assert_eq!(rejections.len(), 1, "torn checkpoint must be rejected");
    assert!(
        rejections[0].contains("truncated") || rejections[0].contains("CRC"),
        "unexpected rejection reason: {}",
        rejections[0]
    );
    assert!(run.resumed_from.is_none(), "nothing intact to resume from");

    let dir_clean = scratch_dir("corrupt-ref");
    let (model, mut fresh) = ToyDistMult::build(&d, 4);
    let rt = ckpt_runtime(&dir_clean, FaultPlan::none());
    train_one_to_n_rt(&model, &mut fresh, &d, &cfg2, &rt, |_, _, _| {}).unwrap();
    assert_eq!(store_bits(&store), store_bits(&fresh));

    // Torn `latest` with an intact `prev`: resume falls back to `prev`
    // (epoch 1 of 2) and still converges to the same bits.
    let run_dir = std::fs::read_dir(&dir_clean)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let latest = run_dir.join("latest.ckpt");
    let bytes = std::fs::read(&latest).unwrap();
    std::fs::write(&latest, &bytes[..bytes.len() / 2]).unwrap();
    let (model, mut store) = ToyDistMult::build(&d, 4);
    let rt = ckpt_runtime(&dir_clean, FaultPlan::none());
    let mut resumed_at = None;
    train_one_to_n_rt(&model, &mut store, &d, &cfg2, &rt, |ev, _, _| {
        if let TrainEvent::Resumed { epoch_next, .. } = ev {
            resumed_at = Some(*epoch_next);
        }
    })
    .unwrap();
    assert_eq!(resumed_at, Some(1), "must fall back to the prev snapshot");
    assert_eq!(store_bits(&store), store_bits(&fresh));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_clean);
}

#[test]
fn empty_train_split_is_a_typed_error() {
    let mut vocab = Vocab::new();
    for i in 0..4 {
        vocab.add_entity(format!("e{i}"), EntityKind::Other);
    }
    vocab.add_relation("r0");
    let mut rng = Prng::new(0);
    let d = KgDataset::split(vocab, Vec::new(), (8.0, 1.0, 1.0), &mut rng);
    let (model, mut store) = ToyDistMult::build(&d, 5);
    let cfg = TrainConfig::default();
    let rt = RuntimeConfig::default();
    assert!(matches!(
        train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}),
        Err(TrainError::EmptyTrainSplit)
    ));
}

#[test]
fn checkpoint_is_skipped_when_run_already_complete() {
    let d = toy_dataset();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let dir = scratch_dir("complete");
    let (model, mut store) = ToyDistMult::build(&d, 6);
    let rt = ckpt_runtime(&dir, FaultPlan::none());
    train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    let want = store_bits(&store);

    // Re-running the identical config resumes past the end: no epochs run,
    // no new checkpoints, same parameters.
    let (model, mut store) = ToyDistMult::build(&d, 6);
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg, &rt, |_, _, _| {}).unwrap();
    assert_eq!(run.checkpoints_written, 0);
    assert_eq!(run.history.len(), 2, "history restored from the snapshot");
    assert_eq!(store_bits(&store), want);

    // A different seed fingerprints to a different slot and trains fresh.
    let cfg2 = TrainConfig { seed: 99, ..cfg };
    let (model, mut store) = ToyDistMult::build(&d, 6);
    let run = train_one_to_n_rt(&model, &mut store, &d, &cfg2, &rt, |_, _, _| {}).unwrap();
    assert!(run.resumed_from.is_none());
    assert_eq!(run.checkpoints_written, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_capture_matches_store_exactly() {
    let d = toy_dataset();
    let (_, store) = ToyDistMult::build(&d, 7);
    let snap = Snapshot::capture(&store, 0xABCD, 3, 0.25, 2, vec![1, 2, 3], &[]);
    assert_eq!(snap.params.len(), store.len());
    for (p, live) in snap.params.iter().zip(store.state_views()) {
        assert_eq!(p.name, live.name);
        assert_eq!(p.value.as_slice(), live.value.data());
    }
    let decoded = Snapshot::decode(&snap.encode()).unwrap();
    assert_eq!(decoded, snap);
}
