//! The Relation-aware Interactive TCA module (RIC, §IV-C, Eqn. 14).
//!
//! For each modality ω, RIC runs TCA between the modality's entity vector
//! and the relation embedding, giving every element of the entity
//! representation a multiplicative path to every element of the relation
//! embedding, then concatenates: `v_ω = [h'_ω ; r'_ω]`.

use came_tensor::{Graph, ParamStore, Prng, Var};

use crate::tca::TcaModule;

/// RIC over a fixed set of modalities (all projected to the relation width
/// before entering — see the dimension note on [`crate::tca`]).
pub struct RicModule {
    /// One TCA per modality; None in the "w/o RIC" ablation (plain concat).
    tca: Vec<Option<TcaModule>>,
    dim: usize,
}

impl RicModule {
    /// Build for `n_modalities`, each interacting with a `dim`-wide relation
    /// embedding. `use_tca = false` yields the ablated plain-concatenation
    /// variant.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        n_modalities: usize,
        dim: usize,
        n_heads: usize,
        lambda: f32,
        use_tca: bool,
        rng: &mut Prng,
    ) -> Self {
        let tca = (0..n_modalities)
            .map(|i| {
                use_tca.then(|| {
                    TcaModule::new(store, &format!("{name}.tca{i}"), dim, n_heads, lambda, rng)
                })
            })
            .collect();
        RicModule { tca, dim }
    }

    /// Interactive representation of modality `idx`:
    /// `v_ω = [h'_ω ; r'_ω] : [B, 2·dim]`.
    pub fn interact(&self, g: &Graph, store: &ParamStore, idx: usize, h: Var, r: Var) -> Var {
        let (h2, r2) = match &self.tca[idx] {
            Some(tca) => tca.apply(g, store, h, r),
            None => (h, r),
        };
        g.concat(&[h2, r2], 1)
    }

    /// Input width (relation embedding width).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of modalities.
    pub fn n_modalities(&self) -> usize {
        self.tca.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_tensor::{Shape, Tensor};

    #[test]
    fn interactive_repr_is_double_width() {
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let ric = RicModule::new(&mut store, "ric", 3, 8, 2, 5.0, true, &mut rng);
        let g = Graph::new();
        let h = g.input(Tensor::randn(Shape::d2(4, 8), 1.0, &mut rng));
        let r = g.input(Tensor::randn(Shape::d2(4, 8), 1.0, &mut rng));
        let v = ric.interact(&g, &store, 0, h, r);
        assert_eq!(g.shape(v), Shape::d2(4, 16));
    }

    #[test]
    fn ablated_ric_is_plain_concat() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let ric = RicModule::new(&mut store, "ric", 1, 4, 1, 5.0, false, &mut rng);
        assert_eq!(store.len(), 0, "ablated RIC must own no parameters");
        let g = Graph::new();
        let hv = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape(Shape::d2(1, 4));
        let rv = Tensor::from_slice(&[5.0, 6.0, 7.0, 8.0]).reshape(Shape::d2(1, 4));
        let h = g.input(hv);
        let r = g.input(rv);
        let v = ric.interact(&g, &store, 0, h, r);
        assert_eq!(g.value(v).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn each_modality_owns_its_tca() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let ric = RicModule::new(&mut store, "ric", 2, 4, 1, 5.0, true, &mut rng);
        assert_eq!(ric.n_modalities(), 2);
        let g = Graph::new();
        let h = g.input(Tensor::randn(Shape::d2(2, 4), 1.0, &mut rng));
        let r = g.input(Tensor::randn(Shape::d2(2, 4), 1.0, &mut rng));
        let v0 = g.value(ric.interact(&g, &store, 0, h, r));
        let v1 = g.value(ric.interact(&g, &store, 1, h, r));
        assert_ne!(v0.data(), v1.data(), "modalities share parameters");
    }

    #[test]
    fn relation_influences_entity_side() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let ric = RicModule::new(&mut store, "ric", 1, 6, 2, 5.0, true, &mut rng);
        let hv = Tensor::randn(Shape::d2(2, 6), 1.0, &mut rng);
        let r1 = Tensor::randn(Shape::d2(2, 6), 1.0, &mut rng);
        let r2 = Tensor::randn(Shape::d2(2, 6), 1.0, &mut rng);
        let run = |rv: &Tensor| {
            let g = Graph::new();
            let h = g.input(hv.clone());
            let r = g.input(rv.clone());
            let v = ric.interact(&g, &store, 0, h, r);
            // take only the entity half: it must still depend on r (deep
            // interaction, unlike ConvE's plain concatenation)
            g.value(g.narrow(v, 1, 0, 6))
        };
        assert_ne!(run(&r1).data(), run(&r2).data());
    }
}
