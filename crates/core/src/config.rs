//! CamE hyper-parameters and ablation switches.

/// Full CamE configuration. Defaults mirror the paper's DRKG-MM setting
/// scaled to CPU width (d 500→64, filters 128→16, kernel 9→3; the relative
/// architecture is unchanged).
#[derive(Clone, Debug)]
pub struct CamEConfig {
    /// Entity/relation embedding width `d_e = d_r`.
    pub d_embed: usize,
    /// Fusion width `d_f`.
    pub d_fusion: usize,
    /// Number of TCA heads `m` (paper: 2 on DRKG-MM, 3 on OMAHA-MM).
    pub n_heads: usize,
    /// Temperature interval λ (paper: 5 / 10).
    pub lambda: f32,
    /// Exchanging factor θ (paper: −0.5 / −2).
    pub theta: f32,
    /// Convolution filter count.
    pub n_filters: usize,
    /// Convolution kernel size.
    pub kernel: usize,
    /// Dropout probability on the joint/interactive representations.
    pub dropout: f32,
    /// Use the TCA operator (off = "w/o TCA").
    pub use_tca: bool,
    /// Use exchanging fusion (off = "w/o EX").
    pub use_exchange: bool,
    /// Use the MMF module (off = "w/o MMF": simple multiplication).
    pub use_mmf: bool,
    /// Use the RIC module (off = "w/o RIC": plain concatenation).
    pub use_ric: bool,
    /// Use the textual modality (off = "w/o TD").
    pub use_text: bool,
    /// Use the molecular modality (off = "w/o MS"; forced off on datasets
    /// without molecules).
    pub use_molecule: bool,
    /// Use pretrained CompGCN structural features as `h_s` (off = learnable
    /// structural embedding only, as in the Fig. 8(a) fairness setting).
    pub use_pretrained_struct: bool,
    /// Per-modality dropout probabilities `(p_molecule, p_text)`: during
    /// training each batch row independently loses that modality with the
    /// given probability and is served by the learned fallback embedding
    /// instead, teaching the model to score modality-poor entities. Zero
    /// disables. Env override: `CAME_MODALITY_DROPOUT=p_mol,p_text`.
    pub modality_dropout: (f32, f32),
    /// Weight of the cross-modal contrastive (InfoNCE) auxiliary loss
    /// aligning molecule and text projections of the same entity. Zero
    /// disables. Env override: `CAME_CONTRASTIVE_W`.
    pub contrastive_w: f32,
    /// Parameter-initialisation seed.
    pub seed: u64,
    /// Kernel backend to select before building/training the model. `None`
    /// keeps the process-wide default (`CAME_BACKEND` env, else parallel).
    pub backend: Option<came_tensor::BackendKind>,
}

impl Default for CamEConfig {
    fn default() -> Self {
        CamEConfig {
            d_embed: 64,
            d_fusion: 64,
            n_heads: 2,
            lambda: 5.0,
            theta: -0.5,
            n_filters: 16,
            kernel: 3,
            dropout: 0.2,
            use_tca: true,
            use_exchange: true,
            use_mmf: true,
            use_ric: true,
            use_text: true,
            use_molecule: true,
            use_pretrained_struct: true,
            modality_dropout: (0.0, 0.0),
            contrastive_w: 0.0,
            seed: 0xCA4E,
            backend: None,
        }
    }
}

impl CamEConfig {
    /// Apply the robustness env knobs: `CAME_MODALITY_DROPOUT=p_mol,p_text`
    /// (a single value sets both) and `CAME_CONTRASTIVE_W=w`. Unset or
    /// unparsable values leave the config untouched.
    pub fn with_env_overrides(mut self) -> Self {
        if let Ok(v) = std::env::var("CAME_MODALITY_DROPOUT") {
            let mut parts = v.splitn(2, ',').map(|p| p.trim().parse::<f32>());
            match (parts.next(), parts.next()) {
                (Some(Ok(p_mol)), Some(Ok(p_text))) => self.modality_dropout = (p_mol, p_text),
                (Some(Ok(p)), None) => self.modality_dropout = (p, p),
                _ => {}
            }
        }
        if let Ok(v) = std::env::var("CAME_CONTRASTIVE_W") {
            if let Ok(w) = v.trim().parse::<f32>() {
                self.contrastive_w = w;
            }
        }
        self
    }
}

/// The ablation variants of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ablation {
    /// The full model.
    Full,
    /// Without exchanging fusion.
    WithoutEx,
    /// Without the TCA operator (identity pass-through everywhere).
    WithoutTca,
    /// Without the MMF module (simple multiplication fusion).
    WithoutMmf,
    /// Without the RIC module (plain concatenation).
    WithoutRic,
    /// Without both MMF and RIC.
    WithoutMmfAndRic,
    /// Without textual descriptions.
    WithoutText,
    /// Without molecular structures.
    WithoutMolecule,
}

impl Ablation {
    /// All variants in the paper's Fig. 6 order.
    pub fn all() -> [Ablation; 8] {
        [
            Ablation::Full,
            Ablation::WithoutEx,
            Ablation::WithoutTca,
            Ablation::WithoutMmf,
            Ablation::WithoutRic,
            Ablation::WithoutMmfAndRic,
            Ablation::WithoutText,
            Ablation::WithoutMolecule,
        ]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::Full => "CamE",
            Ablation::WithoutEx => "w/o EX",
            Ablation::WithoutTca => "w/o TCA",
            Ablation::WithoutMmf => "w/o MMF",
            Ablation::WithoutRic => "w/o RIC",
            Ablation::WithoutMmfAndRic => "w/o M and R",
            Ablation::WithoutText => "w/o TD",
            Ablation::WithoutMolecule => "w/o MS",
        }
    }

    /// Apply the ablation to a base configuration.
    pub fn apply(self, mut cfg: CamEConfig) -> CamEConfig {
        match self {
            Ablation::Full => {}
            Ablation::WithoutEx => cfg.use_exchange = false,
            Ablation::WithoutTca => cfg.use_tca = false,
            Ablation::WithoutMmf => cfg.use_mmf = false,
            Ablation::WithoutRic => cfg.use_ric = false,
            Ablation::WithoutMmfAndRic => {
                cfg.use_mmf = false;
                cfg.use_ric = false;
            }
            Ablation::WithoutText => cfg.use_text = false,
            Ablation::WithoutMolecule => cfg.use_molecule = false,
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_flip_expected_flags() {
        let base = CamEConfig::default();
        assert!(!Ablation::WithoutEx.apply(base.clone()).use_exchange);
        assert!(!Ablation::WithoutTca.apply(base.clone()).use_tca);
        let mr = Ablation::WithoutMmfAndRic.apply(base.clone());
        assert!(!mr.use_mmf && !mr.use_ric);
        assert!(!Ablation::WithoutMolecule.apply(base.clone()).use_molecule);
        // full leaves everything on
        let f = Ablation::Full.apply(base);
        assert!(f.use_tca && f.use_exchange && f.use_mmf && f.use_ric);
    }

    #[test]
    fn labels_match_figure_six() {
        assert_eq!(Ablation::all().len(), 8);
        assert_eq!(Ablation::WithoutMmfAndRic.label(), "w/o M and R");
        assert_eq!(Ablation::WithoutText.label(), "w/o TD");
    }

    #[test]
    fn env_overrides_parse_dropout_pair_and_contrastive_weight() {
        let base = CamEConfig::default();
        assert_eq!(base.modality_dropout, (0.0, 0.0));
        assert_eq!(base.contrastive_w, 0.0);
        // unset env leaves the config untouched
        std::env::remove_var("CAME_MODALITY_DROPOUT");
        std::env::remove_var("CAME_CONTRASTIVE_W");
        let c = CamEConfig::default().with_env_overrides();
        assert_eq!(c.modality_dropout, (0.0, 0.0));

        std::env::set_var("CAME_MODALITY_DROPOUT", "0.3,0.1");
        std::env::set_var("CAME_CONTRASTIVE_W", "0.05");
        let c = CamEConfig::default().with_env_overrides();
        assert_eq!(c.modality_dropout, (0.3, 0.1));
        assert_eq!(c.contrastive_w, 0.05);

        // a single value sets both probabilities
        std::env::set_var("CAME_MODALITY_DROPOUT", "0.25");
        let c = CamEConfig::default().with_env_overrides();
        assert_eq!(c.modality_dropout, (0.25, 0.25));

        // garbage is ignored, not a panic
        std::env::set_var("CAME_MODALITY_DROPOUT", "lots");
        let c = CamEConfig::default().with_env_overrides();
        assert_eq!(c.modality_dropout, (0.0, 0.0));
        std::env::remove_var("CAME_MODALITY_DROPOUT");
        std::env::remove_var("CAME_CONTRASTIVE_W");
    }
}
