//! The complete CamE model (Fig. 2): frozen modal features → MMF joint
//! representation + RIC interactive representations → multi-channel
//! convolutional scoring over all candidate tails → 1-N Bernoulli training
//! (Eqn. 16).

use std::sync::{Arc, Mutex};

use came_encoders::{FrozenCache, FrozenError, ModalFeatures};
use came_kg::{EntityId, FilterIndex, KgDataset, OneToNModel, RelationId, TrainConfig};
use came_tensor::{
    build_store, EmbeddingTable, EntityHead, FileBackedStore, Graph, Linear, ParamId, ParamStore,
    Prng, QuantError, Shape, StoreKind, Tensor, Var,
};

use crate::config::CamEConfig;
use crate::mmf::{simple_multiplicative_fusion, MmfModule};
use crate::ric::RicModule;
use crate::scorer::ConvBranch;

/// Modality indices used throughout the model.
const MOD_MOLECULE: usize = 0;
const MOD_TEXT: usize = 1;
const MOD_STRUCT: usize = 2;

/// Serving-head lifecycle: engines call
/// [`OneToNModel::prepare_serving`] once at the serving boundary; the first
/// call decides between a frozen [`EntityHead`] (compact stores) and the
/// dense in-graph scoring path (`Off`, the f32 default — which keeps the
/// training forward literally unchanged and therefore bit-identical).
enum HeadState {
    Untried,
    Ready(Arc<EntityHead>),
    Off,
}

/// The CamE model. Construct with [`CamE::new`], train with
/// [`came_kg::train_one_to_n`] (or the [`CamE::fit`] convenience), evaluate
/// through [`came_kg::OneToNScorer`].
pub struct CamE {
    /// Configuration (including ablation switches).
    pub cfg: CamEConfig,
    n_entities: usize,
    // frozen-encoder output caches: computed once at construction, served
    // by row gathers per batch (invalidated if an encoder turns trainable)
    feat_m: FrozenCache,
    feat_t: FrozenCache,
    feat_s: FrozenCache,
    // learnable embeddings
    ent: EmbeddingTable,
    rel: EmbeddingTable,
    // Eqn. 9 projections into the fusion space
    w_mol: Linear,
    w_text: Linear,
    w_struct: Linear,
    mmf: Option<MmfModule>,
    // per-modality projections into the relation space for RIC
    ric_proj: Vec<Linear>,
    ric: RicModule,
    // Eqn. 15 projections W_t, W_m of interactive representations
    w_vt: Linear,
    w_vm: Linear,
    branch1: ConvBranch,
    branch2: ConvBranch,
    ent_bias: ParamId,
    // Learned per-modality fallback embeddings `[1, d_m]` / `[1, d_t]` in
    // the raw feature space: they stand in for absent (or dropout-masked)
    // modality rows and flow through the same projections as real features.
    fallback_m: ParamId,
    fallback_t: ParamId,
    // A Mutex (not RefCell) so a trained CamE is `Sync` and can be scored
    // concurrently from the serving tier's shard workers; training forwards
    // take the lock once per step, inference forwards never contend.
    dropout_rng: Mutex<Prng>,
    // Modality-dropout coin flips get their own stream so enabling the knob
    // leaves the feature-dropout stream (and pre-existing runs) untouched;
    // its position is checkpointed alongside `dropout_rng`.
    modality_rng: Mutex<Prng>,
    // Frozen entity scoring head for serving (CAME_EMBED_STORE), decided at
    // the first `prepare_serving` call; `Off` routes through the dense
    // in-graph matmul exactly as before.
    serve_head: Mutex<HeadState>,
}

impl CamE {
    /// Build a CamE over a dataset and its frozen modal features.
    ///
    /// # Panics
    /// Panics if the feature tables are misaligned with the dataset or
    /// contain NaN/inf — use [`CamE::try_new`] to handle those as values.
    pub fn new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        features: &ModalFeatures,
        cfg: CamEConfig,
    ) -> Self {
        match CamE::try_new(store, dataset, features, cfg) {
            Ok(model) => model,
            Err(e) => panic!("cannot build CamE: {e}"),
        }
    }

    /// Fallible constructor: rejects misaligned or non-finite feature tables
    /// with a typed [`FrozenError`] naming the offending modality, instead
    /// of asserting.
    pub fn try_new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        features: &ModalFeatures,
        cfg: CamEConfig,
    ) -> Result<Self, FrozenError> {
        let n = dataset.num_entities();
        features.try_validate(n)?;
        let mut cfg = cfg;
        if let Some(kind) = cfg.backend {
            came_tensor::set_backend(kind);
        }
        // a dataset without any molecule cannot use the molecular modality
        if !features.has_molecule.iter().any(|&m| m) {
            cfg.use_molecule = false;
        }
        let mut rng = Prng::new(cfg.seed);
        let (d_m, d_t, d_s) = features.dims();
        let (de, df) = (cfg.d_embed, cfg.d_fusion);

        // The paper pretrains structured embeddings with CompGCN (§III) and
        // only drops that initialisation in the Fig. 8(a) fairness setting;
        // mirror it: warm-start the entity table from the structural
        // features (overlapping columns; extra columns keep Xavier init).
        let ent = EmbeddingTable::new(store, "came.ent", n, de, &mut rng);
        if cfg.use_pretrained_struct {
            let src = &features.structural;
            let cols = d_s.min(de);
            let table = store.value_mut(ent.table);
            for row in 0..n {
                for c in 0..cols {
                    table.data_mut()[row * de + c] = src.data()[row * d_s + c];
                }
            }
        }
        let rel = EmbeddingTable::new(store, "came.rel", dataset.num_relations_aug(), de, &mut rng);
        let w_mol = Linear::no_bias(store, "came.w1", d_m, df, &mut rng);
        let w_text = Linear::no_bias(store, "came.w2", d_t, df, &mut rng);
        // the structural modality is either the frozen CompGCN features or
        // the learnable entity embedding (Fig. 8(a) fairness variant)
        let d_struct_in = if cfg.use_pretrained_struct { d_s } else { de };
        let w_struct = Linear::no_bias(store, "came.w3", d_struct_in, df, &mut rng);

        let n_active = Self::active_count(&cfg);
        let mmf = (cfg.use_mmf && n_active >= 2).then(|| {
            MmfModule::new(
                store,
                "came.mmf",
                n_active,
                df,
                cfg.n_heads,
                cfg.lambda,
                cfg.use_exchange.then_some(cfg.theta),
                cfg.use_tca,
                &mut rng,
            )
        });

        let ric_proj = vec![
            Linear::no_bias(store, "came.ric_proj_m", d_m, de, &mut rng),
            Linear::no_bias(store, "came.ric_proj_t", d_t, de, &mut rng),
            Linear::no_bias(store, "came.ric_proj_s", d_struct_in, de, &mut rng),
        ];
        let ric = RicModule::new(
            store,
            "came.ric",
            3,
            de,
            cfg.n_heads,
            cfg.lambda,
            cfg.use_ric && cfg.use_tca,
            &mut rng,
        );

        let w_vt = Linear::no_bias(store, "came.w_vt", 2 * de, df, &mut rng);
        let w_vm = Linear::no_bias(store, "came.w_vm", 2 * de, df, &mut rng);
        let b1_channels = 1 + usize::from(cfg.use_text) + usize::from(cfg.use_molecule);
        let branch1 = ConvBranch::new(
            store,
            "came.b1",
            b1_channels,
            df,
            cfg.n_filters,
            cfg.kernel,
            de,
            &mut rng,
        );
        let branch2 = ConvBranch::new(
            store,
            "came.b2",
            2,
            2 * de,
            cfg.n_filters,
            cfg.kernel,
            de,
            &mut rng,
        );
        let ent_bias = store.add_zeros("came.ent_bias", Shape::d1(n));
        // Zero-init keeps absent rows bit-identical to the pre-fallback
        // model at step 0 (they were served as zero rows) and draws nothing
        // from the init RNG, so all other parameters keep their streams.
        let fallback_m = store.add_zeros("came.fallback_m", Shape::d2(1, d_m));
        let fallback_t = store.add_zeros("came.fallback_t", Shape::d2(1, d_t));
        let dropout_rng = Mutex::new(Prng::new(cfg.seed ^ 0xD409));
        let modality_rng = Mutex::new(Prng::new(cfg.seed ^ 0x30D0));

        let (feat_m, feat_t, feat_s) = features.caches();
        Ok(CamE {
            n_entities: n,
            feat_m,
            feat_t,
            feat_s,
            ent,
            rel,
            w_mol,
            w_text,
            w_struct,
            mmf,
            ric_proj,
            ric,
            w_vt,
            w_vm,
            branch1,
            branch2,
            ent_bias,
            fallback_m,
            fallback_t,
            dropout_rng,
            modality_rng,
            serve_head: Mutex::new(HeadState::Untried),
            cfg,
        })
    }

    fn active_count(cfg: &CamEConfig) -> usize {
        1 + usize::from(cfg.use_text) + usize::from(cfg.use_molecule)
    }

    /// Number of entities scored per query.
    pub fn num_entities(&self) -> usize {
        self.n_entities
    }

    /// Convenience trainer: 1-N BCE via [`came_kg::train_one_to_n`].
    pub fn fit(
        &self,
        store: &mut ParamStore,
        dataset: &KgDataset,
        train_cfg: &TrainConfig,
    ) -> Vec<came_kg::EpochStats> {
        came_kg::train_one_to_n(self, store, dataset, train_cfg, |_, _, _| {})
    }

    /// Top-`k` tail predictions for `(h, r)`, optionally excluding known
    /// facts (used by the Fig. 7 case study).
    pub fn predict_topk(
        &self,
        store: &ParamStore,
        h: EntityId,
        r: RelationId,
        k: usize,
        exclude: Option<&FilterIndex>,
    ) -> Vec<(EntityId, f32)> {
        let g = Graph::inference();
        let scores = self.forward(&g, store, &[h.0], &[r.0]);
        // rank from a borrow of the logits — no tensor clone
        let mut ranked: Vec<(EntityId, f32)> = g.with_value(scores, |row| {
            row.data()
                .iter()
                .enumerate()
                .filter(|&(e, _)| exclude.is_none_or(|f| !f.contains(h, r, EntityId(e as u32))))
                .map(|(e, &s)| (EntityId(e as u32), s))
                .collect()
        });
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(k);
        ranked
    }

    /// Serving preflight over the frozen encoder caches this model gathers
    /// from: each active modality's cache must be fresh, finite, and aligned
    /// with the served entity space. Run once when the model goes behind a
    /// scoring endpoint; per-request gathers then skip validation entirely.
    /// Partial modality coverage is *not* an error: entities missing a
    /// modality are served through the learned fallback embedding and their
    /// responses tagged degraded. The preflight publishes coverage on the
    /// `serve.degraded_entities` gauge (and per-modality sub-gauges) so
    /// operators see how much of the entity space is degraded.
    pub fn serve_preflight(&self) -> Result<(), FrozenError> {
        let mut caches = vec![];
        if self.cfg.use_molecule {
            caches.push(&self.feat_m);
        }
        if self.cfg.use_text {
            caches.push(&self.feat_t);
        }
        if self.cfg.use_pretrained_struct {
            caches.push(&self.feat_s);
        }
        for cache in caches {
            cache.preflight_coverage(self.n_entities)?;
        }
        if came_obs::enabled() {
            let degraded = (0..self.n_entities as u32)
                .filter(|&e| self.head_degraded(e))
                .count();
            came_obs::registry()
                .gauge("serve.degraded_entities")
                .set(degraded as i64);
        }
        Ok(())
    }

    /// Whether scoring head `entity` takes the degraded path: an active
    /// modality has no row for it, so the learned fallback stands in.
    pub fn head_degraded(&self, entity: u32) -> bool {
        (self.cfg.use_molecule && !self.feat_m.is_present(entity))
            || (self.cfg.use_text && !self.feat_t.is_present(entity))
    }

    /// Whether any served entity is degraded (partial modality coverage).
    pub fn serving_degraded(&self) -> bool {
        (self.cfg.use_molecule && self.feat_m.missing_rows() > 0)
            || (self.cfg.use_text && self.feat_t.missing_rows() > 0)
    }

    /// Gather one modality's rows for `heads`, routing entities whose row
    /// is absent — or knocked out by modality dropout during training —
    /// through the learned fallback embedding. When every head is present
    /// and no dropout fires, the gathered rows pass through untouched, so
    /// full-coverage runs build exactly the pre-fallback graph.
    fn modal_rows(
        &self,
        g: &Graph,
        store: &ParamStore,
        cache: &came_encoders::FrozenCache,
        fallback: ParamId,
        p_drop: f32,
        heads: &[u32],
    ) -> Var {
        let b = heads.len();
        let mut keep: Vec<bool> = heads.iter().map(|&h| cache.is_present(h)).collect();
        if p_drop > 0.0 && g.records_tape() {
            // One draw per head (present or not) keeps the stream position a
            // pure function of rows seen, so snapshots replay bit-identically.
            let mut rng = self.modality_rng.lock().unwrap();
            for k in keep.iter_mut() {
                if rng.chance(p_drop as f64) {
                    *k = false;
                }
            }
        }
        let rows = g.input(cache.rows(heads));
        if keep.iter().all(|&k| k) {
            return rows;
        }
        let d = cache.dim();
        let mut keep_mask = vec![0.0f32; b * d];
        let mut fill = vec![0.0f32; b];
        for (i, &k) in keep.iter().enumerate() {
            if k {
                keep_mask[i * d..(i + 1) * d].fill(1.0);
            } else {
                fill[i] = 1.0;
            }
        }
        let keep_t = g.input(Tensor::from_vec(Shape::d2(b, d), keep_mask));
        let fill_t = g.input(Tensor::from_vec(Shape::d2(b, 1), fill));
        // `[B,1] @ [1,d]` broadcasts the fallback onto dropped rows and
        // routes their gradients back into it.
        let fb = g.matmul(fill_t, g.param(store, fallback));
        g.add(g.mul(rows, keep_t), fb)
    }

    /// Freeze the entity-scoring head into an [`EntityHead`] of the given
    /// [`StoreKind`], snapshotting the current entity embeddings and bias.
    /// `F32` disables the head (`Off`): the dense in-graph matmul is already
    /// the f32 path, and keeping it avoids a redundant copy of the table.
    /// Serving thereafter scores candidates through the store's fused
    /// dequant kernels; call again after further training to re-freeze.
    pub fn freeze_entity_store(
        &self,
        store: &ParamStore,
        kind: StoreKind,
    ) -> Result<(), QuantError> {
        if kind == StoreKind::F32 {
            *self.serve_head.lock().unwrap() = HeadState::Off;
            return Ok(());
        }
        let (n, de) = (self.n_entities, self.cfg.d_embed);
        let rows = store.value(self.ent.table);
        let bias = store.value(self.ent_bias).data().to_vec();
        let est = build_store(
            kind,
            rows.data(),
            n,
            de,
            FileBackedStore::cache_rows_from_env(),
        )?;
        *self.serve_head.lock().unwrap() = HeadState::Ready(Arc::new(EntityHead::new(est, bias)));
        Ok(())
    }
}

impl CamE {
    /// The forward graph up to — but excluding — the final all-entity
    /// scoring product: MMF fusion, RIC interactions, and both convolution
    /// branches, returning the `[B, d_e]` hidden block such that
    /// `forward == hidden @ E^T + ent_bias`.
    fn hidden_forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let cfg = &self.cfg;
        let mut rng = self.dropout_rng.lock().unwrap();

        // ---- frozen-gather: embedding lookups + cached-encoder rows ----
        let gather = came_obs::span("phase.frozen_gather");
        let r_emb = self.rel.lookup(g, store, rels); // [B, d_e]
        let e_h = self.ent.lookup(g, store, heads); // [B, d_e]
        let (p_mol, p_text) = cfg.modality_dropout;
        let m_raw = cfg
            .use_molecule
            .then(|| self.modal_rows(g, store, &self.feat_m, self.fallback_m, p_mol, heads));
        let t_raw = cfg
            .use_text
            .then(|| self.modal_rows(g, store, &self.feat_t, self.fallback_t, p_text, heads));
        let s_raw = if cfg.use_pretrained_struct {
            g.input(self.feat_s.rows(heads))
        } else {
            e_h
        };
        drop(gather);

        // ---- MMF: multimodal joint representation h_f ------------------
        // (`phase.tca` spans opened inside the fuse nest as children, so
        // `phase.mmf` self-time excludes the co-attention cost)
        let mmf_span = came_obs::span("phase.mmf");
        let mut fused_inputs = Vec::with_capacity(3);
        if let Some(m) = m_raw {
            fused_inputs.push(self.w_mol.apply(g, store, m));
        }
        if let Some(t) = t_raw {
            fused_inputs.push(self.w_text.apply(g, store, t));
        }
        fused_inputs.push(self.w_struct.apply(g, store, s_raw));
        let h_f = match &self.mmf {
            Some(mmf) if fused_inputs.len() >= 2 => mmf.fuse(g, store, &fused_inputs),
            _ => simple_multiplicative_fusion(g, &fused_inputs),
        };
        let h_f = g.dropout(h_f, cfg.dropout, &mut rng);
        drop(mmf_span);

        // ---- RIC: interactive representations v_ω ----------------------
        let ric_span = came_obs::span("phase.ric");
        let interact = |idx: usize, raw: Var| -> Var {
            let q = self.ric_proj[idx].apply(g, store, raw);
            self.ric.interact(g, store, idx, q, r_emb)
        };
        let v_m = m_raw.map(|m| interact(MOD_MOLECULE, m));
        let v_t = t_raw.map(|t| interact(MOD_TEXT, t));
        let v_s = interact(MOD_STRUCT, s_raw);
        let v_0 = g.concat(&[e_h, r_emb], 1);
        drop(ric_span);

        // ---- Eqn. 15: two convolution branches --------------------------
        let _scorer_span = came_obs::span("phase.scorer");
        let mut b1_channels = vec![h_f];
        if let Some(v_t) = v_t {
            b1_channels.push(self.w_vt.apply(g, store, v_t));
        }
        if let Some(v_m) = v_m {
            b1_channels.push(self.w_vm.apply(g, store, v_m));
        }
        let u1 = self.branch1.apply(g, store, &b1_channels);
        let u2 = self.branch2.apply(g, store, &[v_s, v_0]);
        let u1 = g.dropout(u1, cfg.dropout, &mut rng);
        let u2 = g.dropout(u2, cfg.dropout, &mut rng);
        g.add(u1, u2) // [B, d_e]
    }
}

impl OneToNModel for CamE {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let hidden = self.hidden_forward(g, store, heads, rels);
        // scores over all candidate tails
        let _scorer_span = came_obs::span("phase.scorer");
        let all_ent = g.transpose(self.ent.full(g, store), 0, 1); // [d_e, N]
        let scores = g.matmul(hidden, all_ent);
        g.add(scores, g.param(store, self.ent_bias))
    }

    fn forward_hidden(
        &self,
        g: &Graph,
        store: &ParamStore,
        heads: &[u32],
        rels: &[u32],
    ) -> Option<Var> {
        Some(self.hidden_forward(g, store, heads, rels))
    }

    fn entity_head(&self) -> Option<Arc<EntityHead>> {
        match &*self.serve_head.lock().unwrap() {
            HeadState::Ready(h) => Some(h.clone()),
            _ => None,
        }
    }

    // Serving boundary: decide the scoring path once, from CAME_EMBED_STORE.
    // Infallible by design — a quantization failure logs once and falls back
    // to the dense f32 path rather than refusing to serve.
    fn prepare_serving(&self, store: &ParamStore) {
        if !matches!(*self.serve_head.lock().unwrap(), HeadState::Untried) {
            return;
        }
        let kind = StoreKind::from_env();
        if let Err(e) = self.freeze_entity_store(store, kind) {
            eprintln!(
                "came: CAME_EMBED_STORE={} unusable ({e}); serving dense f32",
                kind.name()
            );
            *self.serve_head.lock().unwrap() = HeadState::Off;
        }
    }

    fn entity_store_blob(&self) -> Option<Vec<u8>> {
        self.entity_head().map(|h| h.to_blob())
    }

    fn restore_entity_store(&self, bytes: &[u8]) -> Result<(), String> {
        let head = EntityHead::from_blob(bytes).map_err(|e| e.to_string())?;
        if head.store().len() != self.n_entities || head.store().dim() != self.cfg.d_embed {
            return Err(format!(
                "entity store shape [{}, {}] does not fit this model's [{}, {}]",
                head.store().len(),
                head.store().dim(),
                self.n_entities,
                self.cfg.d_embed
            ));
        }
        *self.serve_head.lock().unwrap() = HeadState::Ready(Arc::new(head));
        Ok(())
    }

    // Cross-modal contrastive alignment (InfoNCE): for batch heads carrying
    // *both* molecule and text, project each modality into the fusion space
    // and ask every molecule row to pick out its own entity's text row
    // against the rest of the batch. Weighted by `cfg.contrastive_w`.
    fn aux_loss(&self, g: &Graph, store: &ParamStore, heads: &[u32], _rels: &[u32]) -> Option<Var> {
        let w = self.cfg.contrastive_w;
        if w <= 0.0 || !self.cfg.use_molecule || !self.cfg.use_text {
            return None;
        }
        // unique heads with both modalities — duplicates would put the same
        // positive pair on two rows and turn it into its own false negative
        let mut seen = std::collections::HashSet::new();
        let both: Vec<u32> = heads
            .iter()
            .copied()
            .filter(|&h| self.feat_m.is_present(h) && self.feat_t.is_present(h) && seen.insert(h))
            .collect();
        let k = both.len();
        if k < 2 {
            return None;
        }
        let m = self.w_mol.apply(g, store, g.input(self.feat_m.rows(&both))); // [K, d_f]
        let t = self
            .w_text
            .apply(g, store, g.input(self.feat_t.rows(&both))); // [K, d_f]
        let logits = g.matmul(m, g.transpose(t, 0, 1)); // [K, K]
        let probs = g.softmax(logits, 1);
        // epsilon keeps ln() finite if a row saturates; eye picks diagonals
        let eps = g.input(Tensor::from_vec(Shape::d2(k, k), vec![1e-9; k * k]));
        let mut eye = vec![0.0f32; k * k];
        for i in 0..k {
            eye[i * k + i] = 1.0;
        }
        let picked = g.mul(
            g.ln(g.add(probs, eps)),
            g.input(Tensor::from_vec(Shape::d2(k, k), eye)),
        );
        let nll = g.neg(g.scale(g.sum_all(picked), 1.0 / k as f32));
        Some(g.scale(nll, w))
    }

    fn degraded(&self, entity: u32) -> bool {
        self.head_degraded(entity)
    }

    // Checkpointing: the model-side mutable state outside the ParamStore is
    // the two RNG streams (feature dropout + modality dropout); a
    // bit-identical resume must restore their exact positions.
    fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        for rng in [&self.dropout_rng, &self.modality_rng] {
            for w in rng.lock().unwrap().save_state() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() != 24 && bytes.len() != 48 {
            return Err(format!(
                "CamE checkpoint state must be 24 bytes (dropout RNG) or 48 (plus modality-dropout RNG), got {}",
                bytes.len()
            ));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        *self.dropout_rng.lock().unwrap() = Prng::from_saved([word(0), word(1), word(2)]);
        *self.modality_rng.lock().unwrap() = if bytes.len() == 48 {
            Prng::from_saved([word(3), word(4), word(5)])
        } else {
            // pre-PR-8 checkpoint: modality dropout did not exist, so the
            // stream is at its seed position
            Prng::new(self.cfg.seed ^ 0x30D0)
        };
        Ok(())
    }

    fn diagnose_non_finite(&self) -> Option<String> {
        for cache in [&self.feat_m, &self.feat_t, &self.feat_s] {
            if let Err(e) = cache.check_finite() {
                return Some(e.to_string());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use came_biodata::presets;
    use came_encoders::FeatureConfig;
    use came_kg::{evaluate, EvalConfig, OneToNScorer, Split};

    fn small_features(bkg: &came_biodata::MultimodalBkg) -> ModalFeatures {
        ModalFeatures::build(
            bkg,
            &FeatureConfig {
                d_molecule: 16,
                d_text: 24,
                d_struct: 16,
                gin_layers: 2,
                compgcn_epochs: 2,
                seed: 3,
            },
        )
    }

    fn small_cfg() -> CamEConfig {
        CamEConfig {
            d_embed: 32,
            d_fusion: 32,
            n_filters: 4,
            kernel: 3,
            n_heads: 2,
            dropout: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let bkg = presets::tiny(0);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        let g = Graph::inference();
        let scores = model.forward(&g, &store, &[0, 1, 2], &[0, 1, 0]);
        let v = g.value(scores);
        assert_eq!(v.shape(), Shape::d2(3, bkg.dataset.num_entities()));
        assert!(!v.has_non_finite());
    }

    #[test]
    fn serve_preflight_passes_on_a_freshly_built_model() {
        let bkg = presets::tiny(6);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        assert_eq!(model.serve_preflight(), Ok(()));
    }

    #[test]
    fn all_ablations_build_and_run() {
        let bkg = presets::tiny(1);
        let f = small_features(&bkg);
        for ab in Ablation::all() {
            let mut store = ParamStore::new();
            let cfg = ab.apply(small_cfg());
            let model = CamE::new(&mut store, &bkg.dataset, &f, cfg);
            let g = Graph::inference();
            let scores = model.forward(&g, &store, &[0, 5], &[0, 2]);
            assert_eq!(
                g.shape(scores),
                Shape::d2(2, bkg.dataset.num_entities()),
                "{}",
                ab.label()
            );
        }
    }

    #[test]
    fn molecule_free_dataset_disables_molecular_modality() {
        let bkg = presets::omaha_mm_like(0);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        assert!(!model.cfg.use_molecule);
        let g = Graph::inference();
        let s = model.forward(&g, &store, &[0], &[0]);
        assert!(!g.value(s).has_non_finite());
    }

    #[test]
    fn short_training_learns_above_chance() {
        let bkg = presets::tiny(2);
        let d = &bkg.dataset;
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, d, &f, small_cfg());
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 64,
            lr: 3e-3,
            ..Default::default()
        };
        let hist = model.fit(&mut store, d, &cfg);
        assert!(hist.last().unwrap().loss < hist[0].loss);
        let filter = d.filter_index();
        let m = evaluate(
            &OneToNScorer::new(&model, &store),
            d,
            Split::Train,
            &filter,
            &EvalConfig {
                max_triples: Some(150),
                ..Default::default()
            },
        );
        // random MRR on ~110 entities is ~0.05
        assert!(m.mrr() > 0.2, "train MRR {} barely above chance", m.mrr());
    }

    #[test]
    fn modality_poor_dataset_trains_and_scores_degraded_heads() {
        let bkg = presets::modality_poor_like(5);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let cfg = CamEConfig {
            modality_dropout: (0.2, 0.2),
            contrastive_w: 0.05,
            ..small_cfg()
        };
        let model = CamE::new(&mut store, &bkg.dataset, &f, cfg);
        assert!(model.serving_degraded(), "preset should leave gaps");
        assert_eq!(
            model.serve_preflight(),
            Ok(()),
            "partial coverage is not an error"
        );
        let hist = model.fit(
            &mut store,
            &bkg.dataset,
            &TrainConfig {
                epochs: 3,
                batch_size: 64,
                ..Default::default()
            },
        );
        assert!(hist.iter().all(|e| e.loss.is_finite()));
        let degraded_head = (0..bkg.num_entities() as u32)
            .find(|&e| model.head_degraded(e))
            .expect("some head should be degraded");
        let g = Graph::inference();
        let s = model.forward(&g, &store, &[degraded_head], &[0]);
        assert!(!g.value(s).has_non_finite());
    }

    #[test]
    fn fallback_embeddings_learn_under_modality_dropout() {
        let bkg = presets::tiny(4);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let cfg = CamEConfig {
            modality_dropout: (0.5, 0.5),
            ..small_cfg()
        };
        let model = CamE::new(&mut store, &bkg.dataset, &f, cfg);
        assert!(
            store
                .value(model.fallback_t)
                .data()
                .iter()
                .all(|&x| x == 0.0),
            "fallbacks start at zero"
        );
        model.fit(
            &mut store,
            &bkg.dataset,
            &TrainConfig {
                epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
        );
        assert!(
            store
                .value(model.fallback_t)
                .data()
                .iter()
                .any(|&x| x != 0.0),
            "dropout should route gradients into the text fallback"
        );
        assert!(
            store
                .value(model.fallback_m)
                .data()
                .iter()
                .any(|&x| x != 0.0),
            "dropout should route gradients into the molecule fallback"
        );
    }

    #[test]
    fn full_coverage_without_dropout_is_bit_identical_to_plain_gather() {
        // the fallback path must not perturb the graph when unused
        let bkg = presets::tiny(7);
        let f = small_features(&bkg);
        let mut s1 = ParamStore::new();
        let m1 = CamE::new(&mut s1, &bkg.dataset, &f, small_cfg());
        let g = Graph::inference();
        let a = g.value(m1.forward(&g, &s1, &[0, 1, 2], &[0, 1, 0]));
        let g2 = Graph::inference();
        let b = g2.value(m1.forward(&g2, &s1, &[0, 1, 2], &[0, 1, 0]));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn contrastive_aux_loss_fires_only_when_weighted_and_eligible() {
        let bkg = presets::tiny(8);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        let g = Graph::inference();
        assert!(
            model.aux_loss(&g, &store, &[0, 1, 2], &[0, 0, 0]).is_none(),
            "w = 0 disables the term"
        );

        let mut store2 = ParamStore::new();
        let cfg = CamEConfig {
            contrastive_w: 0.1,
            ..small_cfg()
        };
        let model2 = CamE::new(&mut store2, &bkg.dataset, &f, cfg);
        let both: Vec<u32> = (0..bkg.num_entities() as u32)
            .filter(|&e| !model2.head_degraded(e))
            .take(4)
            .collect();
        assert!(both.len() >= 2, "tiny preset has dual-modality entities");
        let aux = model2.aux_loss(&g, &store2, &both, &vec![0; both.len()]);
        let v = g.value(aux.expect("eligible pairs should produce a loss"));
        assert!(v.data()[0].is_finite());
        // a single eligible head has no in-batch negatives
        assert!(model2.aux_loss(&g, &store2, &both[..1], &[0]).is_none());
    }

    #[test]
    fn state_roundtrip_covers_both_rng_streams() {
        let bkg = presets::tiny(9);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let cfg = CamEConfig {
            modality_dropout: (0.3, 0.3),
            ..small_cfg()
        };
        let model = CamE::new(&mut store, &bkg.dataset, &f, cfg);
        let before = model.state_bytes();
        assert_eq!(before.len(), 48);
        // advance both streams with a training-graph forward
        let g = Graph::new();
        let _ = model.forward(&g, &store, &[0, 1, 2, 3], &[0, 0, 1, 1]);
        let advanced = model.state_bytes();
        assert_ne!(
            before, advanced,
            "training forward should consume both RNGs"
        );
        model.restore_state(&before).unwrap();
        assert_eq!(model.state_bytes(), before);
        // legacy 24-byte checkpoints restore the dropout RNG and reset the
        // modality stream to its seed position
        model.restore_state(&before[..24]).unwrap();
        assert_eq!(model.state_bytes()[..24], before[..24]);
        assert!(model.restore_state(&before[..10]).is_err());
    }

    #[test]
    fn predict_topk_excludes_known_and_orders_scores() {
        let bkg = presets::tiny(3);
        let d = &bkg.dataset;
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, d, &f, small_cfg());
        let filter = d.filter_index();
        let t = d.train[0];
        let top = model.predict_topk(&store, t.h, t.r, 5, Some(&filter));
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted");
        }
        for (e, _) in &top {
            assert!(!filter.contains(t.h, t.r, *e), "known fact not excluded");
        }
        // unfiltered top-k may include the known tail
        let top_raw = model.predict_topk(&store, t.h, t.r, d.num_entities(), None);
        assert_eq!(top_raw.len(), d.num_entities());
    }
}
