//! The complete CamE model (Fig. 2): frozen modal features → MMF joint
//! representation + RIC interactive representations → multi-channel
//! convolutional scoring over all candidate tails → 1-N Bernoulli training
//! (Eqn. 16).

use std::sync::Mutex;

use came_encoders::{FrozenCache, FrozenError, ModalFeatures};
use came_kg::{EntityId, FilterIndex, KgDataset, OneToNModel, RelationId, TrainConfig};
use came_tensor::{EmbeddingTable, Graph, Linear, ParamId, ParamStore, Prng, Shape, Var};

use crate::config::CamEConfig;
use crate::mmf::{simple_multiplicative_fusion, MmfModule};
use crate::ric::RicModule;
use crate::scorer::ConvBranch;

/// Modality indices used throughout the model.
const MOD_MOLECULE: usize = 0;
const MOD_TEXT: usize = 1;
const MOD_STRUCT: usize = 2;

/// The CamE model. Construct with [`CamE::new`], train with
/// [`came_kg::train_one_to_n`] (or the [`CamE::fit`] convenience), evaluate
/// through [`came_kg::OneToNScorer`].
pub struct CamE {
    /// Configuration (including ablation switches).
    pub cfg: CamEConfig,
    n_entities: usize,
    // frozen-encoder output caches: computed once at construction, served
    // by row gathers per batch (invalidated if an encoder turns trainable)
    feat_m: FrozenCache,
    feat_t: FrozenCache,
    feat_s: FrozenCache,
    // learnable embeddings
    ent: EmbeddingTable,
    rel: EmbeddingTable,
    // Eqn. 9 projections into the fusion space
    w_mol: Linear,
    w_text: Linear,
    w_struct: Linear,
    mmf: Option<MmfModule>,
    // per-modality projections into the relation space for RIC
    ric_proj: Vec<Linear>,
    ric: RicModule,
    // Eqn. 15 projections W_t, W_m of interactive representations
    w_vt: Linear,
    w_vm: Linear,
    branch1: ConvBranch,
    branch2: ConvBranch,
    ent_bias: ParamId,
    // A Mutex (not RefCell) so a trained CamE is `Sync` and can be scored
    // concurrently from the serving tier's shard workers; training forwards
    // take the lock once per step, inference forwards never contend.
    dropout_rng: Mutex<Prng>,
}

impl CamE {
    /// Build a CamE over a dataset and its frozen modal features.
    ///
    /// # Panics
    /// Panics if the feature tables are misaligned with the dataset or
    /// contain NaN/inf — use [`CamE::try_new`] to handle those as values.
    pub fn new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        features: &ModalFeatures,
        cfg: CamEConfig,
    ) -> Self {
        match CamE::try_new(store, dataset, features, cfg) {
            Ok(model) => model,
            Err(e) => panic!("cannot build CamE: {e}"),
        }
    }

    /// Fallible constructor: rejects misaligned or non-finite feature tables
    /// with a typed [`FrozenError`] naming the offending modality, instead
    /// of asserting.
    pub fn try_new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        features: &ModalFeatures,
        cfg: CamEConfig,
    ) -> Result<Self, FrozenError> {
        let n = dataset.num_entities();
        features.try_validate(n)?;
        let mut cfg = cfg;
        if let Some(kind) = cfg.backend {
            came_tensor::set_backend(kind);
        }
        // a dataset without any molecule cannot use the molecular modality
        if !features.has_molecule.iter().any(|&m| m) {
            cfg.use_molecule = false;
        }
        let mut rng = Prng::new(cfg.seed);
        let (d_m, d_t, d_s) = features.dims();
        let (de, df) = (cfg.d_embed, cfg.d_fusion);

        // The paper pretrains structured embeddings with CompGCN (§III) and
        // only drops that initialisation in the Fig. 8(a) fairness setting;
        // mirror it: warm-start the entity table from the structural
        // features (overlapping columns; extra columns keep Xavier init).
        let ent = EmbeddingTable::new(store, "came.ent", n, de, &mut rng);
        if cfg.use_pretrained_struct {
            let src = &features.structural;
            let cols = d_s.min(de);
            let table = store.value_mut(ent.table);
            for row in 0..n {
                for c in 0..cols {
                    table.data_mut()[row * de + c] = src.data()[row * d_s + c];
                }
            }
        }
        let rel = EmbeddingTable::new(store, "came.rel", dataset.num_relations_aug(), de, &mut rng);
        let w_mol = Linear::no_bias(store, "came.w1", d_m, df, &mut rng);
        let w_text = Linear::no_bias(store, "came.w2", d_t, df, &mut rng);
        // the structural modality is either the frozen CompGCN features or
        // the learnable entity embedding (Fig. 8(a) fairness variant)
        let d_struct_in = if cfg.use_pretrained_struct { d_s } else { de };
        let w_struct = Linear::no_bias(store, "came.w3", d_struct_in, df, &mut rng);

        let n_active = Self::active_count(&cfg);
        let mmf = (cfg.use_mmf && n_active >= 2).then(|| {
            MmfModule::new(
                store,
                "came.mmf",
                n_active,
                df,
                cfg.n_heads,
                cfg.lambda,
                cfg.use_exchange.then_some(cfg.theta),
                cfg.use_tca,
                &mut rng,
            )
        });

        let ric_proj = vec![
            Linear::no_bias(store, "came.ric_proj_m", d_m, de, &mut rng),
            Linear::no_bias(store, "came.ric_proj_t", d_t, de, &mut rng),
            Linear::no_bias(store, "came.ric_proj_s", d_struct_in, de, &mut rng),
        ];
        let ric = RicModule::new(
            store,
            "came.ric",
            3,
            de,
            cfg.n_heads,
            cfg.lambda,
            cfg.use_ric && cfg.use_tca,
            &mut rng,
        );

        let w_vt = Linear::no_bias(store, "came.w_vt", 2 * de, df, &mut rng);
        let w_vm = Linear::no_bias(store, "came.w_vm", 2 * de, df, &mut rng);
        let b1_channels = 1 + usize::from(cfg.use_text) + usize::from(cfg.use_molecule);
        let branch1 = ConvBranch::new(
            store,
            "came.b1",
            b1_channels,
            df,
            cfg.n_filters,
            cfg.kernel,
            de,
            &mut rng,
        );
        let branch2 = ConvBranch::new(
            store,
            "came.b2",
            2,
            2 * de,
            cfg.n_filters,
            cfg.kernel,
            de,
            &mut rng,
        );
        let ent_bias = store.add_zeros("came.ent_bias", Shape::d1(n));
        let dropout_rng = Mutex::new(Prng::new(cfg.seed ^ 0xD409));

        let (feat_m, feat_t, feat_s) = features.caches();
        Ok(CamE {
            n_entities: n,
            feat_m,
            feat_t,
            feat_s,
            ent,
            rel,
            w_mol,
            w_text,
            w_struct,
            mmf,
            ric_proj,
            ric,
            w_vt,
            w_vm,
            branch1,
            branch2,
            ent_bias,
            dropout_rng,
            cfg,
        })
    }

    fn active_count(cfg: &CamEConfig) -> usize {
        1 + usize::from(cfg.use_text) + usize::from(cfg.use_molecule)
    }

    /// Number of entities scored per query.
    pub fn num_entities(&self) -> usize {
        self.n_entities
    }

    /// Convenience trainer: 1-N BCE via [`came_kg::train_one_to_n`].
    pub fn fit(
        &self,
        store: &mut ParamStore,
        dataset: &KgDataset,
        train_cfg: &TrainConfig,
    ) -> Vec<came_kg::EpochStats> {
        came_kg::train_one_to_n(self, store, dataset, train_cfg, |_, _, _| {})
    }

    /// Top-`k` tail predictions for `(h, r)`, optionally excluding known
    /// facts (used by the Fig. 7 case study).
    pub fn predict_topk(
        &self,
        store: &ParamStore,
        h: EntityId,
        r: RelationId,
        k: usize,
        exclude: Option<&FilterIndex>,
    ) -> Vec<(EntityId, f32)> {
        let g = Graph::inference();
        let scores = self.forward(&g, store, &[h.0], &[r.0]);
        // rank from a borrow of the logits — no tensor clone
        let mut ranked: Vec<(EntityId, f32)> = g.with_value(scores, |row| {
            row.data()
                .iter()
                .enumerate()
                .filter(|&(e, _)| exclude.is_none_or(|f| !f.contains(h, r, EntityId(e as u32))))
                .map(|(e, &s)| (EntityId(e as u32), s))
                .collect()
        });
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(k);
        ranked
    }

    /// Serving preflight over the frozen encoder caches this model gathers
    /// from: each active modality's cache must be fresh, finite, and aligned
    /// with the served entity space. Run once when the model goes behind a
    /// scoring endpoint; per-request gathers then skip validation entirely.
    pub fn serve_preflight(&self) -> Result<(), FrozenError> {
        let mut caches = vec![];
        if self.cfg.use_molecule {
            caches.push(&self.feat_m);
        }
        if self.cfg.use_text {
            caches.push(&self.feat_t);
        }
        if self.cfg.use_pretrained_struct {
            caches.push(&self.feat_s);
        }
        for cache in caches {
            cache.preflight(self.n_entities)?;
        }
        Ok(())
    }
}

impl OneToNModel for CamE {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let cfg = &self.cfg;
        let mut rng = self.dropout_rng.lock().unwrap();

        // ---- frozen-gather: embedding lookups + cached-encoder rows ----
        let gather = came_obs::span("phase.frozen_gather");
        let r_emb = self.rel.lookup(g, store, rels); // [B, d_e]
        let e_h = self.ent.lookup(g, store, heads); // [B, d_e]
        let m_raw = cfg.use_molecule.then(|| g.input(self.feat_m.rows(heads)));
        let t_raw = cfg.use_text.then(|| g.input(self.feat_t.rows(heads)));
        let s_raw = if cfg.use_pretrained_struct {
            g.input(self.feat_s.rows(heads))
        } else {
            e_h
        };
        drop(gather);

        // ---- MMF: multimodal joint representation h_f ------------------
        // (`phase.tca` spans opened inside the fuse nest as children, so
        // `phase.mmf` self-time excludes the co-attention cost)
        let mmf_span = came_obs::span("phase.mmf");
        let mut fused_inputs = Vec::with_capacity(3);
        if let Some(m) = m_raw {
            fused_inputs.push(self.w_mol.apply(g, store, m));
        }
        if let Some(t) = t_raw {
            fused_inputs.push(self.w_text.apply(g, store, t));
        }
        fused_inputs.push(self.w_struct.apply(g, store, s_raw));
        let h_f = match &self.mmf {
            Some(mmf) if fused_inputs.len() >= 2 => mmf.fuse(g, store, &fused_inputs),
            _ => simple_multiplicative_fusion(g, &fused_inputs),
        };
        let h_f = g.dropout(h_f, cfg.dropout, &mut rng);
        drop(mmf_span);

        // ---- RIC: interactive representations v_ω ----------------------
        let ric_span = came_obs::span("phase.ric");
        let interact = |idx: usize, raw: Var| -> Var {
            let q = self.ric_proj[idx].apply(g, store, raw);
            self.ric.interact(g, store, idx, q, r_emb)
        };
        let v_m = m_raw.map(|m| interact(MOD_MOLECULE, m));
        let v_t = t_raw.map(|t| interact(MOD_TEXT, t));
        let v_s = interact(MOD_STRUCT, s_raw);
        let v_0 = g.concat(&[e_h, r_emb], 1);
        drop(ric_span);

        // ---- Eqn. 15: two convolution branches --------------------------
        let _scorer_span = came_obs::span("phase.scorer");
        let mut b1_channels = vec![h_f];
        if let Some(v_t) = v_t {
            b1_channels.push(self.w_vt.apply(g, store, v_t));
        }
        if let Some(v_m) = v_m {
            b1_channels.push(self.w_vm.apply(g, store, v_m));
        }
        let u1 = self.branch1.apply(g, store, &b1_channels);
        let u2 = self.branch2.apply(g, store, &[v_s, v_0]);
        let u1 = g.dropout(u1, cfg.dropout, &mut rng);
        let u2 = g.dropout(u2, cfg.dropout, &mut rng);

        // scores over all candidate tails
        let hidden = g.add(u1, u2); // [B, d_e]
        let all_ent = g.transpose(self.ent.full(g, store), 0, 1); // [d_e, N]
        let scores = g.matmul(hidden, all_ent);
        g.add(scores, g.param(store, self.ent_bias))
    }

    // Checkpointing: the only model-side mutable state outside the
    // ParamStore is the dropout RNG; a bit-identical resume must restore its
    // exact stream position.
    fn state_bytes(&self) -> Vec<u8> {
        let words = self.dropout_rng.lock().unwrap().save_state();
        let mut out = Vec::with_capacity(24);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn restore_state(&self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() != 24 {
            return Err(format!(
                "CamE checkpoint state must be 24 bytes (dropout RNG), got {}",
                bytes.len()
            ));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        *self.dropout_rng.lock().unwrap() = Prng::from_saved([word(0), word(1), word(2)]);
        Ok(())
    }

    fn diagnose_non_finite(&self) -> Option<String> {
        for cache in [&self.feat_m, &self.feat_t, &self.feat_s] {
            if let Err(e) = cache.check_finite() {
                return Some(e.to_string());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use came_biodata::presets;
    use came_encoders::FeatureConfig;
    use came_kg::{evaluate, EvalConfig, OneToNScorer, Split};

    fn small_features(bkg: &came_biodata::MultimodalBkg) -> ModalFeatures {
        ModalFeatures::build(
            bkg,
            &FeatureConfig {
                d_molecule: 16,
                d_text: 24,
                d_struct: 16,
                gin_layers: 2,
                compgcn_epochs: 2,
                seed: 3,
            },
        )
    }

    fn small_cfg() -> CamEConfig {
        CamEConfig {
            d_embed: 32,
            d_fusion: 32,
            n_filters: 4,
            kernel: 3,
            n_heads: 2,
            dropout: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let bkg = presets::tiny(0);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        let g = Graph::inference();
        let scores = model.forward(&g, &store, &[0, 1, 2], &[0, 1, 0]);
        let v = g.value(scores);
        assert_eq!(v.shape(), Shape::d2(3, bkg.dataset.num_entities()));
        assert!(!v.has_non_finite());
    }

    #[test]
    fn serve_preflight_passes_on_a_freshly_built_model() {
        let bkg = presets::tiny(6);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        assert_eq!(model.serve_preflight(), Ok(()));
    }

    #[test]
    fn all_ablations_build_and_run() {
        let bkg = presets::tiny(1);
        let f = small_features(&bkg);
        for ab in Ablation::all() {
            let mut store = ParamStore::new();
            let cfg = ab.apply(small_cfg());
            let model = CamE::new(&mut store, &bkg.dataset, &f, cfg);
            let g = Graph::inference();
            let scores = model.forward(&g, &store, &[0, 5], &[0, 2]);
            assert_eq!(
                g.shape(scores),
                Shape::d2(2, bkg.dataset.num_entities()),
                "{}",
                ab.label()
            );
        }
    }

    #[test]
    fn molecule_free_dataset_disables_molecular_modality() {
        let bkg = presets::omaha_mm_like(0);
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, &bkg.dataset, &f, small_cfg());
        assert!(!model.cfg.use_molecule);
        let g = Graph::inference();
        let s = model.forward(&g, &store, &[0], &[0]);
        assert!(!g.value(s).has_non_finite());
    }

    #[test]
    fn short_training_learns_above_chance() {
        let bkg = presets::tiny(2);
        let d = &bkg.dataset;
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, d, &f, small_cfg());
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 64,
            lr: 3e-3,
            ..Default::default()
        };
        let hist = model.fit(&mut store, d, &cfg);
        assert!(hist.last().unwrap().loss < hist[0].loss);
        let filter = d.filter_index();
        let m = evaluate(
            &OneToNScorer::new(&model, &store),
            d,
            Split::Train,
            &filter,
            &EvalConfig {
                max_triples: Some(150),
                ..Default::default()
            },
        );
        // random MRR on ~110 entities is ~0.05
        assert!(m.mrr() > 0.2, "train MRR {} barely above chance", m.mrr());
    }

    #[test]
    fn predict_topk_excludes_known_and_orders_scores() {
        let bkg = presets::tiny(3);
        let d = &bkg.dataset;
        let f = small_features(&bkg);
        let mut store = ParamStore::new();
        let model = CamE::new(&mut store, d, &f, small_cfg());
        let filter = d.filter_index();
        let t = d.train[0];
        let top = model.predict_topk(&store, t.h, t.r, 5, Some(&filter));
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted");
        }
        for (e, _) in &top {
            assert!(!filter.contains(t.h, t.r, *e), "known fact not excluded");
        }
        // unfiltered top-k may include the known tail
        let top_raw = model.predict_topk(&store, t.h, t.r, d.num_entities(), None);
        assert_eq!(top_raw.len(), d.num_entities());
    }
}
