//! The MultiModal TCA Fusion module (MMF, §IV-B): pairwise TCA matching
//! (Eqn. 9), exchanging fusion (Eqns. 10–12), and low-rank bilinear fusion
//! (Eqn. 13) producing the multimodal joint representation `h_f`.

use came_tensor::{Activation, Graph, ParamId, ParamStore, Prng, Shape, Tensor, Var};

use crate::tca::TcaModule;

/// The EX operation (Eqns. 10–11): positions whose layer-normalised
/// activation falls below `θ` are replaced by the other modality's value.
/// The exchange mask is computed from forward values (a straight-through
/// non-differentiable selection, as in channel-exchanging networks);
/// gradients flow through whichever value was kept.
pub fn exchange(g: &Graph, x: Var, y: Var, theta: f32) -> (Var, Var) {
    assert_eq!(g.shape(x), g.shape(y), "EX requires equal shapes");
    let ln_x = g.layer_norm(x, 1e-5);
    let ln_y = g.layer_norm(y, 1e-5);
    // read the normalised activations in place (no tensor clone); the mask
    // tensors are built inside the borrow and become inputs afterwards
    let masks = |ln: Var| {
        g.with_value(ln, |t| {
            let take = t.map(|v| if v < theta { 1.0 } else { 0.0 });
            let keep = take.map(|m| 1.0 - m);
            (keep, take)
        })
    };
    let (keep_x_t, take_y_t) = masks(ln_x);
    let (keep_y_t, take_x_t) = masks(ln_y);
    let keep_x = g.input(keep_x_t);
    let take_y = g.input(take_y_t);
    let keep_y = g.input(keep_y_t);
    let take_x = g.input(take_x_t);
    let x_new = g.add(g.mul(x, keep_x), g.mul(y, take_y));
    let y_new = g.add(g.mul(y, keep_y), g.mul(x, take_x));
    (x_new, y_new)
}

/// One low-rank bilinear pair term of Eqn. 13:
/// `z_i = Pᵀ(σ(U_iᵀ x̃) ∘ σ(V_iᵀ ỹ)) + b`.
struct BilinearPair {
    u: ParamId,
    v: ParamId,
}

/// The full MMF module over the set of active modalities.
pub struct MmfModule {
    /// One TCA per modality pair (None in the "w/o TCA" ablation).
    tca: Vec<Option<TcaModule>>,
    pairs: Vec<(usize, usize)>,
    bilinear: Vec<BilinearPair>,
    /// Shared projection P of Eqn. 13.
    p: ParamId,
    /// Shared bias b of Eqn. 13.
    b: ParamId,
    /// Exchange threshold θ; None disables EX (the "w/o EX" ablation).
    theta: Option<f32>,
    d_fusion: usize,
}

impl MmfModule {
    /// Build over `n_modalities` (each already projected to `d_fusion`).
    /// Pairs are all unordered combinations, matching Eqn. 9's three pairs
    /// for three modalities.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        n_modalities: usize,
        d_fusion: usize,
        n_heads: usize,
        lambda: f32,
        theta: Option<f32>,
        use_tca: bool,
        rng: &mut Prng,
    ) -> Self {
        assert!(n_modalities >= 2, "MMF needs at least two modalities");
        let mut pairs = Vec::new();
        for i in 0..n_modalities {
            for j in i + 1..n_modalities {
                pairs.push((i, j));
            }
        }
        let tca = pairs
            .iter()
            .enumerate()
            .map(|(k, _)| {
                use_tca.then(|| {
                    TcaModule::new(
                        store,
                        &format!("{name}.tca{k}"),
                        d_fusion,
                        n_heads,
                        lambda,
                        rng,
                    )
                })
            })
            .collect();
        let bilinear = pairs
            .iter()
            .enumerate()
            .map(|(k, _)| BilinearPair {
                u: store.add_xavier(
                    format!("{name}.bl{k}.u"),
                    Shape::d2(d_fusion, d_fusion),
                    rng,
                ),
                v: store.add_xavier(
                    format!("{name}.bl{k}.v"),
                    Shape::d2(d_fusion, d_fusion),
                    rng,
                ),
            })
            .collect();
        let p = store.add_xavier(format!("{name}.p"), Shape::d2(d_fusion, d_fusion), rng);
        let b = store.add_zeros(format!("{name}.b"), Shape::d1(d_fusion));
        MmfModule {
            tca,
            pairs,
            bilinear,
            p,
            b,
            theta,
            d_fusion,
        }
    }

    /// Fuse the projected modal vectors (each `[B, d_fusion]`) into the
    /// joint representation `h_f: [B, d_fusion]`.
    pub fn fuse(&self, g: &Graph, store: &ParamStore, modalities: &[Var]) -> Var {
        assert!(
            modalities.len() >= 2,
            "MMF fuse needs at least two modalities"
        );
        let p = g.param(store, self.p);
        let bias = g.param(store, self.b);
        let mut h_f: Option<Var> = None;
        for (k, &(i, j)) in self.pairs.iter().enumerate() {
            if i >= modalities.len() || j >= modalities.len() {
                continue;
            }
            let (x0, y0) = (modalities[i], modalities[j]);
            // pairwise TCA matching (Eqn. 9); identity in the ablation
            let (xh, yh) = match &self.tca[k] {
                Some(tca) => tca.apply(g, store, x0, y0),
                None => (x0, y0),
            };
            // exchanging fusion (Eqn. 12)
            let (xt, yt) = match self.theta {
                Some(theta) => exchange(g, xh, yh, theta),
                None => (xh, yh),
            };
            // low-rank bilinear term (Eqn. 13) on the fused GEMM+bias+act
            // kernel: σ gates in one pass each, then projection + bias
            let bl = &self.bilinear[k];
            let left = g.gemm_bias_act(xt, g.param(store, bl.u), None, Activation::Sigmoid);
            let right = g.gemm_bias_act(yt, g.param(store, bl.v), None, Activation::Sigmoid);
            let z = g.gemm_bias_act(g.mul(left, right), p, Some(bias), Activation::Identity);
            // Ω: Hadamard product over the pair terms
            h_f = Some(match h_f {
                Some(acc) => g.mul(acc, z),
                None => z,
            });
        }
        h_f.expect("at least one modality pair")
    }

    /// Fusion width.
    pub fn d_fusion(&self) -> usize {
        self.d_fusion
    }

    /// Number of modality pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// The "w/o MMF" ablation: simple elementwise multiplication of the
/// projected modalities (the paper replaces MMF "by simple multiplication").
pub fn simple_multiplicative_fusion(g: &Graph, modalities: &[Var]) -> Var {
    assert!(!modalities.is_empty());
    let mut acc = modalities[0];
    for &m in &modalities[1..] {
        acc = g.mul(acc, m);
    }
    acc
}

/// Tensor row-gather helper for frozen feature tables: builds the `[B, d]`
/// input of a batch directly on the CPU (no gradient flows into frozen
/// features, so they never need to live on the tape).
pub fn frozen_rows(table: &Tensor, ids: &[u32]) -> Tensor {
    let d = table.shape().at(1);
    let n = table.shape().at(0);
    let mut out = Tensor::zeros(Shape::d2(ids.len(), d));
    for (row, &id) in ids.iter().enumerate() {
        assert!((id as usize) < n, "frozen feature id {id} out of {n}");
        out.data_mut()[row * d..(row + 1) * d]
            .copy_from_slice(&table.data()[id as usize * d..(id as usize + 1) * d]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_swaps_low_attention_positions() {
        let g = Graph::new();
        // x's first element is far below its lane mean -> exchanged
        let x = g.input(Tensor::from_vec(
            Shape::d2(1, 4),
            vec![-10.0, 1.0, 1.2, 0.8],
        ));
        let y = g.input(Tensor::from_vec(Shape::d2(1, 4), vec![5.0, 6.0, 7.0, 8.0]));
        let (xn, _) = exchange(&g, x, y, -0.5);
        let xv = g.value(xn);
        assert_eq!(xv.data()[0], 5.0, "low-attention slot must take y's value");
        assert_eq!(&xv.data()[1..], &[1.0, 1.2, 0.8], "kept slots unchanged");
    }

    #[test]
    fn exchange_with_very_low_theta_is_identity() {
        let g = Graph::new();
        let xv = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let yv = Tensor::from_vec(Shape::d2(2, 3), vec![9.0; 6]);
        let x = g.input(xv.clone());
        let y = g.input(yv.clone());
        let (xn, yn) = exchange(&g, x, y, -100.0);
        assert_eq!(g.value(xn).data(), xv.data());
        assert_eq!(g.value(yn).data(), yv.data());
    }

    #[test]
    fn exchange_preserves_value_multiset_per_position() {
        // at every position the pair (x', y') is a permutation of (x, y) or
        // a double-take; values never come from elsewhere
        let mut rng = Prng::new(0);
        let g = Graph::new();
        let xv = Tensor::randn(Shape::d2(3, 6), 1.0, &mut rng);
        let yv = Tensor::randn(Shape::d2(3, 6), 1.0, &mut rng);
        let x = g.input(xv.clone());
        let y = g.input(yv.clone());
        let (xn, yn) = exchange(&g, x, y, 0.0);
        let (xn, yn) = (g.value(xn), g.value(yn));
        for i in 0..xv.numel() {
            let from_pair = |v: f32| v == xv.data()[i] || v == yv.data()[i];
            assert!(from_pair(xn.data()[i]));
            assert!(from_pair(yn.data()[i]));
        }
    }

    fn mmf(theta: Option<f32>, use_tca: bool) -> (ParamStore, MmfModule) {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = MmfModule::new(&mut store, "mmf", 3, 8, 2, 5.0, theta, use_tca, &mut rng);
        (store, m)
    }

    #[test]
    fn fuse_produces_fusion_width() {
        let (store, m) = mmf(Some(-0.5), true);
        assert_eq!(m.n_pairs(), 3);
        let mut rng = Prng::new(2);
        let g = Graph::new();
        let mods: Vec<Var> = (0..3)
            .map(|_| g.input(Tensor::randn(Shape::d2(4, 8), 1.0, &mut rng)))
            .collect();
        let h = m.fuse(&g, &store, &mods);
        assert_eq!(g.shape(h), Shape::d2(4, 8));
    }

    #[test]
    fn ablations_change_the_output() {
        let mut rng = Prng::new(3);
        let mods_v: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(Shape::d2(2, 8), 1.0, &mut rng))
            .collect();
        let run = |theta: Option<f32>, use_tca: bool| {
            let (store, m) = mmf(theta, use_tca);
            let g = Graph::new();
            let mods: Vec<Var> = mods_v.iter().map(|t| g.input(t.clone())).collect();
            g.value(m.fuse(&g, &store, &mods))
        };
        let full = run(Some(-0.5), true);
        let no_ex = run(None, true);
        let no_tca = run(Some(-0.5), false);
        assert_ne!(full.data(), no_ex.data());
        assert_ne!(full.data(), no_tca.data());
    }

    #[test]
    fn gradients_reach_modal_inputs() {
        let (mut store, m) = mmf(Some(-0.5), true);
        let mut rng = Prng::new(4);
        let g = Graph::new();
        let mods: Vec<Var> = (0..3)
            .map(|_| g.input(Tensor::randn(Shape::d2(2, 8), 1.0, &mut rng)))
            .collect();
        let h = m.fuse(&g, &store, &mods);
        let loss = g.sum_all(g.square(h));
        g.backward(loss, &mut store);
        for (i, &mv) in mods.iter().enumerate() {
            assert!(g.grad(mv).norm2() > 0.0, "modality {i} got no gradient");
        }
    }

    #[test]
    fn simple_fusion_is_plain_product() {
        let g = Graph::new();
        let a = g.input(Tensor::from_slice(&[2.0, 3.0]).reshape(Shape::d2(1, 2)));
        let b = g.input(Tensor::from_slice(&[4.0, 5.0]).reshape(Shape::d2(1, 2)));
        let c = g.input(Tensor::from_slice(&[0.5, 2.0]).reshape(Shape::d2(1, 2)));
        let h = simple_multiplicative_fusion(&g, &[a, b, c]);
        assert_eq!(g.value(h).data(), &[4.0, 30.0]);
    }

    #[test]
    fn frozen_rows_gathers() {
        let t = Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = frozen_rows(&t, &[2, 0]);
        assert_eq!(r.data(), &[5.0, 6.0, 1.0, 2.0]);
    }
}
