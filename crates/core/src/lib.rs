//! # came — triple Co-attention multimodal Embedding
//!
//! A from-scratch Rust implementation of **CamE** (Xu et al., *Multimodal
//! Biological Knowledge Graph Completion via Triple Co-attention Mechanism*,
//! ICDE 2023): multimodal biological knowledge-graph completion that fuses
//! molecular structure, textual description, and structured knowledge
//! through a Triple Co-Attention operator.
//!
//! Architecture map (paper section → module):
//!
//! - §IV-A TCA operator (Eqns. 1–8) → [`tca::TcaModule`]
//! - §IV-B MMF: pairwise TCA matching, exchanging fusion, low-rank bilinear
//!   fusion (Eqns. 9–13) → [`mmf::MmfModule`], [`mmf::exchange`]
//! - §IV-C RIC (Eqn. 14) and the convolutional scorer (Eqn. 15) →
//!   [`ric::RicModule`], [`scorer::ConvBranch`]
//! - §IV-D 1-N Bernoulli optimisation (Eqn. 16) → [`came_kg::train_one_to_n`]
//! - §V-F ablation variants → [`config::Ablation`]
//!
//! ```no_run
//! use came::{CamE, CamEConfig};
//! use came_biodata::presets;
//! use came_encoders::{FeatureConfig, ModalFeatures};
//! use came_kg::{evaluate, EvalConfig, OneToNScorer, Split, TrainConfig};
//! use came_tensor::ParamStore;
//!
//! let bkg = presets::drkg_mm_like(0);
//! let features = ModalFeatures::build(&bkg, &FeatureConfig::default());
//! let mut store = ParamStore::new();
//! let model = CamE::new(&mut store, &bkg.dataset, &features, CamEConfig::default());
//! model.fit(&mut store, &bkg.dataset, &TrainConfig::default());
//! let metrics = evaluate(
//!     &OneToNScorer::new(&model, &store),
//!     &bkg.dataset,
//!     Split::Test,
//!     &bkg.dataset.filter_index(),
//!     &EvalConfig::default(),
//! );
//! println!("MRR {:.3}", metrics.mrr());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod mmf;
pub mod model;
pub mod ric;
pub mod scorer;
pub mod tca;

pub use config::{Ablation, CamEConfig};
pub use mmf::{exchange, simple_multiplicative_fusion, MmfModule};
pub use model::CamE;
pub use ric::RicModule;
pub use scorer::{map_dims, ConvBranch};
pub use tca::TcaModule;
