//! The convolutional scoring head (§IV-C, Eqn. 15).
//!
//! Modality-joint and interactive representations are reshaped into 2-D maps,
//! stacked as channels of a multi-view feature map, convolved, and projected
//! to entity space; scores over all candidate tails come from an inner
//! product with the entity table plus a per-entity bias (ConvE convention).
//!
//! Faithfulness note: Eqn. 15's first term ends in `W₁ h_s`, which is
//! constant in the candidate tail and therefore cannot influence the ranking
//! the task is scored on; we read it as a typo for the tail table (both
//! branches project to entity space and score against candidate tails) and
//! document the substitution in DESIGN.md.

use came_tensor::{Activation, Conv2dLayer, Graph, Linear, ParamStore, Prng, Shape, Var};

/// Factor `d` into the most square `(h, w)` with `h ≤ w` and `h·w = d`.
///
/// # Panics
/// Panics if `d == 0`.
pub fn map_dims(d: usize) -> (usize, usize) {
    assert!(d > 0, "cannot reshape zero-width vectors");
    let mut h = (d as f64).sqrt() as usize;
    while h > 1 && d % h != 0 {
        h -= 1;
    }
    (h, d / h)
}

/// One convolution branch: stack `channels` vectors as a `[B, C, H, W]` map,
/// convolve, flatten, project to `d_out`.
pub struct ConvBranch {
    conv: Conv2dLayer,
    fc: Linear,
    h: usize,
    w: usize,
    n_channels: usize,
    d_in: usize,
}

impl ConvBranch {
    /// A branch for `n_channels` channels of `d_in`-wide vectors, `kernel`
    /// sized filters, projecting to `d_out`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        n_channels: usize,
        d_in: usize,
        n_filters: usize,
        kernel: usize,
        d_out: usize,
        rng: &mut Prng,
    ) -> Self {
        let (h, w) = map_dims(d_in);
        assert!(
            kernel <= h && kernel <= w,
            "kernel {kernel} larger than {h}x{w} map of width {d_in}"
        );
        let (oh, ow) = (h - kernel + 1, w - kernel + 1);
        let conv = Conv2dLayer::new(
            store,
            &format!("{name}.conv"),
            n_channels,
            n_filters,
            kernel,
            kernel,
            rng,
        );
        let fc = Linear::new(
            store,
            &format!("{name}.fc"),
            n_filters * oh * ow,
            d_out,
            rng,
        );
        ConvBranch {
            conv,
            fc,
            h,
            w,
            n_channels,
            d_in,
        }
    }

    /// Apply to `channels` (each `[B, d_in]`) producing `[B, d_out]`.
    pub fn apply(&self, g: &Graph, store: &ParamStore, channels: &[Var]) -> Var {
        assert_eq!(
            channels.len(),
            self.n_channels,
            "branch built for {} channels, got {}",
            self.n_channels,
            channels.len()
        );
        let b = g.shape(channels[0]).at(0);
        let maps: Vec<Var> = channels
            .iter()
            .map(|&c| {
                assert_eq!(g.shape(c), Shape::d2(b, self.d_in), "channel width");
                g.reshape(c, Shape::d4(b, 1, self.h, self.w))
            })
            .collect();
        let stacked = if maps.len() == 1 {
            maps[0]
        } else {
            g.concat(&maps, 1)
        };
        let conved = g.relu(self.conv.apply(g, store, stacked));
        let flat_len = {
            let s = g.shape(conved);
            s.at(1) * s.at(2) * s.at(3)
        };
        let flat = g.reshape(conved, Shape::d2(b, flat_len));
        // fused GEMM + bias + ReLU head
        self.fc.apply_act(g, store, flat, Activation::Relu)
    }

    /// Channel count this branch expects.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_tensor::Tensor;

    #[test]
    fn map_dims_factors_squarely() {
        assert_eq!(map_dims(64), (8, 8));
        assert_eq!(map_dims(200), (10, 20)); // the paper's d_f = 200 map
        assert_eq!(map_dims(48), (6, 8));
        assert_eq!(map_dims(7), (1, 7));
        assert_eq!(map_dims(128), (8, 16));
    }

    #[test]
    fn branch_output_shape() {
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let br = ConvBranch::new(&mut store, "b", 3, 64, 8, 3, 32, &mut rng);
        let g = Graph::new();
        let chans: Vec<Var> = (0..3)
            .map(|_| g.input(Tensor::randn(Shape::d2(5, 64), 1.0, &mut rng)))
            .collect();
        let out = br.apply(&g, &store, &chans);
        assert_eq!(g.shape(out), Shape::d2(5, 32));
    }

    #[test]
    fn single_channel_branch_works() {
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let br = ConvBranch::new(&mut store, "b", 1, 16, 4, 2, 8, &mut rng);
        let g = Graph::new();
        let c = g.input(Tensor::randn(Shape::d2(2, 16), 1.0, &mut rng));
        let out = br.apply(&g, &store, &[c]);
        assert_eq!(g.shape(out), Shape::d2(2, 8));
    }

    #[test]
    fn gradients_flow_through_branch() {
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let br = ConvBranch::new(&mut store, "b", 2, 36, 4, 3, 16, &mut rng);
        let g = Graph::new();
        let c0 = g.input(Tensor::randn(Shape::d2(3, 36), 1.0, &mut rng));
        let c1 = g.input(Tensor::randn(Shape::d2(3, 36), 1.0, &mut rng));
        let out = br.apply(&g, &store, &[c0, c1]);
        let loss = g.sum_all(g.square(out));
        g.backward(loss, &mut store);
        assert!(g.grad(c0).norm2() > 0.0);
        assert!(g.grad(c1).norm2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_rejected() {
        let mut rng = Prng::new(3);
        let mut store = ParamStore::new();
        let _ = ConvBranch::new(&mut store, "b", 1, 6, 2, 4, 4, &mut rng);
    }
}
