//! The Triple Co-Attention (TCA) operator — the paper's core contribution
//! (§IV-A, Eqns. 1–8).
//!
//! TCA takes two modality vectors `Q, D ∈ R^d` and learns three affinity
//! matrices per head:
//!
//! - a *co-affinity* matrix `M_co = σ(Q W_co^q) ⊗ σ(D W_co^d)` (Eqn. 1)
//!   whose row/column softmaxes attend each input over the other (Eqns. 2–3),
//! - two *intra-affinity* matrices that share the `W_co` projections
//!   ("to restrict the representation to the same subspace", Eqn. 4) and
//!   produce self-attention terms (Eqn. 5).
//!
//! Co- and intra-attention outputs are summed (Eqn. 6); multiple heads are
//! concatenated and projected back (Eqn. 7), each head scaled by its own
//! temperature `τ_i = τ∘ · (λ · i)` with a *learnable* `τ∘` (Eqn. 8).
//!
//! Note on dimensions: the paper writes `Q ∈ R^{d1}, D ∈ R^{d2}` but sums
//! `Q_co ∈ R^{d2}` with `Q_in ∈ R^{d1}` (Eqn. 6), which only type-checks when
//! `d1 = d2`; every use in the paper first projects both inputs to a common
//! width (Eqn. 9), so this implementation requires equal input widths.

use came_tensor::{Activation, Graph, ParamId, ParamStore, Prng, Shape, Var};

/// Parameters of one TCA head.
struct TcaHead {
    w_co_q: ParamId,
    w_co_d: ParamId,
    w_in_q: ParamId,
    w_in_d: ParamId,
}

/// Multi-head TCA operator over `d`-dimensional input pairs.
pub struct TcaModule {
    heads: Vec<TcaHead>,
    w_head_q: ParamId,
    w_head_d: ParamId,
    /// Learnable base temperature τ∘ (Eqn. 8).
    tau0: ParamId,
    /// Fixed head-interval hyper-parameter λ (Eqn. 8).
    lambda: f32,
    dim: usize,
}

impl TcaModule {
    /// A TCA module with `n_heads` heads over `dim`-wide inputs.
    ///
    /// # Panics
    /// Panics if `n_heads == 0`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        n_heads: usize,
        lambda: f32,
        rng: &mut Prng,
    ) -> Self {
        assert!(n_heads > 0, "TCA needs at least one head");
        let heads = (0..n_heads)
            .map(|h| TcaHead {
                w_co_q: store.add_xavier(format!("{name}.h{h}.w_co_q"), Shape::d2(dim, dim), rng),
                w_co_d: store.add_xavier(format!("{name}.h{h}.w_co_d"), Shape::d2(dim, dim), rng),
                w_in_q: store.add_xavier(format!("{name}.h{h}.w_in_q"), Shape::d2(dim, dim), rng),
                w_in_d: store.add_xavier(format!("{name}.h{h}.w_in_d"), Shape::d2(dim, dim), rng),
            })
            .collect();
        let w_head_q = store.add_xavier(
            format!("{name}.w_head_q"),
            Shape::d2(n_heads * dim, dim),
            rng,
        );
        let w_head_d = store.add_xavier(
            format!("{name}.w_head_d"),
            Shape::d2(n_heads * dim, dim),
            rng,
        );
        let tau0 = store.add(format!("{name}.tau0"), came_tensor::Tensor::scalar(1.0));
        TcaModule {
            heads,
            w_head_q,
            w_head_d,
            tau0,
            lambda,
            dim,
        }
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.heads.len()
    }

    /// Input/output width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Apply the operator: `(Q_tca, D_tca) = TCA(Q, D)` with
    /// `Q, D: [B, d]` → outputs `[B, d]`.
    pub fn apply(&self, g: &Graph, store: &ParamStore, q: Var, d: Var) -> (Var, Var) {
        // Nested inside phase.mmf / phase.ric; span self-time accounting
        // keeps the co-attention cost out of the enclosing phase's total.
        let _span = came_obs::span("phase.tca");
        let b = g.shape(q).at(0);
        let dim = self.dim;
        assert_eq!(g.shape(q), Shape::d2(b, dim), "TCA Q shape");
        assert_eq!(g.shape(d), Shape::d2(b, dim), "TCA D shape");

        let tau0 = g.param(store, self.tau0);
        // keep the learnable temperature away from zero for stability
        let tau0 = g.add(g.square(tau0), g.constant(1e-2));

        // Column views consumed by the fused attention below.
        let q_col = g.reshape(q, Shape::d3(b, dim, 1));
        let d_col = g.reshape(d, Shape::d3(b, dim, 1));

        let mut q_heads = Vec::with_capacity(self.heads.len());
        let mut d_heads = Vec::with_capacity(self.heads.len());
        for (i, head) in self.heads.iter().enumerate() {
            // Eqn. 8: τ_i = τ∘ · (λ · i); heads are 1-indexed in the paper
            let tau_i = g.scale(tau0, self.lambda * (i + 1) as f32);

            // shared projections (Eqn. 1 / Eqn. 4) on the fused GEMM+σ kernel
            let q_co = g.gemm_bias_act(q, g.param(store, head.w_co_q), None, Activation::Sigmoid);
            let d_co = g.gemm_bias_act(d, g.param(store, head.w_co_d), None, Activation::Sigmoid);
            let q_in = g.gemm_bias_act(q, g.param(store, head.w_in_q), None, Activation::Sigmoid);
            let d_in = g.gemm_bias_act(d, g.param(store, head.w_in_d), None, Activation::Sigmoid);

            // Every attention application below is `softmax(M, axis) · vec`
            // with the normalised axis placed *last* by ordering the outer
            // product accordingly, so the fully fused outer-attention kernel
            // covers all four terms: the affinity matrix and its softmax are
            // built inside the kernel and never become tape nodes.
            //
            // Eqn. 2–3: Q_co = Qᵀ·softmax_col(M_co) with
            // M_co[i,j] = q_co[i]·d_co[j]/τ; swapping the outer product gives
            // M_co ᵀ whose row softmax equals the column softmax of M_co.
            let q_co_out = g.reshape(
                g.outer_attention(d_co, q_co, q_col, tau_i),
                Shape::d2(b, dim),
            );
            // D_co = softmax_row(M_co)·D is already row-normalised
            let d_co_out = g.reshape(
                g.outer_attention(q_co, d_co, d_col, tau_i),
                Shape::d2(b, dim),
            );

            // intra-affinity (Eqns. 4–5), sharing W_co with the co path;
            // both are column-normalised, hence the swapped outer products
            let q_in_out = g.reshape(
                g.outer_attention(q_in, q_co, q_col, tau_i),
                Shape::d2(b, dim),
            );
            let d_in_out = g.reshape(
                g.outer_attention(d_in, d_co, d_col, tau_i),
                Shape::d2(b, dim),
            );

            // Eqn. 6
            q_heads.push(g.add(q_co_out, q_in_out));
            d_heads.push(g.add(d_co_out, d_in_out));
        }
        // Eqn. 7: concat heads, project back to d
        let q_cat = g.concat(&q_heads, 1);
        let d_cat = g.concat(&d_heads, 1);
        let q_out = g.matmul(q_cat, g.param(store, self.w_head_q));
        let d_out = g.matmul(d_cat, g.param(store, self.w_head_d));
        (q_out, d_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_tensor::{Adam, Tensor};

    fn setup(dim: usize, heads: usize) -> (ParamStore, TcaModule) {
        let mut rng = Prng::new(0);
        let mut store = ParamStore::new();
        let tca = TcaModule::new(&mut store, "tca", dim, heads, 5.0, &mut rng);
        (store, tca)
    }

    #[test]
    fn output_shapes_match_inputs() {
        let (store, tca) = setup(8, 2);
        let mut rng = Prng::new(1);
        let g = Graph::new();
        let q = g.input(Tensor::randn(Shape::d2(3, 8), 1.0, &mut rng));
        let d = g.input(Tensor::randn(Shape::d2(3, 8), 1.0, &mut rng));
        let (qo, do_) = tca.apply(&g, &store, q, d);
        assert_eq!(g.shape(qo), Shape::d2(3, 8));
        assert_eq!(g.shape(do_), Shape::d2(3, 8));
    }

    #[test]
    fn outputs_depend_on_both_inputs() {
        let (store, tca) = setup(8, 1);
        let mut rng = Prng::new(2);
        let qv = Tensor::randn(Shape::d2(2, 8), 1.0, &mut rng);
        let dv = Tensor::randn(Shape::d2(2, 8), 1.0, &mut rng);
        let dv2 = Tensor::randn(Shape::d2(2, 8), 1.0, &mut rng);
        let run = |d_in: &Tensor| {
            let g = Graph::new();
            let q = g.input(qv.clone());
            let d = g.input(d_in.clone());
            let (qo, _) = tca.apply(&g, &store, q, d);
            g.value(qo)
        };
        // Q's output must change when D changes (that is what co-attention is)
        assert_ne!(run(&dv).data(), run(&dv2).data());
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let (mut store, tca) = setup(6, 2);
        let mut rng = Prng::new(3);
        let g = Graph::new();
        let q = g.input(Tensor::randn(Shape::d2(4, 6), 1.0, &mut rng));
        let d = g.input(Tensor::randn(Shape::d2(4, 6), 1.0, &mut rng));
        let (qo, do_) = tca.apply(&g, &store, q, d);
        let loss = g.add(g.sum_all(g.square(qo)), g.sum_all(g.square(do_)));
        g.backward(loss, &mut store);
        let ids: Vec<ParamId> = store.ids().collect();
        for pid in ids {
            let gnorm = store.grad(pid).norm2();
            assert!(
                gnorm > 0.0,
                "parameter {} received no gradient",
                store.name(pid)
            );
        }
    }

    #[test]
    fn temperature_is_learnable() {
        let (mut store, tca) = setup(6, 1);
        let mut rng = Prng::new(4);
        let tau_before = {
            let g = Graph::new();
            let q = g.input(Tensor::randn(Shape::d2(4, 6), 1.0, &mut rng));
            let d = g.input(Tensor::randn(Shape::d2(4, 6), 1.0, &mut rng));
            let (qo, _) = tca.apply(&g, &store, q, d);
            let loss = g.sum_all(g.square(qo));
            g.backward(loss, &mut store);
            store.value(tca.tau0).item()
        };
        store.adam_step(&Adam::with_lr(0.05));
        let tau_after = store.value(tca.tau0).item();
        assert_ne!(tau_before, tau_after, "τ∘ did not update");
    }

    #[test]
    fn more_heads_more_parameters() {
        let (s1, _) = setup(8, 1);
        let (s3, _) = setup(8, 3);
        assert!(s3.num_scalars() > s1.num_scalars());
    }

    #[test]
    #[should_panic(expected = "TCA Q shape")]
    fn wrong_width_panics() {
        let (store, tca) = setup(8, 1);
        let g = Graph::new();
        let q = g.input(Tensor::zeros(Shape::d2(2, 4)));
        let d = g.input(Tensor::zeros(Shape::d2(2, 8)));
        let _ = tca.apply(&g, &store, q, d);
    }
}
