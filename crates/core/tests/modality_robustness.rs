//! Missing-modality robustness, end to end: kill/resume bit-identity while
//! the modality-dropout RNG stream is live, and degraded serving parity —
//! a modality-poor CamE answers bit-identically through the single engine
//! and the sharded tier, with degraded heads tagged.

use std::path::PathBuf;

use came::{CamE, CamEConfig};
use came_biodata::presets;
use came_encoders::{FeatureConfig, ModalFeatures};
use came_kg::{
    train_one_to_n_rt, CheckpointConfig, EntityId, FaultPlan, OneToNKge, RelationId, RuntimeConfig,
    ScoringEngine, ServeConfig, ServeTier, TierConfig, TopKRequest, TrainConfig, TrainError,
    TrainEvent,
};
use came_tensor::ParamStore;

fn small_features(bkg: &came_biodata::MultimodalBkg) -> ModalFeatures {
    ModalFeatures::build(
        bkg,
        &FeatureConfig {
            d_molecule: 16,
            d_text: 24,
            d_struct: 16,
            gin_layers: 2,
            compgcn_epochs: 2,
            seed: 3,
        },
    )
}

/// A small CamE with every robustness knob live: modality dropout draws
/// from the second RNG stream every batch, and the contrastive auxiliary
/// loss runs over both-modality heads.
fn robust_cfg() -> CamEConfig {
    CamEConfig {
        d_embed: 32,
        d_fusion: 32,
        n_filters: 4,
        kernel: 3,
        n_heads: 2,
        dropout: 0.1,
        modality_dropout: (0.25, 0.25),
        contrastive_w: 0.05,
        ..Default::default()
    }
}

/// Bitwise image of every parameter, Adam moments included.
fn store_bits(store: &ParamStore) -> Vec<(String, Vec<u32>)> {
    store
        .state_views()
        .map(|p| {
            let bits = p
                .value
                .data()
                .iter()
                .chain(p.m.data())
                .chain(p.v.data())
                .map(|f| f.to_bits())
                .collect();
            (p.name.to_string(), bits)
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("came-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ckpt_runtime(dir: &PathBuf, faults: FaultPlan) -> RuntimeConfig {
    RuntimeConfig {
        checkpoint: Some(CheckpointConfig::new(dir.clone())),
        faults,
        ..Default::default()
    }
}

#[test]
fn kill_and_resume_is_bit_identical_with_modality_dropout_active() {
    let bkg = presets::modality_poor_like(11);
    let f = small_features(&bkg);
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 64,
        lr: 3e-3,
        ..Default::default()
    };

    // Reference: 4 epochs straight through, both RNG streams advancing.
    let dir_a = scratch_dir("straight");
    let mut store = ParamStore::new();
    let model = CamE::new(&mut store, &bkg.dataset, &f, robust_cfg());
    let rt = ckpt_runtime(&dir_a, FaultPlan::none());
    let run = train_one_to_n_rt(&model, &mut store, &bkg.dataset, &cfg, &rt, |_, _, _| {}).unwrap();
    let want = store_bits(&store);
    let want_losses: Vec<f32> = run.history.iter().map(|s| s.loss).collect();

    // Killed at epoch 2, resumed in fresh process-worth of state. The
    // snapshot must carry BOTH RNG streams (feature dropout + modality
    // dropout) for the continuation to replay the same coin flips.
    let dir_b = scratch_dir("killed");
    let mut store = ParamStore::new();
    let model = CamE::new(&mut store, &bkg.dataset, &f, robust_cfg());
    let rt = ckpt_runtime(
        &dir_b,
        FaultPlan {
            kill_at_epoch: Some(2),
            ..FaultPlan::none()
        },
    );
    match train_one_to_n_rt(&model, &mut store, &bkg.dataset, &cfg, &rt, |_, _, _| {}) {
        Err(TrainError::Killed { epoch: 2 }) => {}
        other => panic!("expected kill at epoch 2, got {other:?}"),
    }

    let mut store = ParamStore::new();
    let model = CamE::new(&mut store, &bkg.dataset, &f, robust_cfg());
    let rt = ckpt_runtime(&dir_b, FaultPlan::none());
    let mut resumed_at = None;
    let run = train_one_to_n_rt(&model, &mut store, &bkg.dataset, &cfg, &rt, |ev, _, _| {
        if let TrainEvent::Resumed { epoch_next, .. } = ev {
            resumed_at = Some(*epoch_next);
        }
    })
    .unwrap();
    assert_eq!(resumed_at, Some(2), "resume should continue at epoch 2");
    let got_losses: Vec<f32> = run.history.iter().map(|s| s.loss).collect();
    assert_eq!(got_losses, want_losses, "loss history must match");
    assert_eq!(store_bits(&store), want, "parameters must be bit-identical");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn degraded_serving_parity_between_engine_and_sharded_tier() {
    let bkg = presets::modality_poor_like(7);
    let f = small_features(&bkg);
    let mut store = ParamStore::new();
    let model = CamE::new(&mut store, &bkg.dataset, &f, robust_cfg());
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 64,
        lr: 3e-3,
        ..Default::default()
    };
    model.fit(&mut store, &bkg.dataset, &cfg);
    assert!(
        model.serving_degraded(),
        "the modality-poor preset must leave some entities without features"
    );
    // Degraded coverage is reported, not fatal.
    assert_eq!(model.serve_preflight(), Ok(()));

    let n = bkg.dataset.num_entities() as u32;
    let kge = OneToNKge::new("CamE", &model, n as usize);
    let reqs: Vec<TopKRequest> = (0..16u32)
        .map(|i| TopKRequest::with_k(EntityId(i.wrapping_mul(5) % n), RelationId(i % 2), 10))
        .collect();
    assert!(
        reqs.iter().any(|r| model.head_degraded(r.head.0)),
        "the request mix must hit at least one degraded head"
    );
    let single = ScoringEngine::with_config(&kge, &store, ServeConfig::default()).unwrap();
    let want = single.top_k_batch(&reqs, None).unwrap();

    let tier_cfg = TierConfig {
        shards: 3,
        flush_us: 100,
        ..TierConfig::default()
    };
    ServeTier::run(&kge, &store, None, tier_cfg, |handle| {
        for (req, w) in reqs.iter().zip(&want) {
            let got = handle.top_k(*req).unwrap();
            assert_eq!(got.hits, w.hits, "degraded head must score bit-identically");
            assert_eq!(got.degraded, model.head_degraded(req.head.0));
            assert_eq!(got.degraded, w.degraded);
            assert!(!got.partial);
        }
    })
    .unwrap();
}
