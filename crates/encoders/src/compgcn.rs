//! CompGCN (Vashishth et al., 2019): composition-based multi-relational
//! graph convolution.
//!
//! In the paper CompGCN plays two roles: it produces the *pretrained
//! structured embedding* `h_s` that CamE consumes as one of its three
//! modalities (§III), and it appears as a unimodal baseline in Table III.
//! Both uses share this implementation.

use came_kg::{KgDataset, OneToNModel, Split, TrainConfig};
use came_tensor::{EmbeddingTable, Graph, ParamStore, Prng, Shape, Tensor, Var};

/// Entity-relation composition operator φ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Composition {
    /// Subtraction: `φ(x, z) = x - z` (TransE-inspired).
    Sub,
    /// Hadamard product: `φ(x, z) = x ∘ z` (DistMult-inspired).
    Mult,
}

struct GcnLayer {
    w_dir: came_tensor::ParamId,
    w_loop: came_tensor::ParamId,
    w_rel: came_tensor::ParamId,
}

/// The CompGCN model: learned entity/relation tables, one or more message
/// passing layers over the (inverse-augmented) train graph, DistMult-style
/// 1-N scoring on the propagated representations.
pub struct CompGcn {
    /// Entity input embeddings `[N, d]`.
    pub ent: EmbeddingTable,
    /// Relation input embeddings `[2R, d]`.
    pub rel: EmbeddingTable,
    layers: Vec<GcnLayer>,
    bias: came_tensor::ParamId,
    /// Flattened (src, rel, dst) of the augmented train split.
    src: Vec<u32>,
    rels_of_edges: Vec<u32>,
    dst: Vec<u32>,
    /// `1 / (1 + indegree)` normaliser per entity.
    inv_deg: Tensor,
    composition: Composition,
    num_entities: usize,
}

impl CompGcn {
    /// Build over `dataset`'s augmented train split.
    pub fn new(
        store: &mut ParamStore,
        dataset: &KgDataset,
        dim: usize,
        n_layers: usize,
        composition: Composition,
        rng: &mut Prng,
    ) -> Self {
        let n = dataset.num_entities();
        let nr = dataset.num_relations_aug();
        let ent = EmbeddingTable::new(store, "compgcn.ent", n, dim, rng);
        let rel = EmbeddingTable::new(store, "compgcn.rel", nr, dim, rng);
        let layers = (0..n_layers)
            .map(|l| GcnLayer {
                w_dir: store.add_xavier(format!("compgcn.l{l}.w_dir"), Shape::d2(dim, dim), rng),
                w_loop: store.add_xavier(format!("compgcn.l{l}.w_loop"), Shape::d2(dim, dim), rng),
                w_rel: store.add_xavier(format!("compgcn.l{l}.w_rel"), Shape::d2(dim, dim), rng),
            })
            .collect();
        let bias = store.add_zeros("compgcn.bias", Shape::d1(n));
        let aug = dataset.augmented(Split::Train);
        let mut src = Vec::with_capacity(aug.len());
        let mut rels_of_edges = Vec::with_capacity(aug.len());
        let mut dst = Vec::with_capacity(aug.len());
        let mut deg = vec![1.0f32; n]; // +1 for the self loop
        for t in &aug {
            src.push(t.h.0);
            rels_of_edges.push(t.r.0);
            dst.push(t.t.0);
            deg[t.t.0 as usize] += 1.0;
        }
        let inv_deg = Tensor::from_vec(Shape::d2(n, 1), deg.into_iter().map(|d| 1.0 / d).collect());
        CompGcn {
            ent,
            rel,
            layers,
            bias,
            src,
            rels_of_edges,
            dst,
            inv_deg,
            composition,
            num_entities: n,
        }
    }

    /// Run the message-passing stack; returns `(entity_repr [N,d],
    /// relation_repr [2R,d])` as graph nodes.
    pub fn propagate(&self, g: &Graph, store: &ParamStore) -> (Var, Var) {
        let mut x = self.ent.full(g, store);
        let mut z = self.rel.full(g, store);
        let norm = g.input(self.inv_deg.clone());
        for layer in &self.layers {
            let xs = g.gather(x, &self.src);
            let zr = g.gather(z, &self.rels_of_edges);
            let msg = match self.composition {
                Composition::Sub => g.sub(xs, zr),
                Composition::Mult => g.mul(xs, zr),
            };
            let agg = g.scatter_sum(msg, &self.dst, self.num_entities);
            let agg = g.mul(agg, norm);
            let w_dir = g.param(store, layer.w_dir);
            let w_loop = g.param(store, layer.w_loop);
            let transformed = g.add(g.matmul(agg, w_dir), g.matmul(x, w_loop));
            x = g.tanh(transformed);
            z = g.matmul(z, g.param(store, layer.w_rel));
        }
        (x, z)
    }

    /// Propagated entity representations as a plain tensor `[N, d]` —
    /// the frozen structural features handed to multimodal models.
    pub fn structural_features(&self, store: &ParamStore) -> Tensor {
        let g = Graph::inference();
        let (x, _) = self.propagate(&g, store);
        g.value(x)
    }
}

impl OneToNModel for CompGcn {
    fn forward(&self, g: &Graph, store: &ParamStore, heads: &[u32], rels: &[u32]) -> Var {
        let (x, z) = self.propagate(g, store);
        let h = g.gather(x, heads);
        let r = g.gather(z, rels);
        let hr = g.mul(h, r);
        let scores = g.matmul(hr, g.transpose(x, 0, 1));
        g.add(scores, g.param(store, self.bias))
    }
}

/// Train a CompGCN on `dataset` and return its frozen structural features
/// `[N, dim]` — the paper's "structural embedding learned by CompGCN".
pub fn pretrain_structural(dataset: &KgDataset, dim: usize, epochs: usize, seed: u64) -> Tensor {
    let mut rng = Prng::new(seed);
    let mut store = ParamStore::new();
    let model = CompGcn::new(&mut store, dataset, dim, 1, Composition::Mult, &mut rng);
    let cfg = TrainConfig {
        epochs,
        batch_size: 512,
        lr: 2e-3,
        seed,
        ..Default::default()
    };
    came_kg::train_one_to_n(&model, &mut store, dataset, &cfg, |_, _, _| {});
    model.structural_features(&store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use came_biodata::presets;
    use came_kg::{evaluate, EvalConfig, OneToNScorer};

    #[test]
    fn propagation_shapes() {
        let bkg = presets::tiny(0);
        let mut rng = Prng::new(1);
        let mut store = ParamStore::new();
        let m = CompGcn::new(&mut store, &bkg.dataset, 16, 2, Composition::Sub, &mut rng);
        let g = Graph::inference();
        let (x, z) = m.propagate(&g, &store);
        assert_eq!(g.shape(x), Shape::d2(bkg.dataset.num_entities(), 16));
        assert_eq!(g.shape(z), Shape::d2(bkg.dataset.num_relations_aug(), 16));
    }

    #[test]
    fn training_improves_over_untrained() {
        let bkg = presets::tiny(3);
        let d = &bkg.dataset;
        let mut rng = Prng::new(2);
        let mut store = ParamStore::new();
        let model = CompGcn::new(&mut store, d, 24, 1, Composition::Mult, &mut rng);
        let filter = d.filter_index();
        let cfg_eval = EvalConfig::default();
        let before = evaluate(
            &OneToNScorer::new(&model, &store),
            d,
            Split::Valid,
            &filter,
            &cfg_eval,
        );
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 128,
            lr: 3e-3,
            ..Default::default()
        };
        came_kg::train_one_to_n(&model, &mut store, d, &cfg, |_, _, _| {});
        let after = evaluate(
            &OneToNScorer::new(&model, &store),
            d,
            Split::Valid,
            &filter,
            &cfg_eval,
        );
        assert!(
            after.mrr() > before.mrr() + 0.03,
            "no learning: {} -> {}",
            before.mrr(),
            after.mrr()
        );
    }

    #[test]
    fn structural_features_are_finite_and_sized() {
        let bkg = presets::tiny(4);
        let feats = pretrain_structural(&bkg.dataset, 16, 2, 7);
        assert_eq!(feats.shape(), Shape::d2(bkg.dataset.num_entities(), 16));
        assert!(!feats.has_non_finite());
        // propagation must differentiate entities
        let d0 = &feats.data()[..16];
        let d1 = &feats.data()[16..32];
        assert_ne!(d0, d1);
    }
}
