//! # came-encoders
//!
//! Frozen modality encoders for the CamE reproduction — stand-ins for the
//! pretrained models the paper consumes vectors from (§III):
//!
//! | paper | here | preserved property |
//! |-------|------|--------------------|
//! | CharacterBERT / Chinese BERT | [`text_ngram::TextEncoder`] | shared affixes ⇒ nearby vectors |
//! | pretrained GIN (Hu et al.)   | [`molecule_gin::MoleculeEncoder`] | shared scaffolds ⇒ nearby vectors |
//! | CompGCN official code        | [`compgcn::CompGcn`] (fully trained here) | structural embeddings `h_s` |
//!
//! [`frozen::ModalFeatures`] bundles all three into the per-entity feature
//! table that CamE and the multimodal baselines consume.

#![warn(missing_docs)]

pub mod compgcn;
pub mod frozen;
pub mod molecule_gin;
pub mod text_ngram;

pub use compgcn::{pretrain_structural, CompGcn, Composition};
pub use frozen::{FeatureConfig, FrozenCache, FrozenError, ModalFeatures};
pub use molecule_gin::MoleculeEncoder;
pub use text_ngram::TextEncoder;
